//! # buscode
//!
//! A low-power address-bus encoding toolkit reproducing
//! *Benini, De Micheli, Macii, Sciuto, Silvano — "Address Bus Encoding
//! Techniques for System-Level Power Optimization", DATE 1998*, together
//! with every substrate the paper's evaluation depends on.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`buscode_core`] (`core`) — the encoding schemes (binary, Gray,
//!   bus-invert, T0, T0_BI, dual T0, dual T0_BI, plus extensions),
//!   transition metrics, and the paper's analytical models;
//! - [`buscode_trace`] (`trace`) — address-stream model, synthetic generators,
//!   and the calibrated per-benchmark profiles of the paper's Tables 2-7;
//! - [`buscode_cpu`] (`cpu`) — a from-scratch MIPS-like RISC simulator with
//!   assembler and bus probes, for mechanistically realistic traces;
//! - [`buscode_logic`] (`logic`) — a gate-level netlist substrate with cycle
//!   simulation and switching-activity accounting, hosting the paper's
//!   encoder/decoder architectures;
//! - [`buscode_power`] (`power`) — system-level power models for on-chip and
//!   off-chip buses (the paper's Tables 8-9);
//! - [`buscode_lint`] (`lint`) — static verification: graph-level netlist
//!   lints (the `buslint` tool) and the exhaustive encoder/decoder
//!   protocol model checker;
//! - [`buscode_fault`] (`fault`) — fault models, seeded Monte Carlo
//!   fault-injection campaigns (the `faultrun` tool), and gate-level
//!   stuck-at/SEU injection, measuring the resilience side of the
//!   power-vs-reliability trade-off of the `Hardened` codec wrapper;
//! - [`buscode_pipeline`] (`pipeline`) — the supervised streaming runtime
//!   (the `pipeline` tool): bounded-memory chunked codec driving with
//!   recovery policies, graceful degradation to binary, watchdog
//!   deadlines, and checkpoint/restore;
//! - [`buscode_engine`] (`engine`) — the batch execution layer: the
//!   sharded [`SweepEngine`](buscode_engine::SweepEngine) with
//!   deterministic result ordering, the unified CLI surface shared by
//!   every workspace binary, and the throughput harness behind
//!   `BENCH_engine.json`;
//! - [`buscode_serve`] (`serve`) — the concurrent encoding service
//!   (`busserved`) and closed/open-loop load generator (`busload`): a
//!   length-prefixed CRC-16 wire protocol over pluggable transports,
//!   bounded worker pool with typed RETRY-AFTER load shedding, and a
//!   zero-loss graceful drain;
//! - [`buscode_telemetry`] (`telemetry`) — the observability core: typed
//!   counters, gauges, log-bucketed histograms and span timers, lock-free
//!   shard registries merged deterministically, and the versioned metric
//!   snapshot every CLI's `--metrics {text,json,csv}` flag renders.
//!
//! ## Quick start
//!
//! ```
//! use buscode::prelude::*;
//!
//! # fn main() -> Result<(), buscode::core::CodecError> {
//! // Encode a short instruction run with the T0 code and measure savings.
//! let stream: Vec<Access> = (0..64u64).map(|i| Access::instruction(0x400 + 4 * i)).collect();
//! let width = BusWidth::MIPS;
//! let mut t0 = T0Encoder::new(width, Stride::WORD)?;
//! let coded = count_transitions(&mut t0, stream.iter().copied());
//! let binary = binary_reference(width, stream.iter().copied());
//! assert!(coded.savings_vs(&binary) > 90.0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harness that regenerates every table of the paper.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub use buscode_core as core;
pub use buscode_cpu as cpu;
pub use buscode_engine as engine;
pub use buscode_fault as fault;
pub use buscode_link as link;
pub use buscode_lint as lint;
pub use buscode_logic as logic;
pub use buscode_pipeline as pipeline;
pub use buscode_power as power;
pub use buscode_serve as serve;
pub use buscode_telemetry as telemetry;
pub use buscode_trace as trace;

/// Commonly used items from every subsystem, for `use buscode::prelude::*`.
pub mod prelude {
    pub use buscode_core::codes::{
        BinaryEncoder, BusInvertDecoder, BusInvertEncoder, DualT0BiDecoder, DualT0BiEncoder,
        DualT0Decoder, DualT0Encoder, GrayDecoder, GrayEncoder, Hardened, T0BiDecoder, T0BiEncoder,
        T0Decoder, T0Encoder,
    };
    pub use buscode_core::metrics::{
        binary_reference, compare_codes, count_transitions, verify_round_trip,
    };
    pub use buscode_core::{
        Access, AccessKind, BusState, BusWidth, CodeKind, CodeParams, CodecError, Decoder, Encoder,
        Stride, TransitionStats,
    };
    pub use buscode_engine::SweepEngine;
}
