//! Variable-order plans for the codec proofs.
//!
//! BDD size is hostage to variable order. The codecs compare, subtract,
//! and XOR the address word against state words bit-by-bit, so the plan
//! interleaves those words per bit *column*: address bit `i` sits next
//! to every state bit it is combined with. Under this order the
//! ripple-carry comparators (`addr == prev + stride`) are linear-sized
//! and the popcount thresholds (bus-invert's majority vote) are the
//! usual quadratic symmetric-function BDDs; an un-interleaved order
//! (all address bits, then all state bits) makes the comparators
//! exponential. Control bits (`SEL`, valid flags, remembered aux lines)
//! go first — they select between whole behaviours, so testing them
//! early keeps the cofactors simple.

use buscode_core::sym::FlatCode;
use buscode_core::BusWidth;

use crate::bdd::{Bdd, Ref, FALSE};

/// One element of a register-file layout: a `width`-bit word or a
/// single control bit, in flat-state order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Seg {
    Word,
    Bit,
}

/// The encoder register layout of a flat code, in the flip-flop
/// creation order of the matching `buscode_logic` builder (the same
/// order documented on [`FlatCode::enc_state_bits`]).
fn enc_segments(code: FlatCode) -> &'static [Seg] {
    use Seg::{Bit, Word};
    match code {
        FlatCode::Binary | FlatCode::Gray | FlatCode::Beach => &[],
        FlatCode::BusInvert => &[Word, Bit],
        FlatCode::T0 => &[Word, Word, Bit],
        FlatCode::T0Bi => &[Word, Word, Bit, Bit, Bit],
        FlatCode::DualT0 => &[Word, Bit, Word],
        FlatCode::DualT0Bi => &[Word, Bit, Word, Bit],
        FlatCode::T0Xor | FlatCode::Offset => &[Word],
    }
}

/// Variables for one symbolic encoder cycle.
pub struct EncVars {
    /// Address input lines, LSB-first.
    pub addr: Vec<Ref>,
    /// The `SEL` side channel — a real variable for dual codes, the
    /// constant `FALSE` otherwise (non-dual codes ignore it).
    pub sel: Ref,
    /// Current register values in [`FlatCode::enc_state_bits`] layout.
    pub state: Vec<Ref>,
    /// Variable index of each `addr` line (for counterexample decoding).
    pub addr_idx: Vec<u32>,
    /// Variable index of `sel`, if allocated.
    pub sel_idx: Option<u32>,
    /// Variable index of each `state` bit.
    pub state_idx: Vec<u32>,
}

/// Allocates encoder-cycle variables in proof order: `SEL`, control
/// bits, then per-column `addr[i]` interleaved with the state words.
pub fn enc_vars(bdd: &mut Bdd, code: FlatCode, width: BusWidth) -> EncVars {
    let w = width.bits() as usize;
    let segs = enc_segments(code);
    // Flat-layout offset of each segment.
    let mut offsets = Vec::with_capacity(segs.len());
    let mut at = 0usize;
    for seg in segs {
        offsets.push(at);
        at += match seg {
            Seg::Word => w,
            Seg::Bit => 1,
        };
    }
    debug_assert_eq!(at, code.enc_state_bits(width.bits()) as usize);

    let mut addr = vec![FALSE; w];
    let mut addr_idx = vec![0u32; w];
    let mut state = vec![FALSE; at];
    let mut state_idx = vec![0u32; at];
    let alloc = |bdd: &mut Bdd| {
        let index = bdd.num_vars();
        (bdd.fresh_var(), index)
    };

    let (sel, sel_idx) = if code.uses_sel() {
        let (v, i) = alloc(bdd);
        (v, Some(i))
    } else {
        (FALSE, None)
    };
    for (seg, &offset) in segs.iter().zip(&offsets) {
        if *seg == Seg::Bit {
            let (v, i) = alloc(bdd);
            state[offset] = v;
            state_idx[offset] = i;
        }
    }
    for bit in 0..w {
        let (v, i) = alloc(bdd);
        addr[bit] = v;
        addr_idx[bit] = i;
        for (seg, &offset) in segs.iter().zip(&offsets) {
            if *seg == Seg::Word {
                let (v, i) = alloc(bdd);
                state[offset + bit] = v;
                state_idx[offset + bit] = i;
            }
        }
    }
    EncVars {
        addr,
        sel,
        state,
        addr_idx,
        sel_idx,
        state_idx,
    }
}

/// Variables for one symbolic decoder cycle.
pub struct DecVars {
    /// Bus payload lines, LSB-first.
    pub bus: Vec<Ref>,
    /// Redundant lines, LSB-first.
    pub aux: Vec<Ref>,
    /// The `SEL` side channel (constant `FALSE` for non-dual codes).
    pub sel: Ref,
    /// Current decoder registers in [`FlatCode::dec_state_bits`] layout.
    pub state: Vec<Ref>,
    /// Variable index of each `bus` line.
    pub bus_idx: Vec<u32>,
    /// Variable index of each `aux` line.
    pub aux_idx: Vec<u32>,
    /// Variable index of `sel`, if allocated.
    pub sel_idx: Option<u32>,
    /// Variable index of each `state` bit.
    pub state_idx: Vec<u32>,
}

/// Allocates decoder-cycle variables: `SEL` and the aux lines first,
/// then per-column `bus[i]` next to decoder state bit `i`.
pub fn dec_vars(bdd: &mut Bdd, code: FlatCode, width: BusWidth) -> DecVars {
    let w = width.bits() as usize;
    let aux_n = code.aux_lines() as usize;
    let state_n = code.dec_state_bits(width.bits()) as usize;
    let alloc = |bdd: &mut Bdd| {
        let index = bdd.num_vars();
        (bdd.fresh_var(), index)
    };
    let (sel, sel_idx) = if code.uses_sel() {
        let (v, i) = alloc(bdd);
        (v, Some(i))
    } else {
        (FALSE, None)
    };
    let mut aux = Vec::with_capacity(aux_n);
    let mut aux_idx = Vec::with_capacity(aux_n);
    for _ in 0..aux_n {
        let (v, i) = alloc(bdd);
        aux.push(v);
        aux_idx.push(i);
    }
    let mut bus = Vec::with_capacity(w);
    let mut bus_idx = Vec::with_capacity(w);
    let mut state = Vec::with_capacity(state_n);
    let mut state_idx = Vec::with_capacity(state_n);
    for bit in 0..w {
        let (v, i) = alloc(bdd);
        bus.push(v);
        bus_idx.push(i);
        if bit < state_n {
            let (v, i) = alloc(bdd);
            state.push(v);
            state_idx.push(i);
        }
    }
    DecVars {
        bus,
        aux,
        sel,
        state,
        bus_idx,
        aux_idx,
        sel_idx,
        state_idx,
    }
}

/// Variables for the encoder ∥ decoder product machine (reachability):
/// `SEL` and control bits first, then per-column `addr[i]`, the encoder
/// state words, and decoder state bit `i`.
pub struct ProductVars {
    /// Address input lines.
    pub addr: Vec<Ref>,
    /// `SEL` (constant `FALSE` for non-dual codes).
    pub sel: Ref,
    /// Encoder registers, flat layout.
    pub enc_state: Vec<Ref>,
    /// Decoder registers, flat layout.
    pub dec_state: Vec<Ref>,
    /// Variable index of each encoder state bit.
    pub enc_state_idx: Vec<u32>,
    /// Variable index of each decoder state bit.
    pub dec_state_idx: Vec<u32>,
}

/// Allocates product-machine variables for image computation.
pub fn product_vars(bdd: &mut Bdd, code: FlatCode, width: BusWidth) -> ProductVars {
    let w = width.bits() as usize;
    let segs = enc_segments(code);
    let mut offsets = Vec::with_capacity(segs.len());
    let mut at = 0usize;
    for seg in segs {
        offsets.push(at);
        at += match seg {
            Seg::Word => w,
            Seg::Bit => 1,
        };
    }
    let dec_n = code.dec_state_bits(width.bits()) as usize;

    let mut addr = vec![FALSE; w];
    let mut enc_state = vec![FALSE; at];
    let mut enc_state_idx = vec![0u32; at];
    let mut dec_state = Vec::with_capacity(dec_n);
    let mut dec_state_idx = Vec::with_capacity(dec_n);
    let alloc = |bdd: &mut Bdd| {
        let index = bdd.num_vars();
        (bdd.fresh_var(), index)
    };
    let sel = if code.uses_sel() { alloc(bdd).0 } else { FALSE };
    for (seg, &offset) in segs.iter().zip(&offsets) {
        if *seg == Seg::Bit {
            let (v, i) = alloc(bdd);
            enc_state[offset] = v;
            enc_state_idx[offset] = i;
        }
    }
    for bit in 0..w {
        addr[bit] = alloc(bdd).0;
        for (seg, &offset) in segs.iter().zip(&offsets) {
            if *seg == Seg::Word {
                let (v, i) = alloc(bdd);
                enc_state[offset + bit] = v;
                enc_state_idx[offset + bit] = i;
            }
        }
        if bit < dec_n {
            let (v, i) = alloc(bdd);
            dec_state.push(v);
            dec_state_idx.push(i);
        }
    }
    ProductVars {
        addr,
        sel,
        enc_state,
        dec_state,
        enc_state_idx,
        dec_state_idx,
    }
}

/// Decodes a word from a partial satisfying assignment (don't-cares
/// default to `false`, matching [`crate::bdd::Bdd::sat_one`]).
#[must_use]
pub fn assigned_word(assignment: &[(u32, bool)], idx: &[u32]) -> u64 {
    idx.iter().enumerate().fold(0u64, |acc, (bit, &var)| {
        acc | (u64::from(assigned_bit(assignment, var)) << bit)
    })
}

/// Reads one variable from a partial assignment (default `false`).
#[must_use]
pub fn assigned_bit(assignment: &[(u32, bool)], var: u32) -> bool {
    assignment
        .iter()
        .find(|&&(v, _)| v == var)
        .is_some_and(|&(_, value)| value)
}
