//! Guided case-decomposition proofs for the table codes
//! (working-zone, self-organizing list) at full width.
//!
//! The table codes keep a small content-addressable memory on both
//! sides of the bus (4 zone registers, a 16-entry move-to-front list).
//! A monolithic product-machine BDD over that state is hopeless — the
//! conjunction of 16 parallel 24-bit equality trackers has `2^16`
//! distinguishable live subsets per variable column — so correctness is
//! decomposed into small per-case tautologies, each touching at most
//! two table entries, that together cover every behaviour:
//!
//! 1. **case split** — the first-match arms (`hit entry 0`, `hit entry
//!    1 but not 0`, …, `miss`) are exhaustive and pairwise disjoint.
//!    Proved once over *fresh abstract literals*, so the lemma
//!    instantiates to the concrete hit predicates by substitution
//!    without ever conjoining all the equality chains.
//! 2. **weakened round trip, per entry** — if the address hits entry
//!    `i` (one equality chain), the transmitted word decodes back to
//!    the address against the *mirrored* entry. The decoder's table is
//!    instantiated with the same BDD variables as the encoder's — the
//!    tables-equal mirror invariant by substitution, as in
//!    [`crate::seq`].
//! 3. **first-occurrence agreement, pairwise** — the self-organizing
//!    decoder re-derives the promoted position by searching its own
//!    list, so it must find the *same* first occurrence the encoder
//!    did. For every pair `q < p`: "first match at `p`" and
//!    "entry `q` equals entry `p`" are jointly unsatisfiable (two
//!    equality chains).
//! 4. **transport** — the one-hot offset/position field round-trips
//!    through the wire encoding, proved over a fresh symbolic index.
//! 5. **lockstep** — on a miss both sides install the transmitted word
//!    (which *is* the address: the payload lines are the address
//!    variables, a BDD `Ref` identity) at the mirrored round-robin
//!    victim / list front; on a hit the working-zone tables are
//!    untouched and both list sides apply the same `remove(p)` +
//!    `insert(0)` permutation (same position by lemma 3). The state
//!    update is therefore identical by construction, which closes the
//!    tables-equal induction that lemma 2 assumes.
//!
//! The hit predicates and wire formats used in the proofs are built by
//! the `wz_*`/`sol_*` expression builders below, generic over
//! [`BoolAlg`]. The same builders drive [`WzModel`] and [`SolModel`]
//! through the concrete [`BoolEval`] algebra, and tests diff those
//! models step-for-step against the behavioural
//! `buscode_core::codes` codecs — anchoring the symbolic obligations
//! to the implementation the rest of the workspace trusts.

use buscode_core::sym::{
    add_words, equal_words, lt_const, or_many, popcount, sub_words, word_from_u64, word_to_u64,
    BoolAlg, BoolEval,
};
use buscode_core::{BusWidth, Stride};

use crate::bdd::{Bdd, Ref, FALSE, TRUE};

/// The result of one case-decomposition proof.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Number of tautologies proved.
    pub obligations: usize,
    /// BDD arena size after the proof (deterministic).
    pub nodes: usize,
    /// First violated obligation, if any. `None` means proved.
    pub failure: Option<String>,
}

impl CaseReport {
    /// True when every obligation held.
    #[must_use]
    pub fn proved(&self) -> bool {
        self.failure.is_none()
    }
}

// --- Shared expression builders --------------------------------------------

/// Hit predicate for one working-zone register: the zone is valid and
/// `addr - base` is a stride-aligned offset within the zone span.
/// Returns the predicate and the raw delta word.
pub fn wz_zone_hit<A: BoolAlg>(
    alg: &mut A,
    addr: &[A::B],
    valid: A::B,
    base: &[A::B],
    stride_log2: u32,
    offset_log2: u32,
) -> (A::B, Vec<A::B>) {
    let delta = sub_words(alg, addr, base);
    let in_span = lt_const(alg, &delta, 1u64 << (stride_log2 + offset_log2));
    let low = &delta[..stride_log2 as usize];
    let misaligned = or_many(alg, low);
    let aligned = alg.not(misaligned);
    let near = alg.and(in_span, aligned);
    let hit = alg.and(valid, near);
    (hit, delta)
}

/// One-hot hit payload for the working-zone code: payload line
/// `delta / stride` is high, all others low.
pub fn wz_hit_payload<A: BoolAlg>(
    alg: &mut A,
    delta: &[A::B],
    stride_log2: u32,
    offset_log2: u32,
) -> Vec<A::B> {
    let offset = &delta[stride_log2 as usize..(stride_log2 + offset_log2) as usize];
    onehot(alg, offset, delta.len())
}

/// Hit predicate for one self-organizing-list entry: the entry is
/// populated and stores the address's high part.
pub fn sol_entry_hit<A: BoolAlg>(alg: &mut A, high: &[A::B], valid: A::B, entry: &[A::B]) -> A::B {
    let same = equal_words(alg, high, entry);
    alg.and(valid, same)
}

/// Hit payload for the self-organizing code: the binary low offset
/// with the one-hot position line above it.
pub fn sol_hit_payload<A: BoolAlg>(
    alg: &mut A,
    low: &[A::B],
    position: usize,
    width: u32,
) -> Vec<A::B> {
    (0..width as usize)
        .map(|i| {
            if i < low.len() {
                low[i]
            } else {
                alg.constant(i == low.len() + position)
            }
        })
        .collect()
}

/// Expands a binary index into `lines` one-hot lines.
pub fn onehot<A: BoolAlg>(alg: &mut A, index: &[A::B], lines: usize) -> Vec<A::B> {
    (0..lines)
        .map(|i| {
            // Lines beyond the index range stay low (the self-organizing
            // position field uses fewer lines than the bus provides).
            if i >= 1usize << index.len() {
                return alg.constant(false);
            }
            let want = word_from_u64(alg, i as u64, index.len() as u32);
            equal_words(alg, index, &want)
        })
        .collect()
}

/// Recovers the binary index from one-hot lines: index bit `j` is the
/// OR of every line whose number has bit `j` set.
pub fn onehot_to_index<A: BoolAlg>(alg: &mut A, lines: &[A::B], index_bits: u32) -> Vec<A::B> {
    (0..index_bits)
        .map(|j| {
            let selected: Vec<A::B> = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| (i >> j) & 1 == 1)
                .map(|(_, &line)| line)
                .collect();
            or_many(alg, &selected)
        })
        .collect()
}

// --- Proof obligations ------------------------------------------------------

/// Lemma 1 over fresh literals: the first-match decomposition of
/// `cases` hit signals (plus the all-miss arm) is exhaustive and
/// pairwise disjoint.
fn case_split(bdd: &mut Bdd, cases: u32, label: &str, obligations: &mut Vec<(String, Ref)>) {
    let mut arms = Vec::with_capacity(cases as usize + 1);
    let mut none_before = TRUE;
    for _ in 0..cases {
        let x = bdd.fresh_var();
        arms.push(bdd.and(none_before, x));
        let miss_here = bdd.not(x);
        none_before = bdd.and(none_before, miss_here);
    }
    arms.push(none_before);
    let covered = or_many(bdd, &arms);
    obligations.push((format!("{label}-case-split-exhaustive"), covered));
    for a in 0..arms.len() {
        for b in a + 1..arms.len() {
            let both = bdd.and(arms[a], arms[b]);
            let disjoint = bdd.not(both);
            obligations.push((format!("{label}-case-split-exclusive[{a},{b}]"), disjoint));
        }
    }
}

/// Lemma 4: an `index_bits`-wide symbolic index survives the trip
/// through `lines` one-hot lines, and the field really is one-hot.
fn transport_obligations(
    bdd: &mut Bdd,
    index_bits: u32,
    lines: usize,
    label: &str,
    obligations: &mut Vec<(String, Ref)>,
) {
    debug_assert_eq!(1usize << index_bits, lines.min(1 << index_bits));
    let index: Vec<Ref> = (0..index_bits).map(|_| bdd.fresh_var()).collect();
    let hot = onehot(bdd, &index, lines);
    let ones = popcount(bdd, &hot);
    let one = word_from_u64(bdd, 1, ones.len() as u32);
    let exactly_one = equal_words(bdd, &ones, &one);
    obligations.push((format!("{label}-payload-onehot"), exactly_one));
    let back = onehot_to_index(bdd, &hot, index_bits);
    for (j, (&got, &want)) in back.iter().zip(&index).enumerate() {
        let ok = bdd.xnor(got, want);
        obligations.push((format!("{label}-index-transport[{j}]"), ok));
    }
}

fn first_failure(bdd: &mut Bdd, obligations: &[(String, Ref)]) -> Option<String> {
    for (name, ok) in obligations {
        if *ok != TRUE {
            let bad = bdd.not(*ok);
            let witness = bdd
                .sat_one(bad)
                .map(|a| format!("{a:?}"))
                .unwrap_or_default();
            return Some(format!("{name} falsified at {witness}"));
        }
    }
    None
}

/// Proves the working-zone codec round trip at full width by case
/// decomposition over `zones` zone registers.
///
/// # Errors
///
/// The proof geometry requires power-of-two width, stride, and zone
/// count, and the zone span must fit the address space.
pub fn check_working_zone(
    width: BusWidth,
    stride: Stride,
    zones: u32,
) -> Result<CaseReport, String> {
    let w = width.bits();
    if !w.is_power_of_two() {
        return Err(format!(
            "working-zone proof requires a power-of-two width, got {w}"
        ));
    }
    if !stride.get().is_power_of_two() {
        return Err(format!(
            "working-zone proof requires a power-of-two stride, got {}",
            stride.get()
        ));
    }
    if !zones.is_power_of_two() || zones > 64 {
        return Err(format!(
            "working-zone proof requires a power-of-two zone count in 1..=64, got {zones}"
        ));
    }
    let stride_log2 = stride.get().trailing_zeros();
    let offset_log2 = w.trailing_zeros();
    if stride_log2 + offset_log2 > w {
        return Err(format!(
            "zone span 2^{} exceeds the {w}-bit address space",
            stride_log2 + offset_log2
        ));
    }

    let wu = w as usize;
    let zu = zones as usize;
    let mut bdd = Bdd::new();
    // Valid flags first, then per-column addr bit / base bits so the
    // ripple subtract in each hit predicate stays linear-sized.
    let valid: Vec<Ref> = (0..zu).map(|_| bdd.fresh_var()).collect();
    let mut addr = Vec::with_capacity(wu);
    let mut base = vec![Vec::with_capacity(wu); zu];
    for _ in 0..wu {
        addr.push(bdd.fresh_var());
        for b in &mut base {
            b.push(bdd.fresh_var());
        }
    }

    let mut obligations: Vec<(String, Ref)> = Vec::new();
    case_split(&mut bdd, zones, "wz", &mut obligations);

    for z in 0..zu {
        let (hit, delta) = wz_zone_hit(
            &mut bdd,
            &addr,
            valid[z],
            &base[z],
            stride_log2,
            offset_log2,
        );
        // The one-hot payload transports exactly delta's offset field;
        // the decoder rebuilds `base + offset * stride`. Masking delta
        // down to that field models the transmission loss.
        let masked: Vec<Ref> = (0..wu)
            .map(|i| {
                let bit = i as u32;
                if bit >= stride_log2 && bit < stride_log2 + offset_log2 {
                    delta[i]
                } else {
                    FALSE
                }
            })
            .collect();
        let rebuilt = add_words(&mut bdd, &base[z], &masked);
        let same = equal_words(&mut bdd, &rebuilt, &addr);
        let ok = bdd.implies(hit, same);
        obligations.push((format!("wz-roundtrip[zone {z}]"), ok));
    }

    transport_obligations(&mut bdd, offset_log2, wu, "wz", &mut obligations);

    // Lemma 5, miss arm: the payload lines *are* the address variables
    // (same Refs), so the decoder's plain-binary read-back and both
    // sides' round-robin install see identical words by construction.
    let miss_identity = equal_words(&mut bdd, &addr, &addr);
    obligations.push(("wz-miss-lockstep".to_string(), miss_identity));

    let failure = first_failure(&mut bdd, &obligations);
    Ok(CaseReport {
        obligations: obligations.len(),
        nodes: bdd.node_count(),
        failure,
    })
}

/// Proves the self-organizing-list codec round trip at full width by
/// case decomposition over `entries` list positions.
///
/// # Errors
///
/// The proof geometry requires a power-of-two entry count that fits on
/// the one-hot lines above `low_bits`.
pub fn check_self_organizing(
    width: BusWidth,
    low_bits: u32,
    entries: u32,
) -> Result<CaseReport, String> {
    let w = width.bits();
    if low_bits >= w {
        return Err(format!("low_bits {low_bits} must be below the width {w}"));
    }
    let high_bits = (w - low_bits) as usize;
    if !entries.is_power_of_two() || entries as usize > high_bits {
        return Err(format!(
            "self-organizing proof requires a power-of-two entry count within the \
             {high_bits} one-hot lines, got {entries}"
        ));
    }
    let eu = entries as usize;
    let lu = low_bits as usize;

    let mut bdd = Bdd::new();
    // Prefix-validity flags, the (independent) low offset bits, then
    // per-column addr-high bit / list-entry bits.
    let valid: Vec<Ref> = (0..eu).map(|_| bdd.fresh_var()).collect();
    let low: Vec<Ref> = (0..lu).map(|_| bdd.fresh_var()).collect();
    let mut high = Vec::with_capacity(high_bits);
    let mut list = vec![Vec::with_capacity(high_bits); eu];
    for _ in 0..high_bits {
        high.push(bdd.fresh_var());
        for entry in &mut list {
            entry.push(bdd.fresh_var());
        }
    }
    // The move-to-front list fills from the front: entry p populated
    // implies every earlier entry is too.
    let mut prefix_valid = TRUE;
    for pair in valid.windows(2) {
        let step = bdd.implies(pair[1], pair[0]);
        prefix_valid = bdd.and(prefix_valid, step);
    }

    let mut obligations: Vec<(String, Ref)> = Vec::new();
    case_split(&mut bdd, entries, "sol", &mut obligations);

    for p in 0..eu {
        // Lemma 2: a hit at p decodes against the mirrored entry p.
        let hit = sol_entry_hit(&mut bdd, &high, valid[p], &list[p]);
        let mut rebuilt: Vec<Ref> = low.clone();
        rebuilt.extend_from_slice(&list[p]);
        let mut address: Vec<Ref> = low.clone();
        address.extend_from_slice(&high);
        let same = equal_words(&mut bdd, &rebuilt, &address);
        let ok = bdd.implies(hit, same);
        obligations.push((format!("sol-roundtrip[{p}]"), ok));

        // Lemma 3: under a first match at p no earlier entry can hold
        // the same high part, so the decoder's own first-occurrence
        // search lands on p too and both sides promote identically.
        for q in 0..p {
            let hit_q = sol_entry_hit(&mut bdd, &high, valid[q], &list[q]);
            let missed_q = bdd.not(hit_q);
            let duplicate = equal_words(&mut bdd, &list[q], &list[p]);
            let conj = [prefix_valid, hit, missed_q, duplicate]
                .iter()
                .fold(TRUE, |acc, &t| bdd.and(acc, t));
            let impossible = bdd.not(conj);
            obligations.push((format!("sol-first-occurrence[{q},{p}]"), impossible));
        }
    }

    transport_obligations(
        &mut bdd,
        entries.trailing_zeros(),
        high_bits,
        "sol",
        &mut obligations,
    );

    // Lemma 5, miss arm: payload lines are the address variables, and
    // both sides split off the same high part for the front insert.
    let mut address: Vec<Ref> = low.clone();
    address.extend_from_slice(&high);
    let miss_identity = equal_words(&mut bdd, &address, &address);
    obligations.push(("sol-miss-lockstep".to_string(), miss_identity));

    let failure = first_failure(&mut bdd, &obligations);
    Ok(CaseReport {
        obligations: obligations.len(),
        nodes: bdd.node_count(),
        failure,
    })
}

// --- Concrete models over the same builders ---------------------------------

/// A working-zone encoder whose hit predicate and wire format are the
/// *proof's* expression builders, evaluated through [`BoolEval`]; the
/// table bookkeeping (round-robin install) is plain code. Tests diff
/// this step-for-step against `buscode_core`'s behavioural encoder.
#[derive(Clone, Debug)]
pub struct WzModel {
    width: BusWidth,
    stride_log2: u32,
    offset_log2: u32,
    valid: Vec<bool>,
    base: Vec<u64>,
    victim: usize,
    prev_zone_field: u64,
}

impl WzModel {
    /// Creates the model; parameters must satisfy the proof geometry.
    ///
    /// # Errors
    ///
    /// As [`check_working_zone`].
    pub fn new(width: BusWidth, stride: Stride, zones: u32) -> Result<Self, String> {
        check_working_zone(width, stride, zones).map(|_| ())?;
        Ok(WzModel {
            width,
            stride_log2: stride.get().trailing_zeros(),
            offset_log2: width.bits().trailing_zeros(),
            valid: vec![false; zones as usize],
            base: vec![0; zones as usize],
            victim: 0,
            prev_zone_field: 0,
        })
    }

    /// Encodes one address; returns `(payload, aux)`.
    pub fn step(&mut self, address: u64) -> (u64, u64) {
        let mut alg = BoolEval;
        let w = self.width.bits();
        let addr = word_from_u64(&mut alg, address & self.width.mask(), w);
        for z in 0..self.base.len() {
            let base = word_from_u64(&mut alg, self.base[z], w);
            let (hit, delta) = wz_zone_hit(
                &mut alg,
                &addr,
                self.valid[z],
                &base,
                self.stride_log2,
                self.offset_log2,
            );
            if hit {
                let payload = wz_hit_payload(&mut alg, &delta, self.stride_log2, self.offset_log2);
                self.prev_zone_field = z as u64;
                return (word_to_u64(&payload), 1 | ((z as u64) << 1));
            }
        }
        self.valid[self.victim] = true;
        self.base[self.victim] = address & self.width.mask();
        self.victim = (self.victim + 1) % self.base.len();
        (address & self.width.mask(), self.prev_zone_field << 1)
    }
}

/// A self-organizing-list encoder built from the proof's expression
/// builders, with the move-to-front bookkeeping in plain code.
#[derive(Clone, Debug)]
pub struct SolModel {
    width: BusWidth,
    low_bits: u32,
    capacity: usize,
    list: Vec<u64>,
}

impl SolModel {
    /// Creates the model; parameters must satisfy the proof geometry.
    ///
    /// # Errors
    ///
    /// As [`check_self_organizing`].
    pub fn new(width: BusWidth, low_bits: u32, entries: u32) -> Result<Self, String> {
        check_self_organizing(width, low_bits, entries).map(|_| ())?;
        Ok(SolModel {
            width,
            low_bits,
            capacity: entries as usize,
            list: Vec::new(),
        })
    }

    /// Encodes one address; returns `(payload, aux)`.
    pub fn step(&mut self, address: u64) -> (u64, u64) {
        let mut alg = BoolEval;
        let masked = address & self.width.mask();
        let high_val = masked >> self.low_bits;
        let high = word_from_u64(&mut alg, high_val, self.width.bits() - self.low_bits);
        let low = word_from_u64(&mut alg, masked, self.low_bits);
        let position = (0..self.list.len()).find(|&p| {
            let entry = word_from_u64(&mut alg, self.list[p], self.width.bits() - self.low_bits);
            sol_entry_hit(&mut alg, &high, true, &entry)
        });
        if let Some(p) = position {
            let payload = sol_hit_payload(&mut alg, &low, p, self.width.bits());
            let entry = self.list.remove(p);
            self.list.insert(0, entry);
            (word_to_u64(&payload), 1)
        } else {
            self.list.insert(0, high_val);
            self.list.truncate(self.capacity);
            (masked, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buscode_core::codes::{SelfOrganizingEncoder, WorkingZoneEncoder};
    use buscode_core::rng::Rng64;
    use buscode_core::{Access, Encoder};

    fn w32() -> BusWidth {
        BusWidth::new(32).unwrap()
    }

    #[test]
    fn working_zone_proves_at_widths_8_and_32() {
        for bits in [8u32, 32] {
            let width = BusWidth::new(bits).unwrap();
            let stride = Stride::new(4, width).unwrap();
            let report = check_working_zone(width, stride, 4).unwrap();
            assert!(report.proved(), "width {bits}: {:?}", report.failure);
            assert!(report.obligations > 4);
        }
    }

    #[test]
    fn self_organizing_proves_at_widths_8_and_32() {
        for (bits, low, entries) in [(8u32, 2u32, 4u32), (32, 8, 16)] {
            let width = BusWidth::new(bits).unwrap();
            let report = check_self_organizing(width, low, entries).unwrap();
            assert!(report.proved(), "width {bits}: {:?}", report.failure);
            assert!(report.obligations > entries as usize);
        }
    }

    #[test]
    fn proof_geometry_is_validated() {
        let width = BusWidth::new(12).unwrap(); // not a power of two
        let stride = Stride::new(4, width).unwrap();
        assert!(check_working_zone(width, stride, 4).is_err());
        assert!(check_working_zone(w32(), Stride::new(4, w32()).unwrap(), 3).is_err());
        assert!(check_self_organizing(w32(), 8, 3).is_err());
        assert!(check_self_organizing(w32(), 32, 4).is_err());
    }

    /// The proof's expression builders drive the same bits the
    /// behavioural encoder puts on the bus, step for step.
    #[test]
    fn wz_model_matches_behavioural_encoder() {
        let width = w32();
        let stride = Stride::new(4, width).unwrap();
        let mut model = WzModel::new(width, stride, 4).unwrap();
        let mut gold = WorkingZoneEncoder::new(width, stride, 4).unwrap();
        let mut rng = Rng64::seed_from_u64(2024);
        let zones = [0x1000u64, 0x8000, 0x4_0000, 0xffff_0000, 0x77_0000];
        for step in 0..4000 {
            let addr = if rng.gen_bool(0.8) {
                zones[rng.gen_range(0..zones.len())] + 4 * rng.gen_range(0..32u64)
            } else {
                rng.gen::<u64>() & width.mask()
            };
            let want = gold.encode(Access::data(addr));
            let (payload, aux) = model.step(addr);
            assert_eq!(
                (payload, aux),
                (want.payload, want.aux),
                "step {step} addr {addr:#x}"
            );
        }
    }

    /// Same anchoring for the self-organizing list.
    #[test]
    fn sol_model_matches_behavioural_encoder() {
        let width = w32();
        let mut model = SolModel::new(width, 8, 16).unwrap();
        let mut gold = SelfOrganizingEncoder::new(width, 8, 16).unwrap();
        let mut rng = Rng64::seed_from_u64(77);
        let zones: Vec<u64> = (0..24).map(|i| 0x4000_0000 + (i << 17)).collect();
        for step in 0..4000 {
            let addr = if rng.gen_bool(0.9) {
                zones[rng.gen_range(0..zones.len())] + rng.gen_range(0..256u64)
            } else {
                rng.gen::<u64>() & width.mask()
            };
            let want = gold.encode(Access::data(addr));
            let (payload, aux) = model.step(addr);
            assert_eq!(
                (payload, aux),
                (want.payload, want.aux),
                "step {step} addr {addr:#x}"
            );
        }
    }

    /// The first-occurrence lemma is not vacuous: dropping the
    /// `¬hit(q)` hypothesis leaves a satisfiable conjunction (two
    /// entries *can* both match when nothing forbids it).
    #[test]
    fn first_occurrence_lemma_bites() {
        let mut bdd = Bdd::new();
        let high: Vec<_> = (0..6).map(|_| bdd.fresh_var()).collect();
        let e0: Vec<_> = (0..6).map(|_| bdd.fresh_var()).collect();
        let e1: Vec<_> = (0..6).map(|_| bdd.fresh_var()).collect();
        let hit0 = sol_entry_hit(&mut bdd, &high, TRUE, &e0);
        let hit1 = sol_entry_hit(&mut bdd, &high, TRUE, &e1);
        let dup = equal_words(&mut bdd, &e0, &e1);
        let both = bdd.and(hit0, hit1);
        let weak = bdd.and(both, dup);
        assert!(bdd.sat_one(weak).is_some());
        // With the first-match hypothesis the conjunction is UNSAT.
        let miss0 = bdd.not(hit0);
        let strong1 = bdd.and(miss0, hit1);
        let strong = bdd.and(strong1, dup);
        assert_eq!(strong, FALSE);
    }
}
