//! Sequential proofs for the flat codes: round-trip identity and the
//! paper's invariants at full width, by 1-induction over a
//! shared-variable mirror invariant.
//!
//! The exhaustive checker walks the encoder × decoder product
//! automaton, which caps it at width ≤ 16. Here the product machine is
//! never enumerated. Instead each flat code carries a *mirror
//! invariant* relating decoder registers to encoder registers:
//!
//! - `t0`, `t0-bi`: decoder `prev` **is** encoder `prev_addr`;
//! - `dual-t0`, `dual-t0-bi`: decoder `reference` **is** encoder
//!   `reference`;
//! - `t0-xor`, `offset`: decoder `prev` **is** encoder `prev`;
//! - `binary`, `gray`, `bus-invert`, `beach`: the decoder is stateless.
//!
//! The invariant holds at reset (both sides clear their registers to
//! zero) and the proof below shows it is *inductive*: assuming it, one
//! symbolic step re-establishes it. Mechanically, the decoder's state
//! variables are instantiated with the *same BDD variables* as the
//! mirrored encoder slice — the hypothesis by substitution — and two
//! obligation families must be the constant-TRUE BDD over all
//! `2^(w+1+state)` assignments:
//!
//! 1. **round trip**: `decode(encode(addr)) == addr`, every bit;
//! 2. **preservation**: the decoder's next state equals the mirrored
//!    slice of the encoder's next state, every bit.
//!
//! On top of the induction, the paper's per-code bus invariants are
//! proved as *free-state tautologies* — they hold for **every** encoder
//! state, reachable or not, so no reachable-set computation is needed
//! (the width-8 [`image`][crate::image] pass cross-checks this
//! strategy against an exact fixed point):
//!
//! - `t0` freeze: `INC=1` ⇒ payload frozen (also `dual-t0`,
//!   `dual-t0-bi` on instruction cycles, `t0-bi`);
//! - `dual-t0` gating: `INC` only rises on `SEL` cycles;
//! - `dual-t0-bi` data cycles: `INCV=1` ⇒ payload is the inverted
//!   address, and line transitions ≤ ⌊w/2⌋ + 1;
//! - bus-invert: line transitions ≤ ⌊w/2⌋ — one tighter than the
//!   exhaustive checker's ⌊w/2⌋ + 1, provable because the encoder's
//!   majority vote includes the `INV`-line toggle; `t0-bi` non-freeze
//!   cycles: ≤ ⌊w/2⌋ + 2 (the checker's bound, payload and redundant
//!   lines both counted).

use buscode_core::sym::{
    decode_step, encode_step, equal_words, gt_const, not_word, popcount, xor_words, BoolAlg,
    FlatCode,
};
use buscode_core::{BusWidth, Stride};

use crate::bdd::{Bdd, Ref, TRUE};
use crate::vars::{assigned_bit, assigned_word, enc_vars};

/// A violated induction obligation, decoded to a concrete assignment.
#[derive(Clone, Debug)]
pub struct SeqFailure {
    /// The obligation that is not a tautology.
    pub obligation: String,
    /// Address input word.
    pub addr: u64,
    /// The `SEL` line.
    pub sel: bool,
    /// Encoder registers (flat layout); mirrored decoder registers are
    /// the documented slice of this.
    pub state: Vec<bool>,
}

/// The result of one sequential proof.
#[derive(Clone, Debug)]
pub struct SeqReport {
    /// Number of tautologies proved.
    pub obligations: usize,
    /// BDD arena size after the proof (deterministic).
    pub nodes: usize,
    /// First violated obligation, if any. `None` means proved.
    pub failure: Option<SeqFailure>,
}

impl SeqReport {
    /// True when every obligation held.
    #[must_use]
    pub fn proved(&self) -> bool {
        self.failure.is_none()
    }
}

/// Proves round trip, mirror preservation, and the paper invariants
/// for one flat code at the given width.
#[must_use]
pub fn check_flat(code: FlatCode, width: BusWidth, stride: Stride) -> SeqReport {
    let mut bdd = Bdd::new();
    let vars = enc_vars(&mut bdd, code, width);
    let step = encode_step(
        &mut bdd,
        code,
        width,
        stride,
        &vars.addr,
        vars.sel,
        &vars.state,
    );

    // Mirror instantiation: the decoder's registers are the documented
    // slice of the encoder's registers — same BDD variables.
    let dec_bits = code.dec_state_bits(width.bits()) as usize;
    let dec_state: Vec<Ref> = vars.state[..dec_bits].to_vec();
    let decoded = decode_step(
        &mut bdd, code, width, stride, &step.bus, &step.aux, vars.sel, &dec_state,
    );

    let mut obligations: Vec<(String, Ref)> = Vec::new();
    for (i, (&got, &want)) in decoded.address.iter().zip(&vars.addr).enumerate() {
        let ok = bdd.xnor(got, want);
        obligations.push((format!("round-trip addr[{i}]"), ok));
    }
    for (i, (&dec_next, &enc_next)) in decoded.next_state.iter().zip(&step.next_state).enumerate() {
        let ok = bdd.xnor(dec_next, enc_next);
        obligations.push((format!("mirror preservation state[{i}]"), ok));
    }
    paper_invariants(
        &mut bdd,
        code,
        width,
        &vars.addr,
        vars.sel,
        &vars.state,
        &step,
        &mut obligations,
    );

    for (name, ok) in &obligations {
        if *ok != TRUE {
            let counter = bdd.not(*ok);
            let assignment = bdd
                .sat_one(counter)
                .expect("non-tautology must have a falsifying assignment");
            return SeqReport {
                obligations: obligations.len(),
                nodes: bdd.node_count(),
                failure: Some(SeqFailure {
                    obligation: name.clone(),
                    addr: assigned_word(&assignment, &vars.addr_idx),
                    sel: vars.sel_idx.is_some_and(|i| assigned_bit(&assignment, i)),
                    state: vars
                        .state_idx
                        .iter()
                        .map(|&i| assigned_bit(&assignment, i))
                        .collect(),
                }),
            };
        }
    }
    SeqReport {
        obligations: obligations.len(),
        nodes: bdd.node_count(),
        failure: None,
    }
}

/// Counts line transitions from the remembered previous bus word to
/// this cycle's word, payload and redundant lines both.
fn transition_count(
    bdd: &mut Bdd,
    prev_payload: &[Ref],
    payload: &[Ref],
    prev_aux: &[Ref],
    aux: &[Ref],
) -> Vec<Ref> {
    let mut lines = xor_words(bdd, prev_payload, payload);
    lines.extend(xor_words(bdd, prev_aux, aux));
    popcount(bdd, &lines)
}

/// The paper's per-code invariants as free-state tautology obligations.
#[allow(clippy::too_many_arguments)]
fn paper_invariants(
    bdd: &mut Bdd,
    code: FlatCode,
    width: BusWidth,
    addr: &[Ref],
    sel: Ref,
    state: &[Ref],
    step: &buscode_core::sym::SymStep<Ref>,
    obligations: &mut Vec<(String, Ref)>,
) {
    let w = width.bits() as usize;
    let half = u64::from(width.bits() / 2);
    match code {
        FlatCode::T0 => {
            let prev_bus = &state[w..2 * w];
            let frozen = equal_words(bdd, &step.bus, prev_bus);
            let freeze = bdd.implies(step.aux[0], frozen);
            obligations.push(("t0-freeze".to_string(), freeze));
        }
        FlatCode::BusInvert => {
            // The encoder votes with the INV-line toggle included, so
            // the guaranteed ceiling is ⌊w/2⌋ — one line tighter than
            // the ⌊w/2⌋+1 the exhaustive checker asserts.
            let (prev_bus, prev_inv) = (&state[..w], state[w]);
            let pc = transition_count(bdd, prev_bus, &step.bus, &[prev_inv], &step.aux);
            let over = gt_const(bdd, &pc, half);
            let bound = bdd.not(over);
            obligations.push(("bus-invert-bound".to_string(), bound));
        }
        FlatCode::T0Bi => {
            let prev_bus = &state[w..2 * w];
            let (prev_inc, prev_inv) = (state[2 * w], state[2 * w + 1]);
            let inc = step.aux[0];
            let frozen = equal_words(bdd, &step.bus, prev_bus);
            let freeze = bdd.implies(inc, frozen);
            obligations.push(("t0-freeze".to_string(), freeze));
            let pc = transition_count(bdd, prev_bus, &step.bus, &[prev_inc, prev_inv], &step.aux);
            let over = gt_const(bdd, &pc, half + 2);
            let within = bdd.not(over);
            let not_inc = bdd.not(inc);
            let bound = bdd.implies(not_inc, within);
            obligations.push(("t0-bi-bound".to_string(), bound));
        }
        FlatCode::DualT0 => {
            let prev_bus = &state[w + 1..];
            let inc = step.aux[0];
            let gating = bdd.implies(inc, sel);
            obligations.push(("dual-t0-sel-gating".to_string(), gating));
            let frozen = equal_words(bdd, &step.bus, prev_bus);
            let freeze = bdd.implies(inc, frozen);
            obligations.push(("t0-freeze".to_string(), freeze));
        }
        FlatCode::DualT0Bi => {
            let prev_bus = &state[w + 1..2 * w + 1];
            let prev_incv = state[2 * w + 1];
            let incv = step.aux[0];
            let not_sel = bdd.not(sel);
            let frozen = equal_words(bdd, &step.bus, prev_bus);
            let incv_and_sel = bdd.and(incv, sel);
            let freeze = bdd.implies(incv_and_sel, frozen);
            obligations.push(("t0-freeze (instruction)".to_string(), freeze));
            let inverted_addr = not_word(bdd, addr);
            let is_inverted = equal_words(bdd, &step.bus, &inverted_addr);
            let incv_and_data = bdd.and(incv, not_sel);
            let inversion = bdd.implies(incv_and_data, is_inverted);
            obligations.push(("incv-inversion (data)".to_string(), inversion));
            let pc = transition_count(bdd, prev_bus, &step.bus, &[prev_incv], &step.aux);
            let over = gt_const(bdd, &pc, half + 1);
            let within = bdd.not(over);
            let bound = bdd.implies(not_sel, within);
            obligations.push(("bus-invert-bound (data)".to_string(), bound));
        }
        FlatCode::Binary
        | FlatCode::Gray
        | FlatCode::T0Xor
        | FlatCode::Offset
        | FlatCode::Beach => {}
    }
}

/// Every code with a flat sequential proof, in report order.
#[must_use]
pub fn flat_codes() -> [FlatCode; 10] {
    [
        FlatCode::Binary,
        FlatCode::Gray,
        FlatCode::BusInvert,
        FlatCode::T0,
        FlatCode::T0Bi,
        FlatCode::T0Xor,
        FlatCode::DualT0,
        FlatCode::DualT0Bi,
        FlatCode::Offset,
        FlatCode::Beach,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(bits: u32) -> (BusWidth, Stride) {
        let width = BusWidth::new(bits).unwrap();
        (width, Stride::new(4, width).unwrap())
    }

    #[test]
    fn all_flat_codes_prove_at_widths_8_and_32() {
        for bits in [8, 32] {
            let (width, stride) = params(bits);
            for code in flat_codes() {
                let report = check_flat(code, width, stride);
                assert!(
                    report.proved(),
                    "{} at width {bits}: {:?}",
                    code.name(),
                    report.failure
                );
                assert!(report.obligations >= width.bits() as usize);
            }
        }
    }

    /// The induction is falsifiable: weakening the bus-invert bound by
    /// one must produce a counterexample, proving the obligation is
    /// tight rather than vacuous.
    #[test]
    fn bus_invert_bound_is_tight() {
        let (width, stride) = params(8);
        let code = FlatCode::BusInvert;
        let mut bdd = Bdd::new();
        let vars = enc_vars(&mut bdd, code, width);
        let step = encode_step(
            &mut bdd,
            code,
            width,
            stride,
            &vars.addr,
            vars.sel,
            &vars.state,
        );
        let (prev_bus, prev_inv) = (&vars.state[..8], vars.state[8]);
        let pc = transition_count(&mut bdd, prev_bus, &step.bus, &[prev_inv], &step.aux);
        // The real bound w/2 = 4 holds (the INV toggle is part of the
        // encoder's vote)...
        let over4 = gt_const(&mut bdd, &pc, 4);
        assert_eq!(over4, crate::bdd::FALSE);
        // ...and is achieved: transitions > 3 is satisfiable.
        let over3 = gt_const(&mut bdd, &pc, 3);
        assert!(bdd.sat_one(over3).is_some());
    }
}
