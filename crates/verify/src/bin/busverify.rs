//! `busverify` — symbolic verification driver for the buscode
//! workspace.
//!
//! Plans a deterministic suite of proof cells — gate-level equivalence
//! of every staged codec netlist against the golden models, sequential
//! induction of `decode ∘ encode = identity` plus the paper invariants
//! at the sweep width, and width-8 product-machine reachability — and
//! discharges them with the self-contained BDD engine. Exits nonzero
//! when any cell fails (counterexample) or errors.
//!
//! `--jobs N` shards cells across worker threads; the output carries no
//! timings or other volatile state, so it is byte-identical for any
//! worker count.
//!
//! ```text
//! busverify [--width BITS] [--mode all|cec|seq|image]
//!           [--code NAME] [--stage raw|opt|mapped]
//!           [--format text|json] [--seed S] [--jobs N] [--quiet]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use buscode_core::BusWidth;
use buscode_engine::cli::{
    self, CommonArgs, JsonPayload, Outcome, Report as _, ToolRun, COMMON_USAGE,
};
use buscode_verify::suite::{plan, render_json, run_cell, Mode};
use buscode_verify::{Stage, SuiteReport};

const TOOL: &str = "busverify";

fn usage() -> String {
    format!(
        "usage: busverify [--width BITS] [--mode all|cec|seq|image] [--code NAME] \
         [--stage raw|opt|mapped] {COMMON_USAGE}"
    )
}

struct Options {
    width: BusWidth,
    mode: Mode,
    code: Option<String>,
    stage: Option<Stage>,
}

fn parse_tool_args(args: &[String]) -> Result<Options, String> {
    let mut width = 32u32;
    let mut mode = Mode::All;
    let mut code = None;
    let mut stage = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--width" => {
                let value = it.next().ok_or("--width needs a value")?;
                width = match value.parse::<u32>() {
                    Ok(v) if (1..=64).contains(&v) => v,
                    _ => return Err(format!("width '{value}' is not in 1..=64")),
                };
            }
            "--mode" => {
                mode = Mode::parse(it.next().ok_or("--mode needs a value")?)?;
            }
            "--code" => {
                code = Some(it.next().ok_or("--code needs a value")?.clone());
            }
            "--stage" => {
                let value = it.next().ok_or("--stage needs a value")?;
                stage = Some(match value.as_str() {
                    "raw" => Stage::Raw,
                    "opt" => Stage::Opt,
                    "mapped" => Stage::Mapped,
                    other => {
                        return Err(format!("unknown stage '{other}' (expected raw|opt|mapped)"))
                    }
                });
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let width = BusWidth::new(width).map_err(|e| e.to_string())?;
    Ok(Options {
        width,
        mode,
        code,
        stage,
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonArgs::extract(&mut args) {
        Ok(common) => common,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    if common.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_tool_args(&args) {
        Ok(opts) => opts,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    let run = ToolRun::new(TOOL, env!("CARGO_PKG_VERSION"), common);
    let engine = common.engine();

    let cells = plan(opts.width, opts.mode, opts.code.as_deref(), opts.stage);
    if cells.is_empty() {
        return run.finish(&Outcome::error(
            "no proof cells match the requested filters".to_string(),
        ));
    }
    let results = engine.run(cells, |cell| run_cell(&cell));

    let report = SuiteReport {
        width: opts.width,
        results,
    };
    let (proved, failed, errors) = report.tally();
    let text = report.render_text();
    let data = JsonPayload::new()
        .u64("width", u64::from(opts.width.bits()))
        .u64("jobs", engine.jobs() as u64)
        .u64("proved", proved as u64)
        .u64("failed", failed as u64)
        .u64("errors", errors as u64)
        .raw("cells", &render_json(&report.results))
        .finish();
    let outcome = if errors > 0 {
        Outcome::error(format!("{errors} cell(s) could not run"))
    } else if failed > 0 {
        Outcome::failure(format!("{failed} cell(s) failed"), text, data)
    } else {
        Outcome::success(text, data)
    };
    run.finish(&outcome.with_metrics(report.metrics()))
}
