//! A self-contained reduced ordered binary decision diagram (ROBDD)
//! engine.
//!
//! The workspace is offline, so this is a from-scratch manager rather
//! than a binding to CUDD or a crates.io package: hash-consed nodes in a
//! flat arena, a unique table for canonicity, and a memoized
//! if-then-else ([`Bdd::ite`]) from which every connective derives. No
//! complement edges — the node count stays within a few million for
//! every proof in this crate, and the simpler invariants are easier to
//! audit.
//!
//! Canonicity is the property everything else leans on: two functions
//! are equal **iff** their [`Ref`]s are equal, so an equivalence check
//! is `xor == FALSE` and a tautology check is `f == TRUE`, both O(1)
//! after construction.
//!
//! Variable order is the index order of [`Bdd::var`] allocations. The
//! callers in [`cec`][crate::cec] and [`seq`][crate::seq] interleave
//! related bit columns (address bit *i* next to the state bits it is
//! compared against), which keeps the ripple-carry comparators and
//! symmetric threshold functions of the codecs polynomial-sized; see
//! `DESIGN.md` §9.
//!
//! The manager implements [`BoolAlg`], so the symbolic golden models of
//! [`buscode_core::sym`] and the netlist evaluator of
//! [`buscode_logic::symeval`] run over BDDs unchanged.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use buscode_core::sym::BoolAlg;

/// A handle to a BDD node (an index into the manager's arena).
///
/// Refs are only meaningful for the [`Bdd`] that created them; equality
/// of refs from the same manager is equality of Boolean functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

/// The constant-false function.
pub const FALSE: Ref = Ref(0);
/// The constant-true function.
pub const TRUE: Ref = Ref(1);

/// Terminals carry this pseudo-variable, which orders after every real
/// variable so cofactoring treats them as independent of everything.
const TERMINAL_VAR: u32 = u32::MAX;

/// Hard ceiling on arena size. Every proof in this crate stays well
/// under this; hitting it means a variable-ordering bug, and panicking
/// with a clear message beats grinding the host into swap.
const MAX_NODES: usize = 1 << 24;

#[derive(Clone, Copy)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// A multiply-mix hasher for the unique and ITE tables. The default
/// SipHash is DoS-resistant but measurably slower on these hot,
/// fixed-width keys; nothing here hashes attacker-controlled data.
#[derive(Default)]
pub struct MixHasher(u64);

impl Hasher for MixHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u32(&mut self, value: u32) {
        self.0 = (self.0 ^ u64::from(value)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }

    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

type MixMap<K, V> = HashMap<K, V, BuildHasherDefault<MixHasher>>;

/// The BDD manager: node arena, unique table, and operation caches.
pub struct Bdd {
    nodes: Vec<Node>,
    unique: MixMap<(u32, Ref, Ref), Ref>,
    ite_cache: MixMap<(Ref, Ref, Ref), Ref>,
    num_vars: u32,
}

impl Default for Bdd {
    fn default() -> Self {
        Bdd::new()
    }
}

impl Bdd {
    /// Creates a manager containing only the two terminals.
    #[must_use]
    pub fn new() -> Self {
        let terminal = |_| Node {
            var: TERMINAL_VAR,
            lo: FALSE,
            hi: TRUE,
        };
        Bdd {
            nodes: vec![terminal(0), terminal(1)],
            unique: MixMap::default(),
            ite_cache: MixMap::default(),
            num_vars: 0,
        }
    }

    /// Allocates the next variable (its index is the next position in
    /// the global order) and returns the function "variable is true".
    pub fn fresh_var(&mut self) -> Ref {
        let index = self.num_vars;
        self.num_vars += 1;
        self.mk(index, FALSE, TRUE)
    }

    /// The function "variable `index` is true". The variable must have
    /// been allocated already (or be allocated by this call if `index`
    /// is the next free one).
    pub fn var(&mut self, index: u32) -> Ref {
        assert!(
            index <= self.num_vars,
            "variable {index} allocated out of order"
        );
        if index == self.num_vars {
            self.num_vars += 1;
        }
        self.mk(index, FALSE, TRUE)
    }

    /// Number of variables allocated so far.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of live nodes, terminals included. Deterministic for a
    /// deterministic operation sequence, so it is safe to print in
    /// reports that must be byte-identical across `--jobs` values.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        assert!(
            self.nodes.len() < MAX_NODES,
            "BDD exceeded {MAX_NODES} nodes; variable ordering bug"
        );
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    fn top_var(&self, f: Ref) -> u32 {
        self.nodes[f.0 as usize].var
    }

    fn cofactors(&self, f: Ref, var: u32) -> (Ref, Ref) {
        let node = self.nodes[f.0 as usize];
        if node.var == var {
            (node.lo, node.hi)
        } else {
            (f, f)
        }
    }

    /// Memoized if-then-else: `f ? g : h`. Every connective reduces to
    /// this one operator.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            return r;
        }
        let var = self.top_var(f).min(self.top_var(g)).min(self.top_var(h));
        let (f0, f1) = self.cofactors(f, var);
        let (g0, g1) = self.cofactors(g, var);
        let (h0, h1) = self.cofactors(h, var);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(var, lo, hi);
        self.ite_cache.insert(key, r);
        r
    }

    /// Existential quantification of `vars` (any order) out of `f`.
    pub fn exists(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let mut set: Vec<u32> = vars.to_vec();
        set.sort_unstable();
        let mut cache: MixMap<Ref, Ref> = MixMap::default();
        self.exists_rec(f, &set, &mut cache)
    }

    fn exists_rec(&mut self, f: Ref, set: &[u32], cache: &mut MixMap<Ref, Ref>) -> Ref {
        let var = self.top_var(f);
        if var == TERMINAL_VAR {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let (lo, hi) = self.cofactors(f, var);
        let lo = self.exists_rec(lo, set, cache);
        let hi = self.exists_rec(hi, set, cache);
        let r = if set.binary_search(&var).is_ok() {
            self.ite(lo, TRUE, hi)
        } else {
            self.mk(var, lo, hi)
        };
        cache.insert(f, r);
        r
    }

    /// One satisfying assignment of `f` as `(variable, value)` pairs for
    /// the variables along the chosen path; variables not listed are
    /// don't-cares (callers conventionally default them to `false`).
    /// `None` iff `f` is unsatisfiable.
    #[must_use]
    pub fn sat_one(&self, f: Ref) -> Option<Vec<(u32, bool)>> {
        if f == FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut at = f;
        while at != TRUE {
            let node = self.nodes[at.0 as usize];
            // In a reduced BDD every non-FALSE node reaches TRUE, so one
            // of the children is satisfiable.
            if node.hi != FALSE {
                path.push((node.var, true));
                at = node.hi;
            } else {
                path.push((node.var, false));
                at = node.lo;
            }
        }
        Some(path)
    }

    /// Evaluates `f` under a concrete assignment (indexed by variable).
    #[must_use]
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut at = f;
        loop {
            let node = self.nodes[at.0 as usize];
            if node.var == TERMINAL_VAR {
                return at == TRUE;
            }
            at = if assignment.get(node.var as usize).copied().unwrap_or(false) {
                node.hi
            } else {
                node.lo
            };
        }
    }
}

impl BoolAlg for Bdd {
    type B = Ref;

    fn constant(&mut self, value: bool) -> Ref {
        if value {
            TRUE
        } else {
            FALSE
        }
    }

    fn not(&mut self, a: Ref) -> Ref {
        self.ite(a, FALSE, TRUE)
    }

    fn and(&mut self, a: Ref, b: Ref) -> Ref {
        self.ite(a, b, FALSE)
    }

    fn or(&mut self, a: Ref, b: Ref) -> Ref {
        self.ite(a, TRUE, b)
    }

    fn xor(&mut self, a: Ref, b: Ref) -> Ref {
        let nb = self.not(b);
        self.ite(a, nb, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buscode_core::rng::Rng64;

    /// Exhaustively compares a BDD against a truth-table oracle.
    fn assert_matches_oracle(bdd: &Bdd, f: Ref, vars: u32, oracle: impl Fn(u64) -> bool) {
        for input in 0..(1u64 << vars) {
            let assignment: Vec<bool> = (0..vars).map(|i| (input >> i) & 1 == 1).collect();
            assert_eq!(bdd.eval(f, &assignment), oracle(input), "input {input:#b}");
        }
    }

    #[test]
    fn connectives_match_truth_tables() {
        let mut bdd = Bdd::new();
        let a = bdd.fresh_var();
        let b = bdd.fresh_var();
        let c = bdd.fresh_var();
        let ab = bdd.and(a, b);
        let f = bdd.xor(ab, c);
        assert_matches_oracle(&bdd, f, 3, |x| {
            ((x & 1 == 1) && (x & 2 == 2)) ^ (x & 4 == 4)
        });
        let g = bdd.or(a, c);
        assert_matches_oracle(&bdd, g, 3, |x| (x & 1 == 1) || (x & 4 == 4));
    }

    #[test]
    fn canonicity_makes_equal_functions_identical() {
        let mut bdd = Bdd::new();
        let a = bdd.fresh_var();
        let b = bdd.fresh_var();
        // a ^ b built two structurally different ways.
        let direct = bdd.xor(a, b);
        let na = bdd.not(a);
        let nb = bdd.not(b);
        let t1 = bdd.and(a, nb);
        let t2 = bdd.and(na, b);
        let rebuilt = bdd.or(t1, t2);
        assert_eq!(direct, rebuilt);
        // Tautology and contradiction collapse to the terminals.
        let taut = bdd.xor(direct, rebuilt);
        assert_eq!(taut, FALSE);
        let either = bdd.or(direct, TRUE);
        assert_eq!(either, TRUE);
    }

    #[test]
    fn random_expressions_agree_with_concrete_evaluation() {
        let mut rng = Rng64::seed_from_u64(5);
        for _ in 0..50 {
            let mut bdd = Bdd::new();
            let vars: Vec<Ref> = (0..6).map(|_| bdd.fresh_var()).collect();
            // A random expression DAG over 6 variables.
            let mut pool = vars.clone();
            for _ in 0..40 {
                let a = pool[(rng.gen::<u64>() as usize) % pool.len()];
                let b = pool[(rng.gen::<u64>() as usize) % pool.len()];
                let node = match rng.gen::<u64>() % 4 {
                    0 => bdd.and(a, b),
                    1 => bdd.or(a, b),
                    2 => bdd.xor(a, b),
                    _ => bdd.not(a),
                };
                pool.push(node);
            }
            let f = *pool.last().unwrap();
            // Check eval against sat_one's claim and against ite identities.
            if let Some(path) = bdd.sat_one(f) {
                let mut assignment = vec![false; 6];
                for (var, value) in path {
                    assignment[var as usize] = value;
                }
                assert!(bdd.eval(f, &assignment));
            } else {
                assert_eq!(f, FALSE);
            }
            let nf = bdd.not(f);
            let tautology = bdd.or(f, nf);
            assert_eq!(tautology, TRUE);
            let contradiction = bdd.and(f, nf);
            assert_eq!(contradiction, FALSE);
        }
    }

    #[test]
    fn exists_quantifies_out_variables() {
        let mut bdd = Bdd::new();
        let a = bdd.fresh_var();
        let b = bdd.fresh_var();
        let c = bdd.fresh_var();
        // f = (a & b) | (!a & c): exists a => b | c.
        let ab = bdd.and(a, b);
        let na = bdd.not(a);
        let nac = bdd.and(na, c);
        let f = bdd.or(ab, nac);
        let ex = bdd.exists(f, &[0]);
        let bc = bdd.or(b, c);
        assert_eq!(ex, bc);
        // Quantifying everything out of a satisfiable function gives TRUE.
        let all = bdd.exists(f, &[0, 1, 2]);
        assert_eq!(all, TRUE);
    }

    #[test]
    fn sat_one_finds_the_narrow_cube() {
        let mut bdd = Bdd::new();
        let vars: Vec<Ref> = (0..8).map(|_| bdd.fresh_var()).collect();
        // Exactly one satisfying assignment: 0b10110101.
        let want = 0b1011_0101u64;
        let mut f = TRUE;
        for (i, &v) in vars.iter().enumerate() {
            let lit = if (want >> i) & 1 == 1 { v } else { bdd.not(v) };
            f = bdd.and(f, lit);
        }
        let path = bdd.sat_one(f).unwrap();
        let mut assignment = [false; 8];
        for (var, value) in path {
            assignment[var as usize] = value;
        }
        let got: u64 = assignment
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i));
        assert_eq!(got, want);
    }
}
