//! The `busverify` proof suite: cell planning, execution, rendering.
//!
//! A *cell* is one independent proof — an equivalence check of a staged
//! codec netlist, a sequential induction at the sweep width, or a
//! width-8 reachability cross-check. Cells are planned in a fixed
//! deterministic order and executed through the shared
//! [`buscode_engine::sweep::SweepEngine`], whose contract (results in
//! input order regardless of worker count) plus the absence of any
//! volatile line in the text rendering makes `busverify --jobs 8`
//! byte-identical to a serial run. BDD node counts *are* printed: the
//! manager allocates nodes in construction order and never iterates a
//! hash map, so they are exactly reproducible.
//!
//! When an equivalence cell fails, the structural linter
//! ([`buscode_lint::lint_netlist`]) runs over the offending netlist and
//! its findings are cross-linked under the counterexample, pointing at
//! likely structural culprits (dead cones, constant outputs) next to
//! the simulator-replayed mismatch.

use buscode_core::sym::FlatCode;
use buscode_core::{BusWidth, Stride};
use buscode_engine::cli::{json_escape, Report as CliReport};
use buscode_lint::lint_netlist;
use buscode_telemetry::MetricSet;

use crate::cases::{check_self_organizing, check_working_zone};
use crate::cec::{
    check_decoder, check_encoder, gate_codes, stage_decoder, stage_encoder, Counterexample, Stage,
};
use crate::image::check_reachable;
use crate::seq::{check_flat, flat_codes};

/// Which codec side an equivalence cell checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Address in, bus out.
    Encoder,
    /// Bus in, address out.
    Decoder,
}

impl Role {
    fn name(self) -> &'static str {
        match self {
            Role::Encoder => "encoder",
            Role::Decoder => "decoder",
        }
    }
}

/// Proof families selectable with `--mode`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Everything.
    All,
    /// Gate-level equivalence cells only.
    Cec,
    /// Sequential induction / case-decomposition cells only.
    Seq,
    /// Width-8 reachability cells only.
    Image,
}

impl Mode {
    /// Parses a `--mode` value.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized value.
    pub fn parse(value: &str) -> Result<Mode, String> {
        match value {
            "all" => Ok(Mode::All),
            "cec" => Ok(Mode::Cec),
            "seq" => Ok(Mode::Seq),
            "image" => Ok(Mode::Image),
            other => Err(format!(
                "unknown mode '{other}' (expected all|cec|seq|image)"
            )),
        }
    }
}

/// The work of one proof cell.
#[derive(Clone, Debug)]
pub enum CellKind {
    /// Gate-level equivalence of one staged codec netlist.
    Cec {
        /// Code under check.
        code: FlatCode,
        /// Encoder or decoder side.
        role: Role,
        /// Synthesis stage.
        stage: Stage,
    },
    /// Sequential induction for a flat code at the sweep width.
    SeqFlat(FlatCode),
    /// Case-decomposition proof of the working-zone code.
    SeqWz,
    /// Case-decomposition proof of the self-organizing code.
    SeqSol,
    /// Width-8 product-machine reachability for a gate code.
    Image(FlatCode),
}

/// One planned proof cell.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Stable cell name, e.g. `cec:t0-encoder[opt]`.
    pub name: String,
    /// What to prove.
    pub kind: CellKind,
    /// Sweep width for cec/seq cells (image cells fix width 8).
    pub width: BusWidth,
}

/// Outcome class of one cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// Every obligation discharged.
    Proved,
    /// A concrete counterexample or violated obligation.
    Failed,
    /// The cell could not run (construction or geometry error).
    Error,
}

impl CellStatus {
    fn name(self) -> &'static str {
        match self {
            CellStatus::Proved => "proved",
            CellStatus::Failed => "FAILED",
            CellStatus::Error => "ERROR",
        }
    }
}

/// The outcome of one executed cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Cell name, copied from the spec.
    pub name: String,
    /// Outcome class.
    pub status: CellStatus,
    /// Obligations discharged (0 on error).
    pub obligations: usize,
    /// Final BDD arena size (deterministic; 0 on error).
    pub nodes: usize,
    /// Failure narrative: counterexample, replay, lint cross-links.
    pub details: Vec<String>,
}

/// Image cells always run at width 8: the exact fixpoint is the
/// cross-check of the induction strategy, not a full-width proof.
fn image_width() -> BusWidth {
    BusWidth::new(8).unwrap_or(BusWidth::MIPS)
}

fn sweep_stride(width: BusWidth) -> Stride {
    Stride::new(4, width).unwrap_or(Stride::WORD)
}

/// Largest power of two not exceeding `n` (`n >= 1`).
fn floor_power_of_two(n: u32) -> u32 {
    1 << (31 - n.leading_zeros())
}

/// Working-zone proof geometry at a sweep width.
fn wz_params(width: BusWidth) -> (Stride, u32) {
    (sweep_stride(width), 4)
}

/// Self-organizing proof geometry at a sweep width: a quarter of the
/// lines carry the binary offset, the list fills the one-hot lines up
/// to 16 entries.
fn sol_params(width: BusWidth) -> (u32, u32) {
    let low_bits = width.bits() / 4;
    let high_lines = width.bits() - low_bits;
    (low_bits, floor_power_of_two(high_lines.min(16)))
}

/// Plans the proof cells for one run, in fixed deterministic order:
/// equivalence cells (code-major, encoder before decoder, stages in
/// pipeline order), then sequential cells, then reachability cells.
/// Table-code cells are planned only at power-of-two widths (their
/// proof geometry requirement).
#[must_use]
pub fn plan(
    width: BusWidth,
    mode: Mode,
    code_filter: Option<&str>,
    stage_filter: Option<Stage>,
) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    let wants = |name: &str| code_filter.is_none_or(|f| f == name);
    if matches!(mode, Mode::All | Mode::Cec) {
        for code in gate_codes() {
            if !wants(code.name()) {
                continue;
            }
            for role in [Role::Encoder, Role::Decoder] {
                for stage in Stage::all() {
                    if stage_filter.is_some_and(|f| f != stage) {
                        continue;
                    }
                    cells.push(CellSpec {
                        name: format!("cec:{}-{}[{}]", code.name(), role.name(), stage.name()),
                        kind: CellKind::Cec { code, role, stage },
                        width,
                    });
                }
            }
        }
    }
    if matches!(mode, Mode::All | Mode::Seq) && stage_filter.is_none() {
        for code in flat_codes() {
            if wants(code.name()) {
                cells.push(CellSpec {
                    name: format!("seq:{}", code.name()),
                    kind: CellKind::SeqFlat(code),
                    width,
                });
            }
        }
        if width.bits().is_power_of_two() {
            if wants("working-zone") {
                cells.push(CellSpec {
                    name: "seq:working-zone".to_string(),
                    kind: CellKind::SeqWz,
                    width,
                });
            }
            if wants("self-org") {
                cells.push(CellSpec {
                    name: "seq:self-org".to_string(),
                    kind: CellKind::SeqSol,
                    width,
                });
            }
        }
    }
    if matches!(mode, Mode::All | Mode::Image) && stage_filter.is_none() {
        for code in gate_codes() {
            if wants(code.name()) {
                cells.push(CellSpec {
                    name: format!("image:{}", code.name()),
                    kind: CellKind::Image(code),
                    width: image_width(),
                });
            }
        }
    }
    cells
}

fn describe_cex(cex: &Counterexample, role: Role) -> Vec<String> {
    let input = match role {
        Role::Encoder => format!("address={:#x}", cex.word_in),
        Role::Decoder => format!("bus={:#x} aux={:#x}", cex.word_in, cex.aux_in),
    };
    let state: String = cex
        .state
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    vec![
        format!(
            "counterexample on {}: {} sel={} state={} — golden={}, netlist={}",
            cex.signal,
            input,
            u8::from(cex.sel),
            if state.is_empty() {
                "-".to_string()
            } else {
                state
            },
            u8::from(cex.expected),
            u8::from(cex.got)
        ),
        format!(
            "replay: {}{}",
            if cex.replay.confirmed {
                "confirmed — "
            } else {
                ""
            },
            cex.replay.detail
        ),
    ]
}

/// Executes one planned cell. Infallible by design: errors become
/// [`CellStatus::Error`] results so a sweep never aborts midway.
#[must_use]
pub fn run_cell(spec: &CellSpec) -> CellResult {
    let width = spec.width;
    let stride = sweep_stride(width);
    let result = |status, obligations, nodes, details| CellResult {
        name: spec.name.clone(),
        status,
        obligations,
        nodes,
        details,
    };
    let error = |message: String| result(CellStatus::Error, 0, 0, vec![message]);
    match &spec.kind {
        CellKind::Cec { code, role, stage } => {
            let (report, netlist) = match role {
                Role::Encoder => match stage_encoder(*code, width, stride, *stage) {
                    Ok(staged) => match check_encoder(width, stride, &staged) {
                        Ok(report) => (report, staged.circuit.netlist),
                        Err(e) => return error(e),
                    },
                    Err(e) => return error(e),
                },
                Role::Decoder => match stage_decoder(*code, width, stride, *stage) {
                    Ok(staged) => match check_decoder(width, stride, &staged) {
                        Ok(report) => (report, staged.circuit.netlist),
                        Err(e) => return error(e),
                    },
                    Err(e) => return error(e),
                },
            };
            match report.cex {
                None => result(
                    CellStatus::Proved,
                    report.obligations,
                    report.nodes,
                    Vec::new(),
                ),
                Some(cex) => {
                    let mut details = describe_cex(&cex, *role);
                    let lint = lint_netlist(&spec.name, &netlist);
                    if !lint.is_clean() {
                        details.push("structural findings on the failing netlist:".to_string());
                        details.extend(lint.brief().into_iter().map(|l| format!("  {l}")));
                    }
                    result(
                        CellStatus::Failed,
                        report.obligations,
                        report.nodes,
                        details,
                    )
                }
            }
        }
        CellKind::SeqFlat(code) => {
            let report = check_flat(*code, width, stride);
            match report.failure {
                None => result(
                    CellStatus::Proved,
                    report.obligations,
                    report.nodes,
                    Vec::new(),
                ),
                Some(f) => {
                    let state: String =
                        f.state.iter().map(|&b| if b { '1' } else { '0' }).collect();
                    let details = vec![format!(
                        "violated {}: address={:#x} sel={} state={}",
                        f.obligation,
                        f.addr,
                        u8::from(f.sel),
                        if state.is_empty() {
                            "-".to_string()
                        } else {
                            state
                        }
                    )];
                    result(
                        CellStatus::Failed,
                        report.obligations,
                        report.nodes,
                        details,
                    )
                }
            }
        }
        CellKind::SeqWz => {
            let (stride, zones) = wz_params(width);
            match check_working_zone(width, stride, zones) {
                Err(e) => error(e),
                Ok(report) => match report.failure {
                    None => result(
                        CellStatus::Proved,
                        report.obligations,
                        report.nodes,
                        Vec::new(),
                    ),
                    Some(f) => result(
                        CellStatus::Failed,
                        report.obligations,
                        report.nodes,
                        vec![f],
                    ),
                },
            }
        }
        CellKind::SeqSol => {
            let (low_bits, entries) = sol_params(width);
            match check_self_organizing(width, low_bits, entries) {
                Err(e) => error(e),
                Ok(report) => match report.failure {
                    None => result(
                        CellStatus::Proved,
                        report.obligations,
                        report.nodes,
                        Vec::new(),
                    ),
                    Some(f) => result(
                        CellStatus::Failed,
                        report.obligations,
                        report.nodes,
                        vec![f],
                    ),
                },
            }
        }
        CellKind::Image(code) => match check_reachable(*code, spec.width, sweep_stride(spec.width))
        {
            Err(e) => error(e),
            Ok(report) => {
                let details = report.failure.clone().into_iter().collect();
                let status = if report.proved() {
                    CellStatus::Proved
                } else {
                    CellStatus::Failed
                };
                result(status, report.obligations, report.nodes, details)
            }
        },
    }
}

/// Counts of each outcome class.
#[must_use]
pub fn tally(results: &[CellResult]) -> (usize, usize, usize) {
    let proved = results
        .iter()
        .filter(|r| r.status == CellStatus::Proved)
        .count();
    let failed = results
        .iter()
        .filter(|r| r.status == CellStatus::Failed)
        .count();
    let errors = results
        .iter()
        .filter(|r| r.status == CellStatus::Error)
        .count();
    (proved, failed, errors)
}

/// Renders the suite as stable text: no timings, no machine state —
/// every line is reproducible across runs and worker counts.
#[must_use]
pub fn render_text(width: BusWidth, results: &[CellResult]) -> String {
    let name_width = results.iter().map(|r| r.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "width {}: {} proof cells\n",
        width.bits(),
        results.len()
    ));
    for r in results {
        out.push_str(&format!(
            "{:<name_width$}  {:<7}  obligations={:<5}  nodes={}\n",
            r.name,
            r.status.name(),
            r.obligations,
            r.nodes
        ));
        for line in &r.details {
            out.push_str(&format!("    {line}\n"));
        }
    }
    let (proved, failed, errors) = tally(results);
    out.push_str(&format!(
        "summary: {proved} proved, {failed} failed, {errors} errors\n"
    ));
    out
}

/// A completed proof suite: the planned width plus every cell result,
/// renderable through the unified [`Report`][CliReport] API.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// The bus width the suite was planned at.
    pub width: BusWidth,
    /// Cell results in plan order.
    pub results: Vec<CellResult>,
}

impl SuiteReport {
    /// Outcome counts, in `(proved, failed, errors)` order.
    #[must_use]
    pub fn tally(&self) -> (usize, usize, usize) {
        tally(&self.results)
    }

    /// Renders the suite as stable text (see [`render_text`]).
    #[must_use]
    pub fn render_text(&self) -> String {
        render_text(self.width, &self.results)
    }

    /// Renders the suite as one JSON object with summary counts and the
    /// per-cell array (see [`render_json`]).
    #[must_use]
    pub fn render_json(&self) -> String {
        let (proved, failed, errors) = self.tally();
        format!(
            "{{\"width\":{},\"proved\":{proved},\"failed\":{failed},\"errors\":{errors},\"cells\":{}}}",
            self.width.bits(),
            render_json(&self.results)
        )
    }
}

impl CliReport for SuiteReport {
    fn render_text(&self) -> String {
        SuiteReport::render_text(self)
    }

    fn render_json(&self) -> String {
        SuiteReport::render_json(self)
    }

    fn metrics(&self) -> MetricSet {
        let (proved, failed, errors) = self.tally();
        let mut set = MetricSet::new();
        set.add_counter("verify.cells", self.results.len() as u64);
        set.add_counter("verify.proved", proved as u64);
        set.add_counter("verify.failed", failed as u64);
        set.add_counter("verify.errors", errors as u64);
        let obligations: u64 = self.results.iter().map(|r| r.obligations as u64).sum();
        let nodes: u64 = self.results.iter().map(|r| r.nodes as u64).sum();
        set.add_counter("verify.obligations", obligations);
        set.add_counter("verify.bdd_nodes", nodes);
        set
    }
}

/// Renders the suite as a JSON array (cell objects in plan order).
#[must_use]
pub fn render_json(results: &[CellResult]) -> String {
    let cells: Vec<String> = results
        .iter()
        .map(|r| {
            let details: Vec<String> = r
                .details
                .iter()
                .map(|d| format!("\"{}\"", json_escape(d)))
                .collect();
            format!(
                "{{\"cell\":\"{}\",\"status\":\"{}\",\"obligations\":{},\"nodes\":{},\"details\":[{}]}}",
                json_escape(&r.name),
                r.status.name(),
                r.obligations,
                r.nodes,
                details.join(",")
            )
        })
        .collect();
    format!("[{}]", cells.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use buscode_engine::sweep::SweepEngine;

    fn w8() -> BusWidth {
        BusWidth::new(8).unwrap()
    }

    #[test]
    fn plan_is_complete_and_deterministic() {
        let cells = plan(w8(), Mode::All, None, None);
        // 9 codes × 2 roles × 3 stages + 10 flat + wz + sol + 9 image.
        assert_eq!(cells.len(), 54 + 12 + 9);
        let again = plan(w8(), Mode::All, None, None);
        let names: Vec<_> = cells.iter().map(|c| c.name.clone()).collect();
        let names_again: Vec<_> = again.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names, names_again);
        assert_eq!(plan(w8(), Mode::Cec, None, None).len(), 54);
        assert_eq!(plan(w8(), Mode::Seq, None, None).len(), 12);
        assert_eq!(plan(w8(), Mode::Image, None, None).len(), 9);
        assert_eq!(plan(w8(), Mode::Cec, Some("t0"), Some(Stage::Opt)).len(), 2);
    }

    #[test]
    fn non_power_of_two_width_skips_table_codes() {
        let width = BusWidth::new(12).unwrap();
        let cells = plan(width, Mode::Seq, None, None);
        assert_eq!(cells.len(), 10);
        assert!(cells.iter().all(|c| !c.name.contains("working-zone")));
    }

    #[test]
    fn parallel_text_output_is_byte_identical_to_serial() {
        let cells = plan(w8(), Mode::Seq, None, None);
        let serial: Vec<CellResult> = cells.iter().map(run_cell).collect();
        let parallel = SweepEngine::new(8).run(cells.clone(), |c| run_cell(&c));
        assert_eq!(render_text(w8(), &serial), render_text(w8(), &parallel));
    }

    #[test]
    fn sol_geometry_adapts_to_narrow_buses() {
        assert_eq!(sol_params(w8()), (2, 4));
        assert_eq!(sol_params(BusWidth::new(32).unwrap()), (8, 16));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let cells = plan(w8(), Mode::Image, Some("binary"), None);
        let results: Vec<CellResult> = cells.iter().map(run_cell).collect();
        let json = render_json(&results);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"cell\":\"image:binary\""));
        assert!(json.contains("\"status\":\"proved\""));
    }
}
