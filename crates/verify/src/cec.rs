//! Combinational equivalence checking of the gate-level codecs against
//! the symbolic golden models, with register correspondence.
//!
//! Each check evaluates one codec netlist symbolically over BDDs
//! ([`buscode_logic::symeval`]) with free variables on every primary
//! input and flip-flop output, evaluates the matching golden step
//! function ([`buscode_core::sym::encode_step`] /
//! [`buscode_core::sym::decode_step`]) over the same
//! variables, and requires every output line *and every flip-flop
//! next-state function* to be the identical BDD. By canonicity that is
//! a full-width proof — at width 32 it covers the 2^67-state input
//! space a simulation could never enumerate.
//!
//! Register correspondence across stages: the raw netlist's flip-flop
//! creation order matches the golden model's flat state layout by
//! construction (documented on `FlatCode::enc_state_bits`); the
//! optimizer and technology mapper report [`buscode_logic::NetMap`]s,
//! which are
//! composed to map each raw flip-flop to its surviving image, so the
//! optimized and mapped netlists are checked against the same spec
//! without trusting that the transforms preserve flop order.
//!
//! On a mismatch the checker extracts a satisfying assignment of the
//! difference, decodes it into a concrete `(address, SEL, state)`
//! triple, and *replays* it on the cycle simulator — flipping the
//! assigned flip-flops from reset, driving the inputs, stepping one
//! clock — to confirm the disagreement is real silicon behaviour, not a
//! modelling artifact.

use std::collections::HashMap;

use buscode_core::sym::{decode_step, encode_step, BoolAlg, FlatCode};
use buscode_core::{BusWidth, Stride};
use buscode_logic::codecs::{
    binary_decoder, binary_encoder, bus_invert_decoder, bus_invert_encoder, dual_t0_decoder,
    dual_t0_encoder, dual_t0bi_decoder, dual_t0bi_encoder, gray_decoder, gray_encoder,
    offset_decoder, offset_encoder, t0_decoder, t0_encoder, t0bi_decoder, t0bi_encoder,
    t0xor_decoder, t0xor_encoder, DecoderCircuit, EncoderCircuit,
};
use buscode_logic::symeval::{dffs, evaluate};
use buscode_logic::{NetId, Netlist, Simulator};

use crate::bdd::{Bdd, Ref, FALSE};
use crate::vars::{assigned_bit, assigned_word, dec_vars, enc_vars};

/// A synthesis stage of a codec netlist, mirroring the `buslint` sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// As built by the [`buscode_logic::codecs`] constructors.
    Raw,
    /// After [`buscode_logic::optimize`] (folding, sharing, dead-gate
    /// removal).
    Opt,
    /// After optimization and [`buscode_logic::tech_map`] (NAND/NOR/NOT
    /// library).
    Mapped,
}

impl Stage {
    /// Every stage, in pipeline order.
    #[must_use]
    pub fn all() -> [Stage; 3] {
        [Stage::Raw, Stage::Opt, Stage::Mapped]
    }

    /// Stable lowercase name used in cell labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Raw => "raw",
            Stage::Opt => "opt",
            Stage::Mapped => "mapped",
        }
    }
}

/// The nine codecs with gate-level netlists, in report order. (Beach
/// has a flat golden model but no netlist; the table codes have
/// neither.)
#[must_use]
pub fn gate_codes() -> [FlatCode; 9] {
    [
        FlatCode::Binary,
        FlatCode::Gray,
        FlatCode::BusInvert,
        FlatCode::T0,
        FlatCode::T0Bi,
        FlatCode::T0Xor,
        FlatCode::DualT0,
        FlatCode::DualT0Bi,
        FlatCode::Offset,
    ]
}

/// Builds the encoder netlist of a gate-level code.
///
/// # Errors
///
/// Fails for codes without a netlist (Beach) or invalid parameters.
pub fn build_encoder(
    code: FlatCode,
    width: BusWidth,
    stride: Stride,
) -> Result<EncoderCircuit, String> {
    let built = match code {
        FlatCode::Binary => binary_encoder(width),
        FlatCode::Gray => gray_encoder(width, stride),
        FlatCode::BusInvert => bus_invert_encoder(width),
        FlatCode::T0 => t0_encoder(width, stride),
        FlatCode::T0Bi => t0bi_encoder(width, stride),
        FlatCode::DualT0 => dual_t0_encoder(width, stride),
        FlatCode::DualT0Bi => dual_t0bi_encoder(width, stride),
        FlatCode::T0Xor => t0xor_encoder(width, stride),
        FlatCode::Offset => offset_encoder(width),
        FlatCode::Beach => return Err("beach has no gate-level netlist".to_string()),
    };
    built.map_err(|e| format!("building {} encoder: {e}", code.name()))
}

/// Builds the decoder netlist of a gate-level code.
///
/// # Errors
///
/// Fails for codes without a netlist (Beach) or invalid parameters.
pub fn build_decoder(
    code: FlatCode,
    width: BusWidth,
    stride: Stride,
) -> Result<DecoderCircuit, String> {
    let built = match code {
        FlatCode::Binary => binary_decoder(width),
        FlatCode::Gray => gray_decoder(width, stride),
        FlatCode::BusInvert => bus_invert_decoder(width),
        FlatCode::T0 => t0_decoder(width, stride),
        FlatCode::T0Bi => t0bi_decoder(width, stride),
        FlatCode::DualT0 => dual_t0_decoder(width, stride),
        FlatCode::DualT0Bi => dual_t0bi_decoder(width, stride),
        FlatCode::T0Xor => t0xor_decoder(width, stride),
        FlatCode::Offset => offset_decoder(width),
        FlatCode::Beach => return Err("beach has no gate-level netlist".to_string()),
    };
    built.map_err(|e| format!("building {} decoder: {e}", code.name()))
}

/// Maps each staged flip-flop (position in `staged`'s creation order)
/// back to the raw flip-flop it implements (= the golden model's flat
/// state index), through a chain of net maps.
fn flop_correspondence(
    raw: &Netlist,
    staged: &Netlist,
    maps: &[&buscode_logic::NetMap],
) -> Result<Vec<usize>, String> {
    let raw_flops = dffs(raw);
    let staged_flops = dffs(staged);
    let position_of_q: HashMap<usize, usize> = staged_flops
        .iter()
        .enumerate()
        .map(|(j, &(q, _))| (q.index(), j))
        .collect();
    let mut spec_of = vec![usize::MAX; staged_flops.len()];
    for (k, &(q, _)) in raw_flops.iter().enumerate() {
        let mut net = q;
        for map in maps {
            net = map
                .get(net)
                .ok_or_else(|| format!("flip-flop {k} dropped by a netlist transform"))?;
        }
        let &j = position_of_q
            .get(&net.index())
            .ok_or_else(|| format!("flip-flop {k} mapped to a non-flop net"))?;
        if spec_of[j] != usize::MAX {
            return Err(format!("two raw flip-flops map onto staged flop {j}"));
        }
        spec_of[j] = k;
    }
    if let Some(j) = spec_of.iter().position(|&k| k == usize::MAX) {
        return Err(format!("staged flip-flop {j} has no raw counterpart"));
    }
    Ok(spec_of)
}

/// An encoder netlist at a chosen stage, with its flop correspondence.
pub struct StagedEncoder {
    /// The code under check.
    pub code: FlatCode,
    /// The synthesis stage.
    pub stage: Stage,
    /// The staged circuit. Tests may substitute a mutated netlist (same
    /// net ids) to seed defects.
    pub circuit: EncoderCircuit,
    /// Golden-model state index of each staged flip-flop.
    pub spec_of_flop: Vec<usize>,
}

/// A decoder netlist at a chosen stage, with its flop correspondence.
pub struct StagedDecoder {
    /// The code under check.
    pub code: FlatCode,
    /// The synthesis stage.
    pub stage: Stage,
    /// The staged circuit.
    pub circuit: DecoderCircuit,
    /// Golden-model state index of each staged flip-flop.
    pub spec_of_flop: Vec<usize>,
}

/// Builds the encoder of `code` and advances it to `stage`, composing
/// the transform net maps into a flop correspondence.
///
/// # Errors
///
/// Propagates construction/transform failures as readable messages.
pub fn stage_encoder(
    code: FlatCode,
    width: BusWidth,
    stride: Stride,
    stage: Stage,
) -> Result<StagedEncoder, String> {
    let raw = build_encoder(code, width, stride)?;
    let err = |e| format!("staging {} encoder: {e}", code.name());
    let (circuit, spec_of_flop) = match stage {
        Stage::Raw => {
            let n = dffs(&raw.netlist).len();
            (raw, (0..n).collect())
        }
        Stage::Opt => {
            let (opt, map) = raw.optimized_with_map().map_err(err)?;
            let corr = flop_correspondence(&raw.netlist, &opt.netlist, &[&map])?;
            (opt, corr)
        }
        Stage::Mapped => {
            let (opt, map1) = raw.optimized_with_map().map_err(err)?;
            let (mapped, map2) = opt.tech_mapped().map_err(err)?;
            let corr = flop_correspondence(&raw.netlist, &mapped.netlist, &[&map1, &map2])?;
            (mapped, corr)
        }
    };
    Ok(StagedEncoder {
        code,
        stage,
        circuit,
        spec_of_flop,
    })
}

/// As [`stage_encoder`], for the decoder.
///
/// # Errors
///
/// Propagates construction/transform failures as readable messages.
pub fn stage_decoder(
    code: FlatCode,
    width: BusWidth,
    stride: Stride,
    stage: Stage,
) -> Result<StagedDecoder, String> {
    let raw = build_decoder(code, width, stride)?;
    let err = |e| format!("staging {} decoder: {e}", code.name());
    let (circuit, spec_of_flop) = match stage {
        Stage::Raw => {
            let n = dffs(&raw.netlist).len();
            (raw, (0..n).collect())
        }
        Stage::Opt => {
            let (opt, map) = raw.optimized_with_map().map_err(err)?;
            let corr = flop_correspondence(&raw.netlist, &opt.netlist, &[&map])?;
            (opt, corr)
        }
        Stage::Mapped => {
            let (opt, map1) = raw.optimized_with_map().map_err(err)?;
            let (mapped, map2) = opt.tech_mapped().map_err(err)?;
            let corr = flop_correspondence(&raw.netlist, &mapped.netlist, &[&map1, &map2])?;
            (mapped, corr)
        }
    };
    Ok(StagedDecoder {
        code,
        stage,
        circuit,
        spec_of_flop,
    })
}

/// Replay of a counterexample on the cycle simulator.
#[derive(Clone, Debug)]
pub struct Replay {
    /// True when the simulator reproduced exactly the netlist value the
    /// BDD predicted (and it differs from the golden model).
    pub confirmed: bool,
    /// One-line account of what the simulator observed.
    pub detail: String,
}

/// A concrete input/state assignment on which netlist and golden model
/// disagree.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The disagreeing signal (`bus[i]`, `aux[i]`, `addr[i]`, or
    /// `next state[k]`).
    pub signal: String,
    /// Address (encoder) or bus payload (decoder) input word.
    pub word_in: u64,
    /// Aux input word (decoder checks only).
    pub aux_in: u64,
    /// The `SEL` line.
    pub sel: bool,
    /// Current register values, golden-model flat layout.
    pub state: Vec<bool>,
    /// The golden model's value of the signal.
    pub expected: bool,
    /// The netlist's value.
    pub got: bool,
    /// Simulator replay of the same cycle.
    pub replay: Replay,
}

/// The result of one equivalence check.
#[derive(Clone, Debug)]
pub struct CecReport {
    /// Number of per-bit equalities proved (outputs + next states).
    pub obligations: usize,
    /// BDD arena size after the check (deterministic).
    pub nodes: usize,
    /// First disagreement found, if any. `None` means proved.
    pub cex: Option<Counterexample>,
}

impl CecReport {
    /// True when every obligation held.
    #[must_use]
    pub fn proved(&self) -> bool {
        self.cex.is_none()
    }
}

/// Maps every primary input of `netlist` to its interface variable.
fn input_vars(netlist: &Netlist, pairs: &[(NetId, Ref)]) -> Result<Vec<Ref>, String> {
    let by_net: HashMap<usize, Ref> = pairs.iter().map(|&(net, var)| (net.index(), var)).collect();
    netlist
        .primary_inputs()
        .iter()
        .map(|pi| {
            by_net
                .get(&pi.index())
                .copied()
                .ok_or_else(|| format!("primary input {pi:?} is not an interface net"))
        })
        .collect()
}

/// One named proof obligation: netlist function vs golden function.
struct Obligation {
    signal: String,
    netlist: Ref,
    golden: Ref,
}

/// Checks the obligations in order; on the first violated one, decodes
/// a counterexample and hands it to `replay`.
fn discharge(
    bdd: &mut Bdd,
    obligations: &[Obligation],
    mut decode: impl FnMut(&Bdd, &[(u32, bool)], &Obligation) -> Counterexample,
) -> CecReport {
    for obligation in obligations {
        let diff = bdd.xor(obligation.netlist, obligation.golden);
        if diff != FALSE {
            let assignment = bdd
                .sat_one(diff)
                .expect("non-FALSE BDD must be satisfiable");
            let cex = decode(bdd, &assignment, obligation);
            return CecReport {
                obligations: obligations.len(),
                nodes: bdd.node_count(),
                cex: Some(cex),
            };
        }
    }
    CecReport {
        obligations: obligations.len(),
        nodes: bdd.node_count(),
        cex: None,
    }
}

/// Symbolically proves `staged`'s encoder netlist equivalent to the
/// golden model at full width.
///
/// # Errors
///
/// Fails when the netlist interface cannot be mapped (malformed or
/// hand-mutated beyond gate substitution).
pub fn check_encoder(
    width: BusWidth,
    stride: Stride,
    staged: &StagedEncoder,
) -> Result<CecReport, String> {
    let code = staged.code;
    let mut bdd = Bdd::new();
    let vars = enc_vars(&mut bdd, code, width);
    let golden = encode_step(
        &mut bdd,
        code,
        width,
        stride,
        &vars.addr,
        vars.sel,
        &vars.state,
    );

    let mut pairs: Vec<(NetId, Ref)> = staged
        .circuit
        .address_in
        .iter()
        .zip(&vars.addr)
        .map(|(&net, &var)| (net, var))
        .collect();
    if let Some(sel_net) = staged.circuit.sel_in {
        pairs.push((sel_net, vars.sel));
    }
    let pi_vars = input_vars(&staged.circuit.netlist, &pairs)?;
    let flops = dffs(&staged.circuit.netlist);
    let values = evaluate(
        &staged.circuit.netlist,
        &mut bdd,
        |k| pi_vars[k],
        |j| vars.state[staged.spec_of_flop[j]],
    );

    let mut obligations = Vec::new();
    for (i, &net) in staged.circuit.bus_out.iter().enumerate() {
        obligations.push(Obligation {
            signal: format!("bus[{i}]"),
            netlist: values[net.index()],
            golden: golden.bus[i],
        });
    }
    for (i, &net) in staged.circuit.aux_out.iter().enumerate() {
        obligations.push(Obligation {
            signal: format!("aux[{i}]"),
            netlist: values[net.index()],
            golden: golden.aux[i],
        });
    }
    for (j, &(_, d)) in flops.iter().enumerate() {
        let d = d.ok_or_else(|| format!("staged flip-flop {j} is undriven"))?;
        let k = staged.spec_of_flop[j];
        obligations.push(Obligation {
            signal: format!("next state[{k}]"),
            netlist: values[d.index()],
            golden: golden.next_state[k],
        });
    }

    Ok(discharge(&mut bdd, &obligations, |bdd, assignment, obl| {
        let addr = assigned_word(assignment, &vars.addr_idx);
        let sel = vars.sel_idx.is_some_and(|i| assigned_bit(assignment, i));
        let state: Vec<bool> = vars
            .state_idx
            .iter()
            .map(|&i| assigned_bit(assignment, i))
            .collect();
        let expected = bdd.eval(obl.golden, &to_dense(assignment, bdd.num_vars()));
        let got = bdd.eval(obl.netlist, &to_dense(assignment, bdd.num_vars()));
        let replay = replay_encoder(staged, addr, sel, &state, &obl.signal, got);
        Counterexample {
            signal: obl.signal.clone(),
            word_in: addr,
            aux_in: 0,
            sel,
            state,
            expected,
            got,
            replay,
        }
    }))
}

/// Symbolically proves `staged`'s decoder netlist equivalent to the
/// golden model at full width.
///
/// # Errors
///
/// Fails when the netlist interface cannot be mapped.
pub fn check_decoder(
    width: BusWidth,
    stride: Stride,
    staged: &StagedDecoder,
) -> Result<CecReport, String> {
    let code = staged.code;
    let mut bdd = Bdd::new();
    let vars = dec_vars(&mut bdd, code, width);
    let golden = decode_step(
        &mut bdd,
        code,
        width,
        stride,
        &vars.bus,
        &vars.aux,
        vars.sel,
        &vars.state,
    );

    let mut pairs: Vec<(NetId, Ref)> = staged
        .circuit
        .bus_in
        .iter()
        .zip(&vars.bus)
        .map(|(&net, &var)| (net, var))
        .collect();
    pairs.extend(
        staged
            .circuit
            .aux_in
            .iter()
            .zip(&vars.aux)
            .map(|(&net, &var)| (net, var)),
    );
    if let Some(sel_net) = staged.circuit.sel_in {
        pairs.push((sel_net, vars.sel));
    }
    let pi_vars = input_vars(&staged.circuit.netlist, &pairs)?;
    let flops = dffs(&staged.circuit.netlist);
    let values = evaluate(
        &staged.circuit.netlist,
        &mut bdd,
        |k| pi_vars[k],
        |j| vars.state[staged.spec_of_flop[j]],
    );

    let mut obligations = Vec::new();
    for (i, &net) in staged.circuit.address_out.iter().enumerate() {
        obligations.push(Obligation {
            signal: format!("addr[{i}]"),
            netlist: values[net.index()],
            golden: golden.address[i],
        });
    }
    for (j, &(_, d)) in flops.iter().enumerate() {
        let d = d.ok_or_else(|| format!("staged flip-flop {j} is undriven"))?;
        let k = staged.spec_of_flop[j];
        obligations.push(Obligation {
            signal: format!("next state[{k}]"),
            netlist: values[d.index()],
            golden: golden.next_state[k],
        });
    }

    Ok(discharge(&mut bdd, &obligations, |bdd, assignment, obl| {
        let bus = assigned_word(assignment, &vars.bus_idx);
        let aux = assigned_word(assignment, &vars.aux_idx);
        let sel = vars.sel_idx.is_some_and(|i| assigned_bit(assignment, i));
        let state: Vec<bool> = vars
            .state_idx
            .iter()
            .map(|&i| assigned_bit(assignment, i))
            .collect();
        let expected = bdd.eval(obl.golden, &to_dense(assignment, bdd.num_vars()));
        let got = bdd.eval(obl.netlist, &to_dense(assignment, bdd.num_vars()));
        let replay = replay_decoder(staged, bus, aux, sel, &state, &obl.signal, got);
        Counterexample {
            signal: obl.signal.clone(),
            word_in: bus,
            aux_in: aux,
            sel,
            state,
            expected,
            got,
            replay,
        }
    }))
}

fn to_dense(assignment: &[(u32, bool)], num_vars: u32) -> Vec<bool> {
    let mut dense = vec![false; num_vars as usize];
    for &(var, value) in assignment {
        dense[var as usize] = value;
    }
    dense
}

/// Looks up the net carrying `signal` after one simulated cycle.
fn observe_signal(
    sim: &Simulator,
    signal: &str,
    outputs: &[(String, Vec<NetId>)],
    flops: &[(NetId, Option<NetId>)],
    spec_of_flop: &[usize],
) -> Option<bool> {
    for (prefix, word) in outputs {
        if let Some(rest) = signal.strip_prefix(&format!("{prefix}[")) {
            let i: usize = rest.strip_suffix(']')?.parse().ok()?;
            return Some(sim.value(*word.get(i)?));
        }
    }
    if let Some(rest) = signal.strip_prefix("next state[") {
        let k: usize = rest.strip_suffix(']')?.parse().ok()?;
        let j = spec_of_flop.iter().position(|&s| s == k)?;
        // Post-edge flip-flop state is the captured next-state value.
        return Some(sim.value(flops.get(j)?.0));
    }
    None
}

fn replay_report(signal: &str, observed: Option<bool>, got: bool) -> Replay {
    match observed {
        Some(value) if value == got => Replay {
            confirmed: true,
            detail: format!(
                "simulator reproduces {signal}={} (diverges from golden model)",
                u8::from(value)
            ),
        },
        Some(value) => Replay {
            confirmed: false,
            detail: format!(
                "simulator observed {signal}={}, BDD predicted {}",
                u8::from(value),
                u8::from(got)
            ),
        },
        None => Replay {
            confirmed: false,
            detail: format!("signal {signal} not observable in the simulator"),
        },
    }
}

fn replay_encoder(
    staged: &StagedEncoder,
    addr: u64,
    sel: bool,
    state: &[bool],
    signal: &str,
    got: bool,
) -> Replay {
    let mut sim = Simulator::new(staged.circuit.netlist.clone());
    let flops = dffs(&staged.circuit.netlist);
    for (j, &(q, _)) in flops.iter().enumerate() {
        if state[staged.spec_of_flop[j]] {
            sim.flip_dff(q);
        }
    }
    sim.set_word(&staged.circuit.address_in, addr);
    if let Some(sel_net) = staged.circuit.sel_in {
        sim.set(sel_net, sel);
    }
    sim.step();
    let outputs = [
        ("bus".to_string(), staged.circuit.bus_out.clone()),
        ("aux".to_string(), staged.circuit.aux_out.clone()),
    ];
    let observed = observe_signal(&sim, signal, &outputs, &flops, &staged.spec_of_flop);
    replay_report(signal, observed, got)
}

fn replay_decoder(
    staged: &StagedDecoder,
    bus: u64,
    aux: u64,
    sel: bool,
    state: &[bool],
    signal: &str,
    got: bool,
) -> Replay {
    let mut sim = Simulator::new(staged.circuit.netlist.clone());
    let flops = dffs(&staged.circuit.netlist);
    for (j, &(q, _)) in flops.iter().enumerate() {
        if state[staged.spec_of_flop[j]] {
            sim.flip_dff(q);
        }
    }
    sim.set_word(&staged.circuit.bus_in, bus);
    sim.set_word(&staged.circuit.aux_in, aux);
    if let Some(sel_net) = staged.circuit.sel_in {
        sim.set(sel_net, sel);
    }
    sim.step();
    let outputs = [("addr".to_string(), staged.circuit.address_out.clone())];
    let observed = observe_signal(&sim, signal, &outputs, &flops, &staged.spec_of_flop);
    replay_report(signal, observed, got)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(bits: u32) -> (BusWidth, Stride) {
        let width = BusWidth::new(bits).unwrap();
        (width, Stride::new(4, width).unwrap())
    }

    #[test]
    fn all_codecs_equivalent_at_width_8() {
        let (width, stride) = params(8);
        for code in gate_codes() {
            for stage in Stage::all() {
                let enc = stage_encoder(code, width, stride, stage).unwrap();
                let report = check_encoder(width, stride, &enc).unwrap();
                assert!(
                    report.proved(),
                    "{} encoder [{}]: {:?}",
                    code.name(),
                    stage.name(),
                    report.cex
                );
                let dec = stage_decoder(code, width, stride, stage).unwrap();
                let report = check_decoder(width, stride, &dec).unwrap();
                assert!(
                    report.proved(),
                    "{} decoder [{}]: {:?}",
                    code.name(),
                    stage.name(),
                    report.cex
                );
            }
        }
    }

    #[test]
    fn node_counts_are_deterministic() {
        let (width, stride) = params(8);
        let enc = stage_encoder(FlatCode::T0Bi, width, stride, Stage::Mapped).unwrap();
        let a = check_encoder(width, stride, &enc).unwrap();
        let b = check_encoder(width, stride, &enc).unwrap();
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.obligations, b.obligations);
    }

    #[test]
    fn t0_encoder_equivalent_at_width_32() {
        let (width, stride) = params(32);
        let enc = stage_encoder(FlatCode::T0, width, stride, Stage::Mapped).unwrap();
        let report = check_encoder(width, stride, &enc).unwrap();
        assert!(report.proved());
        assert!(report.obligations >= 32 + 1 + 17);
    }
}
