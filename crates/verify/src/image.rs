//! Exact reachability of the encoder ∥ decoder product machine by BDD
//! image computation, cross-checking the induction strategy.
//!
//! [`crate::seq`] and [`crate::cases`] prove their invariants over a
//! *superset* of the reachable states (1-induction / free-state
//! tautologies). This module computes, at width 8, the *exact* set of
//! reachable register states of the raw gate-level encoder and decoder
//! wired back-to-back, and checks on it:
//!
//! - **safety** — in every reachable state, for every input, the
//!   decoder's combinational address output equals the encoder's
//!   address input (the round trip, on silicon rather than the golden
//!   model);
//! - **mirror** — every reachable state satisfies the shared-variable
//!   mirror invariant the induction proofs assume: the decoder
//!   registers equal the leading slice of the encoder registers.
//!
//! The image step uses *output splitting*: rather than building the
//! monolithic transition relation `∧ₖ s'ₖ ↔ Gₖ(s, in)` (whose BDD is
//! routinely the bottleneck), the image of a constraint is computed by
//! recursing over the next-state functions — split on `Gₖ`, cofactor
//! the constraint, and rebuild with the *current*-state variable of
//! flop `k` at each branch point, so the result needs no renaming
//! before it is folded into the reachable set. The rebuild uses full
//! `ite` (not a raw node constructor) because the interleaved variable
//! order of [`crate::vars::product_vars`] is deliberately not monotone
//! in flop order.

use std::collections::HashMap;

use buscode_core::sym::{BoolAlg, FlatCode};
use buscode_core::{BusWidth, Stride};
use buscode_logic::symeval::{dffs, evaluate};
use buscode_logic::NetId;

use crate::bdd::{Bdd, Ref, FALSE, TRUE};
use crate::cec::{build_decoder, build_encoder};
use crate::vars::product_vars;

/// Fixpoint iteration guard; the product machines at width 8 converge
/// in a handful of steps, so hitting this means divergence.
const MAX_ITERATIONS: usize = 10_000;

/// The result of one reachability check.
#[derive(Clone, Debug)]
pub struct ImageReport {
    /// Image steps until the reachable set closed.
    pub iterations: usize,
    /// Properties checked on the fixpoint.
    pub obligations: usize,
    /// BDD arena size after the check (deterministic).
    pub nodes: usize,
    /// First violated property, if any. `None` means proved.
    pub failure: Option<String>,
}

impl ImageReport {
    /// True when every property held on the reachable set.
    #[must_use]
    pub fn proved(&self) -> bool {
        self.failure.is_none()
    }
}

/// Output-splitting image: the set of next states `G` can produce from
/// some state/input satisfying `constraint`, expressed directly over
/// the current-state variables `state_vars`.
fn image(bdd: &mut Bdd, constraint: Ref, funcs: &[Ref], state_vars: &[Ref]) -> Ref {
    let mut memo: HashMap<(Ref, usize), Ref> = HashMap::new();
    split(bdd, constraint, 0, funcs, state_vars, &mut memo)
}

fn split(
    bdd: &mut Bdd,
    constraint: Ref,
    k: usize,
    funcs: &[Ref],
    state_vars: &[Ref],
    memo: &mut HashMap<(Ref, usize), Ref>,
) -> Ref {
    if constraint == FALSE {
        return FALSE;
    }
    if k == funcs.len() {
        // Some satisfying state/input realises every output decision
        // taken on the way down, so this next-state cube is reachable.
        return TRUE;
    }
    if let Some(&hit) = memo.get(&(constraint, k)) {
        return hit;
    }
    let taken = bdd.and(constraint, funcs[k]);
    let hi = split(bdd, taken, k + 1, funcs, state_vars, memo);
    let not_fk = bdd.not(funcs[k]);
    let untaken = bdd.and(constraint, not_fk);
    let lo = split(bdd, untaken, k + 1, funcs, state_vars, memo);
    let result = bdd.ite(state_vars[k], hi, lo);
    memo.insert((constraint, k), result);
    result
}

/// Computes the exact reachable register set of `code`'s raw encoder ∥
/// decoder product machine and checks round trip and mirror invariant
/// on it.
///
/// # Errors
///
/// Fails for codes without a netlist or on interface mismatches.
pub fn check_reachable(
    code: FlatCode,
    width: BusWidth,
    stride: Stride,
) -> Result<ImageReport, String> {
    let encoder = build_encoder(code, width, stride)?;
    let decoder = build_decoder(code, width, stride)?;

    let mut bdd = Bdd::new();
    let vars = product_vars(&mut bdd, code, width);

    // Encoder cone over free address/SEL/state variables. Raw netlists
    // keep the builder's flop creation order, which is the flat layout.
    let enc_pi = interface_vars(encoder.netlist.primary_inputs(), {
        let mut pairs: Vec<(NetId, Ref)> = encoder
            .address_in
            .iter()
            .zip(&vars.addr)
            .map(|(&net, &var)| (net, var))
            .collect();
        if let Some(sel_net) = encoder.sel_in {
            pairs.push((sel_net, vars.sel));
        }
        pairs
    })?;
    let enc_values = evaluate(
        &encoder.netlist,
        &mut bdd,
        |k| enc_pi[k],
        |j| vars.enc_state[j],
    );

    // Decoder cone fed combinationally by the encoder's bus: its
    // primary inputs are bound to the encoder's output *functions*.
    let dec_pi = interface_vars(decoder.netlist.primary_inputs(), {
        let mut pairs: Vec<(NetId, Ref)> = decoder
            .bus_in
            .iter()
            .zip(&encoder.bus_out)
            .map(|(&net, &out)| (net, enc_values[out.index()]))
            .collect();
        pairs.extend(
            decoder
                .aux_in
                .iter()
                .zip(&encoder.aux_out)
                .map(|(&net, &out)| (net, enc_values[out.index()])),
        );
        if let Some(sel_net) = decoder.sel_in {
            pairs.push((sel_net, vars.sel));
        }
        pairs
    })?;
    let dec_values = evaluate(
        &decoder.netlist,
        &mut bdd,
        |k| dec_pi[k],
        |j| vars.dec_state[j],
    );

    // Product next-state functions and their current-state variables,
    // encoder flops first, in flop order.
    let mut funcs = Vec::new();
    let mut state_vars: Vec<Ref> = Vec::new();
    for (j, &(_, d)) in dffs(&encoder.netlist).iter().enumerate() {
        let d = d.ok_or_else(|| format!("encoder flip-flop {j} is undriven"))?;
        funcs.push(enc_values[d.index()]);
        state_vars.push(vars.enc_state[j]);
    }
    for (j, &(_, d)) in dffs(&decoder.netlist).iter().enumerate() {
        let d = d.ok_or_else(|| format!("decoder flip-flop {j} is undriven"))?;
        funcs.push(dec_values[d.index()]);
        state_vars.push(vars.dec_state[j]);
    }

    // Reachable-set fixpoint from the all-zero reset state.
    let mut reached = TRUE;
    for &sv in &state_vars {
        let clear = bdd.not(sv);
        reached = bdd.and(reached, clear);
    }
    let mut iterations = 0usize;
    loop {
        if iterations >= MAX_ITERATIONS {
            return Err(format!(
                "{}: reachable set did not close within {MAX_ITERATIONS} image steps",
                code.name()
            ));
        }
        let img = image(&mut bdd, reached, &funcs, &state_vars);
        let next = bdd.or(reached, img);
        iterations += 1;
        if next == reached {
            break;
        }
        reached = next;
    }

    let mut failure = None;
    let mut obligations = 0usize;

    // Round trip on every reachable state, every input.
    obligations += 1;
    let mut mismatch = FALSE;
    for (i, &out) in decoder.address_out.iter().enumerate() {
        let diff = bdd.xor(dec_values[out.index()], vars.addr[i]);
        mismatch = bdd.or(mismatch, diff);
    }
    let bad = bdd.and(reached, mismatch);
    if bad != FALSE && failure.is_none() {
        failure = Some("round trip violated in a reachable state".to_string());
    }

    // Mirror invariant: decoder registers equal the leading encoder
    // register slice in every reachable state.
    obligations += 1;
    let mut mirrored = TRUE;
    for (&dec, &enc) in vars.dec_state.iter().zip(&vars.enc_state) {
        let same = bdd.xnor(dec, enc);
        mirrored = bdd.and(mirrored, same);
    }
    let holds = bdd.implies(reached, mirrored);
    if holds != TRUE && failure.is_none() {
        failure = Some("mirror invariant violated in a reachable state".to_string());
    }

    Ok(ImageReport {
        iterations,
        obligations,
        nodes: bdd.node_count(),
        failure,
    })
}

/// Maps every primary input of a netlist to its bound value.
fn interface_vars(inputs: &[NetId], pairs: Vec<(NetId, Ref)>) -> Result<Vec<Ref>, String> {
    let by_net: HashMap<usize, Ref> = pairs.iter().map(|&(net, var)| (net.index(), var)).collect();
    inputs
        .iter()
        .map(|pi| {
            by_net
                .get(&pi.index())
                .copied()
                .ok_or_else(|| format!("primary input {pi:?} is not an interface net"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cec::gate_codes;

    fn params(bits: u32) -> (BusWidth, Stride) {
        let width = BusWidth::new(bits).unwrap();
        (width, Stride::new(4, width).unwrap())
    }

    #[test]
    fn all_gate_codes_reach_a_safe_fixpoint_at_width_8() {
        let (width, stride) = params(8);
        for code in gate_codes() {
            let report = check_reachable(code, width, stride).unwrap();
            assert!(report.proved(), "{}: {:?}", code.name(), report.failure);
            assert!(report.iterations >= 1);
        }
    }

    #[test]
    fn iteration_and_node_counts_are_deterministic() {
        let (width, stride) = params(8);
        let a = check_reachable(FlatCode::T0, width, stride).unwrap();
        let b = check_reachable(FlatCode::T0, width, stride).unwrap();
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.nodes, b.nodes);
    }
}
