//! # buscode-verify
//!
//! Symbolic verification for the buscode workspace: a self-contained
//! BDD engine and full-width proofs about the DATE'98 codecs, far
//! beyond the exhaustive protocol checker's width ≤ 16 ceiling.
//!
//! Three proof families, surfaced as cells by the `busverify` binary:
//!
//! - **Equivalence** ([`cec`]) — every gate-level codec netlist (raw,
//!   optimized, technology-mapped) is checked bit-for-bit against the
//!   symbolic golden models of [`buscode_core::sym`] at full 32-bit
//!   width, flip-flop next-state functions included, with concrete
//!   simulator-replayed counterexamples on mismatch.
//! - **Induction** ([`seq`], [`cases`]) — `decode ∘ encode = identity`
//!   and the paper's per-code invariants (T0 freeze, bus-invert bounds,
//!   dual-code `SEL` gating) proved for every reachable state at width
//!   32: the flat codes by 1-induction over a shared-variable mirror
//!   invariant, the table codes (working-zone, self-organizing) by
//!   guided case decomposition.
//! - **Reachability** ([`image`]) — BDD image computation over the
//!   product machine's flip-flop state at width 8, cross-checking the
//!   mirror invariants against an exact fixed-point reachable set.
//!
//! Everything is deterministic: reports carry BDD node counts, not
//! timings, so `busverify --jobs 8` output is byte-identical to serial.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod bdd;
pub mod cases;
pub mod cec;
pub mod image;
pub mod seq;
pub mod suite;
pub mod vars;

pub use bdd::Bdd;
pub use cec::{check_decoder, check_encoder, stage_decoder, stage_encoder};
pub use cec::{CecReport, Counterexample, Stage};
pub use suite::{plan, run_cell, CellResult, CellSpec, CellStatus, SuiteReport};
