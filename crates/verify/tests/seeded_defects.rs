//! Mutation coverage of the equivalence checker: seed a single-gate
//! defect into a synthesised netlist and insist that `check_encoder`
//! not only refutes equivalence but produces a counterexample that
//! *replays* to a real mismatch on the cycle simulator.
//!
//! A checker that cannot catch a wrong gate op, a swapped mux input, or
//! a dropped inverter would pass every netlist; these tests pin the
//! detection path end to end (BDD refutation → assignment decode →
//! simulator replay).

use buscode_core::sym::FlatCode;
use buscode_core::{BusWidth, Stride};
use buscode_logic::{Gate, Netlist};
use buscode_verify::{check_encoder, stage_encoder, Stage};

fn params() -> (BusWidth, Stride) {
    let width = BusWidth::new(8).unwrap();
    (width, Stride::new(4, width).unwrap())
}

/// Rebuilds a netlist with gate `index` replaced by `gate`, keeping
/// every net id (and therefore the circuit interface) intact.
fn with_gate(netlist: &Netlist, index: usize, gate: Gate) -> Netlist {
    let mut gates = netlist.gates().to_vec();
    gates[index] = gate;
    Netlist::from_parts_unchecked(
        gates,
        netlist.primary_inputs().to_vec(),
        netlist.output_names(),
    )
}

/// Seeds `mutate` into each candidate gate of the staged netlist in
/// turn until the equivalence check refutes one, and asserts the
/// counterexample replays on the simulator. Some candidates may be
/// unobservable (masked downstream); at least one must be caught.
fn assert_defect_is_caught(
    code: FlatCode,
    stage: Stage,
    defect: &str,
    mutate: impl Fn(&Gate) -> Option<Gate>,
) {
    let (width, stride) = params();
    let pristine = stage_encoder(code, width, stride, stage).unwrap();
    let clean = check_encoder(width, stride, &pristine).unwrap();
    assert!(clean.proved(), "pristine {} netlist must verify", defect);

    let mut candidates = 0usize;
    for (index, gate) in pristine.circuit.netlist.gates().iter().enumerate() {
        let Some(mutated) = mutate(gate) else {
            continue;
        };
        candidates += 1;
        let mut staged = stage_encoder(code, width, stride, stage).unwrap();
        staged.circuit.netlist = with_gate(&pristine.circuit.netlist, index, mutated);
        let report = check_encoder(width, stride, &staged).unwrap();
        let Some(cex) = report.cex else {
            continue; // masked at this site; try the next candidate
        };
        assert_ne!(cex.expected, cex.got, "{defect}: degenerate disagreement");
        assert!(
            cex.replay.confirmed,
            "{defect} at gate {index}: counterexample did not replay \
             on the simulator: {}",
            cex.replay.detail
        );
        return;
    }
    panic!("{defect}: no observable defect among {candidates} candidate gate(s)");
}

#[test]
fn wrong_gate_op_yields_replaying_counterexample() {
    assert_defect_is_caught(
        FlatCode::T0Bi,
        Stage::Opt,
        "xor-to-xnor",
        |gate| match *gate {
            Gate::Xor(a, b) => Some(Gate::Xnor(a, b)),
            _ => None,
        },
    );
}

#[test]
fn swapped_mux_inputs_yield_replaying_counterexample() {
    assert_defect_is_caught(
        FlatCode::T0Bi,
        Stage::Opt,
        "mux-input-swap",
        |gate| match *gate {
            Gate::Mux { sel, a, b } if a != b => Some(Gate::Mux { sel, a: b, b: a }),
            _ => None,
        },
    );
}

#[test]
fn dropped_inverter_yields_replaying_counterexample() {
    // Tech-mapped netlists are NAND-only; an inverter is `Nand(a, a)`
    // and dropping it leaves a buffer, `Or(a, a)`.
    assert_defect_is_caught(
        FlatCode::T0Bi,
        Stage::Mapped,
        "dropped-inverter",
        |gate| match *gate {
            Gate::Nand(a, b) if a == b => Some(Gate::Or(a, a)),
            _ => None,
        },
    );
}
