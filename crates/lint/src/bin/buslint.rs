//! `buslint` — static verification driver for the buscode workspace.
//!
//! Runs every netlist lint pass over every generated codec circuit
//! (encoders and decoders, raw / optimized / tech-mapped) and then the
//! protocol model checker over every behavioural code, and reports the
//! findings as text or JSON. Exits nonzero when any error-severity
//! finding (structural breakage or a disproved protocol property) is
//! present.
//!
//! ```text
//! buslint [--format text|json] [--width BITS] [--protocol-width BITS]
//!         [--skip-netlists] [--skip-protocol] [--fail-on-warnings]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use buscode_core::check::{check_all, CheckConfig, Verdict};
use buscode_core::CodeParams;
use buscode_lint::passes::lint_netlist;
use buscode_lint::suite::codec_netlists;
use buscode_lint::{Diagnostic, Report, Severity};

/// Parsed command line.
struct Options {
    json: bool,
    /// Width for generated codec netlists.
    width: u32,
    /// Width for the protocol model checker (kept small: state spaces
    /// are exponential in it).
    protocol_width: u32,
    run_netlists: bool,
    run_protocol: bool,
    fail_on_warnings: bool,
}

/// Outcome of argument parsing: run, print help, or reject.
enum Parsed {
    Run(Options),
    Help,
}

impl Options {
    fn parse(args: &[String]) -> Result<Parsed, String> {
        let mut opts = Options {
            json: false,
            width: 8,
            protocol_width: 4,
            run_netlists: true,
            run_protocol: true,
            fail_on_warnings: false,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--format" => {
                    let value = it.next().ok_or("--format needs a value")?;
                    opts.json = match value.as_str() {
                        "json" => true,
                        "text" => false,
                        other => return Err(format!("unknown format '{other}'")),
                    };
                }
                "--width" => {
                    opts.width = parse_width(it.next().ok_or("--width needs a value")?, 64)?;
                }
                "--protocol-width" => {
                    let value = it.next().ok_or("--protocol-width needs a value")?;
                    // The checker itself refuses widths over 16.
                    opts.protocol_width = parse_width(value, 16)?;
                }
                "--skip-netlists" => opts.run_netlists = false,
                "--skip-protocol" => opts.run_protocol = false,
                "--fail-on-warnings" => opts.fail_on_warnings = true,
                "--help" | "-h" => return Ok(Parsed::Help),
                other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
            }
        }
        Ok(Parsed::Run(opts))
    }
}

const USAGE: &str = "usage: buslint [--format text|json] [--width BITS] \
[--protocol-width BITS] [--skip-netlists] [--skip-protocol] [--fail-on-warnings]";

fn parse_width(s: &str, max: u32) -> Result<u32, String> {
    match s.parse::<u32>() {
        Ok(v) if (1..=max).contains(&v) => Ok(v),
        _ => Err(format!("width '{s}' is not in 1..={max}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(Parsed::Run(opts)) => opts,
        Ok(Parsed::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut report = Report::new();

    if opts.run_netlists {
        let entries = match codec_netlists(opts.width) {
            Ok(entries) => entries,
            Err(err) => {
                eprintln!("buslint: building codec netlists failed: {err}");
                return ExitCode::from(2);
            }
        };
        for entry in entries {
            report.extend(lint_netlist(&entry.label, &entry.netlist));
        }
    }

    if opts.run_protocol {
        let params = match CodeParams::new(opts.protocol_width, 1) {
            Ok(params) => params,
            Err(err) => {
                eprintln!("buslint: bad protocol width: {err}");
                return ExitCode::from(2);
            }
        };
        // Keep the CLI snappy: a couple of seconds even in debug builds.
        // Codes whose state space exceeds this budget come back Bounded,
        // which still certifies every explored transition.
        let config = CheckConfig {
            max_states: 1 << 18,
            max_transitions: 2_000_000,
        };
        match check_all(params, &config) {
            Ok(verdicts) => {
                for (kind, verdict) in verdicts {
                    report.push(protocol_diagnostic(kind.name(), &verdict));
                }
            }
            Err(err) => {
                eprintln!("buslint: protocol check failed to run: {err}");
                return ExitCode::from(2);
            }
        }
    }

    if opts.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    let failed = !report.is_clean() || (opts.fail_on_warnings && report.warning_count() > 0);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Folds a model-checker verdict into the diagnostic stream: failures
/// are errors carrying the counterexample trace, proofs and bounded
/// explorations are info.
fn protocol_diagnostic(code: &str, verdict: &Verdict) -> Diagnostic {
    let severity = if verdict.holds() {
        Severity::Info
    } else {
        Severity::Error
    };
    let mut d = Diagnostic::new(severity, "protocol", None, verdict.to_string());
    d.circuit = code.to_string();
    d
}
