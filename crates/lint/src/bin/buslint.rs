//! `buslint` — static verification driver for the buscode workspace.
//!
//! Runs every netlist lint pass over every generated codec circuit
//! (encoders and decoders, raw / optimized / tech-mapped) and then the
//! protocol model checker over every behavioural code, and reports the
//! findings as text or JSON. Exits nonzero when any error-severity
//! finding (structural breakage or a disproved protocol property) is
//! present.
//!
//! `--jobs N` shards the per-circuit lints and the per-code protocol
//! checks across worker threads; diagnostics come back in the serial
//! order, so the report is byte-identical for any worker count.
//!
//! ```text
//! buslint [--width BITS] [--protocol-width BITS]
//!         [--skip-netlists] [--skip-protocol] [--fail-on-warnings]
//!         [--format text|json] [--seed S] [--jobs N] [--quiet]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use buscode_core::check::{check_code, CheckConfig, Verdict};
use buscode_core::{CodeKind, CodeParams};
use buscode_engine::cli::{
    self, CommonArgs, JsonPayload, Outcome, Report as _, ToolRun, COMMON_USAGE,
};
use buscode_lint::passes::lint_netlist;
use buscode_lint::suite::codec_netlists;
use buscode_lint::{Diagnostic, Report, Severity};

const TOOL: &str = "buslint";

fn usage() -> String {
    format!(
        "usage: buslint [--width BITS] [--protocol-width BITS] [--skip-netlists] \
         [--skip-protocol] [--fail-on-warnings] {COMMON_USAGE}"
    )
}

/// Tool-specific flags left after the common extraction.
struct Options {
    /// Width for generated codec netlists.
    width: u32,
    /// Width for the protocol model checker (kept small: state spaces
    /// are exponential in it).
    protocol_width: u32,
    run_netlists: bool,
    run_protocol: bool,
    fail_on_warnings: bool,
}

fn parse_tool_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        width: 8,
        protocol_width: 4,
        run_netlists: true,
        run_protocol: true,
        fail_on_warnings: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--width" => {
                opts.width = parse_width(it.next().ok_or("--width needs a value")?, 64)?;
            }
            "--protocol-width" => {
                let value = it.next().ok_or("--protocol-width needs a value")?;
                // The checker itself refuses widths over 16.
                opts.protocol_width = parse_width(value, 16)?;
            }
            "--skip-netlists" => opts.run_netlists = false,
            "--skip-protocol" => opts.run_protocol = false,
            "--fail-on-warnings" => opts.fail_on_warnings = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

fn parse_width(s: &str, max: u32) -> Result<u32, String> {
    match s.parse::<u32>() {
        Ok(v) if (1..=max).contains(&v) => Ok(v),
        _ => Err(format!("width '{s}' is not in 1..={max}")),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonArgs::extract(&mut args) {
        Ok(common) => common,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    if common.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_tool_args(&args) {
        Ok(opts) => opts,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    let run = ToolRun::new(TOOL, env!("CARGO_PKG_VERSION"), common);
    let engine = common.engine();

    let mut report = Report::new();

    if opts.run_netlists {
        let entries = match codec_netlists(opts.width) {
            Ok(entries) => entries,
            Err(err) => {
                return run.finish(&Outcome::error(format!(
                    "building codec netlists failed: {err}"
                )))
            }
        };
        // Each circuit lints independently; the engine returns results in
        // entry order, so the report reads identically at any job count.
        for diagnostics in engine.run(entries, |entry| lint_netlist(&entry.label, &entry.netlist)) {
            report.extend(diagnostics);
        }
    }

    if opts.run_protocol {
        let params = match CodeParams::new(opts.protocol_width, 1) {
            Ok(params) => params,
            Err(err) => return run.finish(&Outcome::error(format!("bad protocol width: {err}"))),
        };
        // Keep the CLI snappy: a couple of seconds even in debug builds.
        // Codes whose state space exceeds this budget come back Bounded,
        // which still certifies every explored transition.
        let config = CheckConfig {
            max_states: 1 << 18,
            max_transitions: 2_000_000,
        };
        let verdicts = engine.run(CodeKind::all().to_vec(), |kind| {
            check_code(kind, params, &config).map(|verdict| (kind, verdict))
        });
        for result in verdicts {
            match result {
                Ok((kind, verdict)) => report.push(protocol_diagnostic(kind.name(), &verdict)),
                Err(err) => {
                    return run.finish(&Outcome::error(format!(
                        "protocol check failed to run: {err}"
                    )))
                }
            }
        }
    }

    let failed = !report.is_clean() || (opts.fail_on_warnings && report.warning_count() > 0);
    let text = report.render_text();
    let data = JsonPayload::new()
        .u64("jobs", engine.jobs() as u64)
        .report("report", &report)
        .finish();
    let outcome = if failed {
        let reason = if report.is_clean() {
            format!(
                "{} warning(s) with --fail-on-warnings",
                report.warning_count()
            )
        } else {
            "error-severity findings present".to_string()
        };
        Outcome::failure(reason, text, data)
    } else {
        Outcome::success(text, data)
    };
    run.finish(&outcome.with_metrics(report.metrics()))
}

/// Folds a model-checker verdict into the diagnostic stream: failures
/// are errors carrying the counterexample trace, proofs and bounded
/// explorations are info.
fn protocol_diagnostic(code: &str, verdict: &Verdict) -> Diagnostic {
    let severity = if verdict.holds() {
        Severity::Info
    } else {
        Severity::Error
    };
    let mut d = Diagnostic::new(severity, "protocol", None, verdict.to_string());
    d.circuit = code.to_string();
    d
}
