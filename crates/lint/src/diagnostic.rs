//! Structured lint diagnostics and report rendering.

use core::fmt;

use buscode_engine::cli::Report as CliReport;
use buscode_telemetry::MetricSet;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only (estimates such as glitch-hazard skew).
    Info,
    /// Suspicious but simulatable (dead logic, duplicate gates).
    Warning,
    /// Structurally broken hardware or a disproved protocol property.
    Error,
}

impl Severity {
    /// Stable lowercase name, used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding from one pass over one circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// The pass that produced it (`"comb-loop"`, `"undriven"`, ...).
    pub pass: &'static str,
    /// The circuit the finding is about (filled in by the runner).
    pub circuit: String,
    /// The net (gate output) the finding points at, if it has a single
    /// location.
    pub net: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with no circuit attribution yet.
    pub fn new(
        severity: Severity,
        pass: &'static str,
        net: Option<usize>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            pass,
            circuit: String::new(),
            net,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.severity, self.pass, self.circuit)?;
        if let Some(net) = self.net {
            write!(f, " net {net}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A collection of diagnostics, renderable as text or JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends another report's findings.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Appends one finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True when the report contains no errors.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Compact per-finding lines with no summary — for embedding a lint
    /// report inside another tool's output (the symbolic verifier
    /// cross-links structural findings under an equivalence failure).
    pub fn brief(&self) -> Vec<String> {
        self.diagnostics.iter().map(|d| d.to_string()).collect()
    }

    /// Renders one line per finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} finding(s) total\n",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        ));
        out
    }

    /// Renders the report as a JSON document.
    ///
    /// The schema is stable:
    /// `{"diagnostics": [{"severity", "pass", "circuit", "net", "message"}],
    ///   "errors": n, "warnings": n}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"pass\":\"{}\",\"circuit\":{},\"net\":{},\"message\":{}}}",
                d.severity,
                d.pass,
                json_string(&d.circuit),
                d.net.map_or("null".to_string(), |n| n.to_string()),
                json_string(&d.message),
            ));
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{}}}",
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

impl CliReport for Report {
    fn render_text(&self) -> String {
        Report::render_text(self)
    }

    fn render_json(&self) -> String {
        Report::render_json(self)
    }

    fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("lint.diagnostics", self.diagnostics.len() as u64);
        set.add_counter("lint.errors", self.error_count() as u64);
        set.add_counter("lint.warnings", self.warning_count() as u64);
        set.add_counter(
            "lint.infos",
            (self.diagnostics.len() - self.error_count() - self.warning_count()) as u64,
        );
        set
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut report = Report::new();
        let mut d = Diagnostic::new(Severity::Error, "comb-loop", Some(3), "cycle a\"b");
        d.circuit = "t0-enc".to_string();
        report.push(d);
        report.push(Diagnostic::new(Severity::Warning, "dup-gate", None, "dup"));
        report
    }

    #[test]
    fn counts_and_cleanliness() {
        let report = sample();
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(!report.is_clean());
        assert!(Report::new().is_clean());
    }

    #[test]
    fn text_has_one_line_per_finding_plus_summary() {
        let text = sample().render_text();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("error: [comb-loop] t0-enc net 3: cycle a\"b"));
        assert!(text.ends_with("1 error(s), 1 warning(s), 2 finding(s) total\n"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"diagnostics\":["));
        assert!(json.contains("\\\"b"));
        assert!(json.contains("\"net\":3"));
        assert!(json.contains("\"net\":null"));
        assert!(json.ends_with("\"errors\":1,\"warnings\":1}"));
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_string("a\nb\t\u{1}"), "\"a\\nb\\t\\u0001\"");
    }
}
