//! Enumeration of every codec netlist the workspace can generate, at
//! every compilation stage, for sweeping with the lint passes.

use buscode_core::{BusWidth, Stride};
use buscode_logic::codecs;
use buscode_logic::{tech_map, LogicError, Netlist};

/// The compilation stage a suite entry was captured at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// As emitted by the generator, before any optimization.
    Raw,
    /// After `buscode_logic::optimize` (constant folding, sharing,
    /// dead-gate removal).
    Optimized,
    /// After optimization and NAND/NOT technology mapping.
    TechMapped,
}

impl Stage {
    /// Stable lowercase name used in circuit labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Raw => "raw",
            Stage::Optimized => "opt",
            Stage::TechMapped => "mapped",
        }
    }

    /// All stages, in compilation order.
    pub fn all() -> [Stage; 3] {
        [Stage::Raw, Stage::Optimized, Stage::TechMapped]
    }
}

/// One netlist to lint: `label` is `"<codec>-<enc|dec>[<stage>]"`.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// Display label, e.g. `"t0-enc[opt]"`.
    pub label: String,
    /// The codec family name, e.g. `"t0"`.
    pub codec: &'static str,
    /// The stage this netlist was captured at.
    pub stage: Stage,
    /// The netlist itself.
    pub netlist: Netlist,
}

/// Builds every generated codec circuit (encoder and decoder of all nine
/// gate-level codecs) at the given width, at all three stages: raw,
/// optimized, and tech-mapped.
///
/// # Panics
///
/// Panics if `bits` is not a valid [`BusWidth`] or cannot hold a word
/// stride — widths from the CLI are validated before this is called.
///
/// # Errors
///
/// Propagates circuit-construction errors from the gate-level builders.
pub fn codec_netlists(bits: u32) -> Result<Vec<SuiteEntry>, LogicError> {
    let width = BusWidth::new(bits).expect("valid width");
    let stride = Stride::new(1, width).expect("valid stride");
    let pairs: Vec<(&'static str, Netlist, Netlist)> = vec![
        (
            "binary",
            codecs::binary_encoder(width)?.netlist,
            codecs::binary_decoder(width)?.netlist,
        ),
        (
            "gray",
            codecs::gray_encoder(width, stride)?.netlist,
            codecs::gray_decoder(width, stride)?.netlist,
        ),
        (
            "bus-invert",
            codecs::bus_invert_encoder(width)?.netlist,
            codecs::bus_invert_decoder(width)?.netlist,
        ),
        (
            "t0",
            codecs::t0_encoder(width, stride)?.netlist,
            codecs::t0_decoder(width, stride)?.netlist,
        ),
        (
            "t0-bi",
            codecs::t0bi_encoder(width, stride)?.netlist,
            codecs::t0bi_decoder(width, stride)?.netlist,
        ),
        (
            "t0-xor",
            codecs::t0xor_encoder(width, stride)?.netlist,
            codecs::t0xor_decoder(width, stride)?.netlist,
        ),
        (
            "dual-t0",
            codecs::dual_t0_encoder(width, stride)?.netlist,
            codecs::dual_t0_decoder(width, stride)?.netlist,
        ),
        (
            "dual-t0-bi",
            codecs::dual_t0bi_encoder(width, stride)?.netlist,
            codecs::dual_t0bi_decoder(width, stride)?.netlist,
        ),
        (
            "offset",
            codecs::offset_encoder(width)?.netlist,
            codecs::offset_decoder(width)?.netlist,
        ),
    ];
    let mut out = Vec::with_capacity(pairs.len() * 6);
    for (codec, enc, dec) in pairs {
        for (role, raw) in [("enc", enc), ("dec", dec)] {
            for stage in Stage::all() {
                let netlist = match stage {
                    Stage::Raw => raw.clone(),
                    Stage::Optimized => buscode_logic::optimize(&raw).0,
                    Stage::TechMapped => tech_map(&buscode_logic::optimize(&raw).0).0,
                };
                out.push(SuiteEntry {
                    label: format!("{codec}-{role}[{}]", stage.name()),
                    codec,
                    stage,
                    netlist,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nine_codecs_three_stages_two_roles() {
        let entries = codec_netlists(4).unwrap();
        assert_eq!(entries.len(), 9 * 2 * 3);
        assert!(entries.iter().any(|e| e.label == "dual-t0-bi-enc[mapped]"));
        assert!(entries.iter().all(|e| e.netlist.gate_count() > 0));
    }
}
