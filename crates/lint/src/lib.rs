//! Static verification for the `buscode` workspace.
//!
//! Two independent layers, both usable as a library and through the
//! `buslint` command-line tool:
//!
//! 1. **Netlist lints** ([`passes`]): graph-level checks over
//!    [`buscode_logic::Netlist`] — combinational-loop detection,
//!    undriven flip-flops and dangling references, dead cones, constant
//!    outputs, duplicate gates and a glitch-hazard estimate. No
//!    simulation involved, so the checks are exhaustive over the
//!    structure rather than over a stimulus set.
//! 2. **Protocol model checking** (re-exported from
//!    [`buscode_core::check`]): exhaustive product-automaton exploration
//!    of behavioural (encoder, decoder) pairs at small widths, proving
//!    `decode(encode(a)) == a` over the full reachable state space plus
//!    per-code invariants, with counterexample traces on failure.
//!
//! ```
//! use buscode_lint::passes::lint_netlist;
//! use buscode_core::BusWidth;
//!
//! let enc = buscode_logic::codecs::t0_encoder(
//!     BusWidth::new(8).unwrap(),
//!     buscode_core::Stride::new(1, BusWidth::new(8).unwrap()).unwrap(),
//! )?;
//! let report = lint_netlist("t0-enc", &enc.netlist);
//! assert!(report.is_clean());
//! # Ok::<(), buscode_logic::LogicError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod diagnostic;
pub mod passes;
pub mod suite;

pub use buscode_core::check::{
    check_all, check_code, check_hardened, check_hardened_all, CheckConfig, Counterexample, Verdict,
};
pub use diagnostic::{Diagnostic, Report, Severity};
pub use passes::lint_netlist;

#[cfg(test)]
mod tests {
    use buscode_core::{BusWidth, Stride};

    // The doc example's claim, kept as a compiled test too.
    #[test]
    fn t0_encoder_is_clean() {
        let width = BusWidth::new(8).unwrap();
        let enc = buscode_logic::codecs::t0_encoder(width, Stride::new(1, width).unwrap()).unwrap();
        assert!(crate::lint_netlist("t0-enc", &enc.netlist).is_clean());
    }
}
