//! Netlist lint passes.
//!
//! Every pass is a pure function from a [`Netlist`] to a list of
//! [`Diagnostic`]s. None of them simulate the circuit: they work on the
//! gate graph alone, so they run in linear (or near-linear) time even on
//! tech-mapped 32-bit codecs and they catch classes of defect that
//! simulation with a finite stimulus set can miss entirely (a
//! combinational loop only oscillates on the right input vector; a dead
//! cone never shows up in any output).
//!
//! Severity policy:
//!
//! * structural breakage (combinational loops, undriven flip-flops,
//!   dangling net references) is an **error** — the netlist does not
//!   describe buildable synchronous hardware;
//! * logic that exists but cannot matter (dead cones, duplicate gates,
//!   constant outputs) is a **warning** — it simulates fine but wastes
//!   area/power or hints at a generator bug;
//! * the glitch-hazard estimate is **info** — path-depth skew is a proxy
//!   for dynamic hazards, not a proof of one.

use crate::diagnostic::{Diagnostic, Report, Severity};
use buscode_logic::{Gate, NetId, Netlist};

/// Path-depth skew (longest minus shortest input-to-output path, in
/// gate levels) at or above which the glitch pass reports an output.
pub const GLITCH_SKEW_THRESHOLD: u32 = 5;

/// Runs every pass over one netlist and labels the findings with
/// `circuit`.
pub fn lint_netlist(circuit: &str, netlist: &Netlist) -> Report {
    let mut report = Report::new();
    let mut all = Vec::new();
    all.extend(undriven(netlist));
    all.extend(combinational_loops(netlist));
    all.extend(dead_logic(netlist));
    all.extend(constant_outputs(netlist));
    all.extend(duplicate_gates(netlist));
    all.extend(glitch_hazards(netlist));
    for mut d in all {
        d.circuit = circuit.to_string();
        report.push(d);
    }
    report
}

/// True when `id` points at a real gate in `netlist`.
fn in_range(netlist: &Netlist, id: NetId) -> bool {
    id.index() < netlist.gate_count()
}

/// Detects undriven flip-flops and dangling net references.
///
/// A [`Gate::Dff`] whose `d` input was never connected holds reset
/// forever; a gate operand pointing past the end of the gate list cannot
/// be evaluated at all. Both are reported as errors. Netlists built
/// through [`Netlist`]'s safe builder cannot contain dangling
/// references, but netlists deserialized or assembled through
/// [`Netlist::from_parts_unchecked`] can.
pub fn undriven(netlist: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, gate) in netlist.gates().iter().enumerate() {
        if matches!(gate, Gate::Dff { d: None }) {
            out.push(Diagnostic::new(
                Severity::Error,
                "undriven",
                Some(i),
                "flip-flop has no data input; it holds its reset value forever",
            ));
        }
        for input in gate.inputs() {
            if !in_range(netlist, input) {
                out.push(Diagnostic::new(
                    Severity::Error,
                    "undriven",
                    Some(i),
                    format!(
                        "gate reads net {}, but the netlist only has {} nets",
                        input.index(),
                        netlist.gate_count()
                    ),
                ));
            }
        }
    }
    for (name, id) in netlist.output_names() {
        if !in_range(netlist, id) {
            out.push(Diagnostic::new(
                Severity::Error,
                "undriven",
                Some(id.index()),
                format!("output '{name}' names a net that does not exist"),
            ));
        }
    }
    out
}

/// Detects combinational cycles with Tarjan's SCC algorithm.
///
/// The graph has one node per gate and an edge `a -> b` whenever
/// combinational gate `b` reads net `a`. Flip-flops are cut points: a
/// [`Gate::Dff`]'s `d` edge crosses a clock boundary, so it contributes
/// no edge and any feedback path through a flip-flop is legal. A
/// strongly connected component with more than one node — or a gate that
/// reads its own output — is an unclocked feedback loop: the circuit has
/// no static evaluation order and may oscillate.
///
/// The implementation is iterative, so deep tech-mapped netlists cannot
/// overflow the stack.
pub fn combinational_loops(netlist: &Netlist) -> Vec<Diagnostic> {
    let n = netlist.gate_count();
    let mut succ = vec![Vec::new(); n];
    for (i, gate) in netlist.gates().iter().enumerate() {
        if gate.is_sequential() {
            continue; // DFF inputs are sequential edges: cut here.
        }
        for input in gate.inputs() {
            if input.index() < n {
                succ[input.index()].push(i);
            }
        }
    }

    // Iterative Tarjan.
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // (node, next successor position) call frames.
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos < succ[v].len() {
                let w = succ[v][*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if scc.len() > 1 || succ[v].contains(&v) {
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
    }

    sccs.sort_unstable();
    sccs.iter()
        .map(|scc| {
            let shown: Vec<String> = scc.iter().take(8).map(|g| g.to_string()).collect();
            let suffix = if scc.len() > 8 { ", ..." } else { "" };
            Diagnostic::new(
                Severity::Error,
                "comb-loop",
                Some(scc[0]),
                format!(
                    "combinational loop through {} gate(s): nets {}{}",
                    scc.len(),
                    shown.join(", "),
                    suffix
                ),
            )
        })
        .collect()
}

/// Detects gates outside the cone of influence of every marked output.
///
/// Walks backwards from each output through gate inputs (including
/// flip-flop `d` inputs, since state feeding an output matters across
/// cycles). Gates never reached — other than primary inputs, which the
/// test bench drives and which merely being unused is not a netlist
/// defect — can be deleted without changing any observable behaviour.
/// Netlists with no marked outputs are skipped: everything would be
/// trivially dead.
pub fn dead_logic(netlist: &Netlist) -> Vec<Diagnostic> {
    let outputs = netlist.output_names();
    if outputs.is_empty() {
        return Vec::new();
    }
    let n = netlist.gate_count();
    let mut live = vec![false; n];
    let mut work: Vec<usize> = outputs
        .iter()
        .filter(|(_, id)| id.index() < n)
        .map(|(_, id)| id.index())
        .collect();
    while let Some(i) = work.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for input in netlist.gates()[i].inputs() {
            if input.index() < n && !live[input.index()] {
                work.push(input.index());
            }
        }
    }
    netlist
        .gates()
        .iter()
        .enumerate()
        .filter(|&(i, gate)| !live[i] && !matches!(gate, Gate::Input))
        .map(|(i, gate)| {
            Diagnostic::new(
                Severity::Warning,
                "dead-logic",
                Some(i),
                format!("{} does not influence any marked output", gate_kind(gate)),
            )
        })
        .collect()
}

/// Detects outputs that constant-fold to a fixed value.
///
/// Runs a forward three-valued constant propagation (unknown / 0 / 1)
/// with short-circuit rules (`AND` with a known 0 is 0 regardless of the
/// other operand, and so on). Primary inputs start unknown. A flip-flop
/// resets to 0 and is therefore known-0 exactly when its `d` input is
/// known-0 — that needs a fixpoint iteration because flip-flops can sit
/// in feedback loops. An output with a known value is a warning: a
/// codec output that never moves is almost certainly a generator bug.
pub fn constant_outputs(netlist: &Netlist) -> Vec<Diagnostic> {
    let n = netlist.gate_count();
    let mut value: Vec<Option<bool>> = vec![None; n];
    let get = |value: &[Option<bool>], id: NetId| -> Option<bool> {
        if id.index() < n {
            value[id.index()]
        } else {
            None
        }
    };
    loop {
        let mut changed = false;
        for i in 0..n {
            if value[i].is_some() {
                continue; // Values only ever go unknown -> known.
            }
            let folded = match netlist.gates()[i] {
                Gate::Input => None,
                Gate::Const(v) => Some(v),
                Gate::Not(a) => get(&value, a).map(|v| !v),
                Gate::And(a, b) => {
                    binary(get(&value, a), get(&value, b), |x, y| x & y, Some(false))
                }
                Gate::Or(a, b) => binary(get(&value, a), get(&value, b), |x, y| x | y, Some(true)),
                Gate::Nand(a, b) => {
                    binary(get(&value, a), get(&value, b), |x, y| !(x & y), Some(false))
                }
                Gate::Nor(a, b) => {
                    binary(get(&value, a), get(&value, b), |x, y| !(x | y), Some(true))
                }
                Gate::Xor(a, b) => binary(get(&value, a), get(&value, b), |x, y| x ^ y, None),
                Gate::Xnor(a, b) => binary(get(&value, a), get(&value, b), |x, y| !(x ^ y), None),
                Gate::Mux { sel, a, b } => match get(&value, sel) {
                    Some(true) => get(&value, a),
                    Some(false) => get(&value, b),
                    None => match (get(&value, a), get(&value, b)) {
                        (Some(x), Some(y)) if x == y => Some(x),
                        _ => None,
                    },
                },
                // q starts at 0 and stays 0 iff d is provably always 0.
                Gate::Dff { d: Some(d) } => match get(&value, d) {
                    Some(false) => Some(false),
                    _ => None,
                },
                Gate::Dff { d: None } => None, // undriven pass owns this case
            };
            if folded.is_some() {
                value[i] = folded;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut out: Vec<Diagnostic> = netlist
        .output_names()
        .into_iter()
        .filter(|(_, id)| id.index() < n)
        .filter_map(|(name, id)| {
            value[id.index()].map(|v| {
                Diagnostic::new(
                    Severity::Warning,
                    "const-output",
                    Some(id.index()),
                    format!("output '{name}' is constant {}", u8::from(v)),
                )
            })
        })
        .collect();
    out.sort_by_key(|d| d.net);
    out
}

/// Evaluates a two-input boolean with a short-circuit absorbing value.
///
/// `absorb` is the operand value that fixes the *pre-inversion* result
/// (0 for AND/NAND, 1 for OR/NOR, none for XOR/XNOR); when one operand
/// equals it the gate's output is known even if the other is not.
fn binary(
    a: Option<bool>,
    b: Option<bool>,
    op: fn(bool, bool) -> bool,
    absorb: Option<bool>,
) -> Option<bool> {
    match (a, b) {
        (Some(x), Some(y)) => Some(op(x, y)),
        (Some(x), None) | (None, Some(x)) => {
            if absorb == Some(x) {
                // Feed the absorbing value for both operands; `op` then
                // yields the absorbed (possibly inverted) result.
                Some(op(x, x))
            } else {
                None
            }
        }
        (None, None) => None,
    }
}

/// Detects structurally identical gates via hashing.
///
/// Two gates are duplicates when they have the same kind and the same
/// input nets (commutative inputs are sorted first, so `And(a, b)` and
/// `And(b, a)` collide). Inputs, constants and flip-flops are exempt:
/// constants are deliberately freely replicated by the word builders and
/// flip-flops with the same `d` are distinct state elements on purpose.
/// Each duplicate is a common-subexpression-elimination opportunity the
/// optimizer should have caught.
pub fn duplicate_gates(netlist: &Netlist) -> Vec<Diagnostic> {
    use std::collections::HashMap;
    let mut seen: HashMap<(u8, usize, usize, usize), usize> = HashMap::new();
    let mut out = Vec::new();
    for (i, gate) in netlist.gates().iter().enumerate() {
        let key = match *gate {
            Gate::Input | Gate::Const(_) | Gate::Dff { .. } => continue,
            Gate::Not(a) => (0u8, a.index(), usize::MAX, usize::MAX),
            Gate::And(a, b) => commutative(1, a, b),
            Gate::Or(a, b) => commutative(2, a, b),
            Gate::Nand(a, b) => commutative(3, a, b),
            Gate::Nor(a, b) => commutative(4, a, b),
            Gate::Xor(a, b) => commutative(5, a, b),
            Gate::Xnor(a, b) => commutative(6, a, b),
            Gate::Mux { sel, a, b } => (7, sel.index(), a.index(), b.index()),
        };
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(first) => {
                out.push(Diagnostic::new(
                    Severity::Warning,
                    "dup-gate",
                    Some(i),
                    format!(
                        "{} duplicates net {} (same kind, same inputs)",
                        gate_kind(gate),
                        first.get()
                    ),
                ));
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(i);
            }
        }
    }
    out
}

fn commutative(kind: u8, a: NetId, b: NetId) -> (u8, usize, usize, usize) {
    let (lo, hi) = if a.index() <= b.index() {
        (a.index(), b.index())
    } else {
        (b.index(), a.index())
    };
    (kind, lo, hi, usize::MAX)
}

/// Estimates glitch hazards from input-to-output path-depth skew.
///
/// For every net the pass computes the longest and shortest
/// combinational path (in gate levels) back to a stable source (primary
/// input, constant or flip-flop output). When the two differ by
/// [`GLITCH_SKEW_THRESHOLD`] or more at a marked output, late-arriving
/// and early-arriving versions of correlated signals can race and the
/// output may glitch several times per cycle before settling — which
/// costs real transition energy on an address bus even though the
/// settled value is correct. Reported as info: skew is a proxy, not a
/// proof, and balancing paths is a synthesis decision.
pub fn glitch_hazards(netlist: &Netlist) -> Vec<Diagnostic> {
    let n = netlist.gate_count();
    let mut longest = vec![0u32; n];
    let mut shortest = vec![0u32; n];
    // Creation order is a topological order for combinational edges in
    // builder-made netlists; malformed ones are caught by the loop pass,
    // and out-of-order references here just read a conservative 0.
    for (i, gate) in netlist.gates().iter().enumerate() {
        if gate.is_sequential() || gate.inputs().is_empty() {
            continue; // sources: depth (0, 0)
        }
        let ins = gate.inputs();
        longest[i] = 1 + ins
            .iter()
            .map(|id| {
                if id.index() < n {
                    longest[id.index()]
                } else {
                    0
                }
            })
            .max()
            .unwrap_or(0);
        shortest[i] = 1 + ins
            .iter()
            .map(|id| {
                if id.index() < n {
                    shortest[id.index()]
                } else {
                    0
                }
            })
            .min()
            .unwrap_or(0);
    }
    let mut out = Vec::new();
    for (name, id) in netlist.output_names() {
        if id.index() >= n {
            continue;
        }
        let skew = longest[id.index()].saturating_sub(shortest[id.index()]);
        if skew >= GLITCH_SKEW_THRESHOLD {
            out.push(Diagnostic::new(
                Severity::Info,
                "glitch",
                Some(id.index()),
                format!(
                    "output '{name}' has path-depth skew {skew} (longest {}, shortest {}); \
                     unbalanced arrival times can glitch before settling",
                    longest[id.index()],
                    shortest[id.index()]
                ),
            ));
        }
    }
    out
}

/// Short human name for a gate variant.
fn gate_kind(gate: &Gate) -> &'static str {
    match gate {
        Gate::Input => "input",
        Gate::Const(_) => "constant",
        Gate::Not(_) => "inverter",
        Gate::And(..) => "and gate",
        Gate::Or(..) => "or gate",
        Gate::Nand(..) => "nand gate",
        Gate::Nor(..) => "nor gate",
        Gate::Xor(..) => "xor gate",
        Gate::Xnor(..) => "xnor gate",
        Gate::Mux { .. } => "mux",
        Gate::Dff { .. } => "flip-flop",
    }
}
