//! Seeded-defect tests for the netlist lint passes.
//!
//! Each test plants exactly one class of defect in an otherwise healthy
//! circuit and asserts that the owning pass flags it precisely — the
//! right pass, the right net, the right count — while every *other*
//! pass stays quiet about it. A companion sweep asserts the passes stay
//! silent on all clean generated codecs, so the fixtures here measure
//! detection, not noise.

use buscode_lint::passes::{
    combinational_loops, constant_outputs, dead_logic, duplicate_gates, glitch_hazards,
    lint_netlist, undriven,
};
use buscode_lint::suite::{codec_netlists, Stage};
use buscode_lint::Severity;
use buscode_logic::{Gate, NetId, Netlist};

/// A healthy little sequential circuit: a 1-bit toggler with an XOR
/// output. Every pass must be silent on it.
fn clean_fixture() -> Netlist {
    let mut n = Netlist::new();
    let a = n.input();
    let q = n.dff();
    let nq = n.not(q);
    n.drive_dff(q, nq).unwrap();
    let out = n.xor(a, q);
    n.mark_output("out", out);
    n.check().unwrap();
    n
}

#[test]
fn clean_fixture_is_silent_everywhere() {
    let n = clean_fixture();
    assert!(lint_netlist("clean", &n).diagnostics.is_empty());
}

#[test]
fn comb_loop_is_flagged_exactly() {
    // net0 = input, net1 = And(net0, net2), net2 = Not(net1): an
    // unclocked feedback loop the safe builder cannot express.
    let n = Netlist::from_parts_unchecked(
        vec![
            Gate::Input,
            Gate::And(NetId::from_index(0), NetId::from_index(2)),
            Gate::Not(NetId::from_index(1)),
        ],
        vec![NetId::from_index(0)],
        vec![("out".to_string(), NetId::from_index(2))],
    );
    let findings = combinational_loops(&n);
    assert_eq!(findings.len(), 1, "one loop, one diagnostic: {findings:?}");
    assert_eq!(findings[0].severity, Severity::Error);
    assert_eq!(findings[0].net, Some(1), "anchored at the loop's first net");
    assert!(findings[0].message.contains("nets 1, 2"));
    // The defect is invisible to the passes that don't own it.
    assert!(undriven(&n).is_empty());
    assert!(duplicate_gates(&n).is_empty());
}

#[test]
fn self_loop_is_flagged() {
    let n = Netlist::from_parts_unchecked(
        vec![Gate::Not(NetId::from_index(0))],
        vec![],
        vec![("out".to_string(), NetId::from_index(0))],
    );
    let findings = combinational_loops(&n);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("1 gate(s)"));
}

#[test]
fn loop_through_dff_is_legal() {
    // The toggler feeds its own inverse back through a flip-flop; the
    // clock boundary cuts the cycle.
    assert!(combinational_loops(&clean_fixture()).is_empty());
}

#[test]
fn undriven_dff_is_flagged_exactly() {
    let mut n = Netlist::new();
    let a = n.input();
    let q = n.dff(); // never driven
    let out = n.or(a, q);
    n.mark_output("out", out);
    let findings = undriven(&n);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].severity, Severity::Error);
    assert_eq!(findings[0].net, Some(q.index()));
    assert!(findings[0].message.contains("no data input"));
    assert!(combinational_loops(&n).is_empty());
    assert!(dead_logic(&n).is_empty());
}

#[test]
fn dangling_reference_is_flagged() {
    let n = Netlist::from_parts_unchecked(
        vec![Gate::Input, Gate::Not(NetId::from_index(7))],
        vec![NetId::from_index(0)],
        vec![("out".to_string(), NetId::from_index(1))],
    );
    let findings = undriven(&n);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].net, Some(1), "the *reading* gate is the defect");
    assert!(findings[0].message.contains("net 7"));
}

#[test]
fn dangling_output_is_flagged() {
    let n = Netlist::from_parts_unchecked(
        vec![Gate::Input],
        vec![NetId::from_index(0)],
        vec![("ghost".to_string(), NetId::from_index(3))],
    );
    let findings = undriven(&n);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("'ghost'"));
}

#[test]
fn dead_cone_is_flagged_exactly() {
    let mut n = Netlist::new();
    let a = n.input();
    let b = n.input();
    let live = n.and(a, b);
    // A whole little cone that feeds nothing.
    let dead1 = n.xor(a, b);
    let dead2 = n.not(dead1);
    n.mark_output("out", live);
    n.check().unwrap();
    let findings = dead_logic(&n);
    assert_eq!(findings.len(), 2, "both dead gates, nothing else");
    let nets: Vec<Option<usize>> = findings.iter().map(|d| d.net).collect();
    assert!(nets.contains(&Some(dead1.index())));
    assert!(nets.contains(&Some(dead2.index())));
    assert!(findings.iter().all(|d| d.severity == Severity::Warning));
    // Unused *inputs* are the bench's business, not a netlist defect.
    assert!(!nets.contains(&Some(a.index())));
    assert!(undriven(&n).is_empty());
    assert!(combinational_loops(&n).is_empty());
}

#[test]
fn netlist_without_outputs_has_no_dead_logic() {
    let mut n = Netlist::new();
    let a = n.input();
    n.not(a);
    assert!(dead_logic(&n).is_empty());
}

#[test]
fn duplicate_gate_is_flagged_exactly() {
    let mut n = Netlist::new();
    let a = n.input();
    let b = n.input();
    let first = n.and(a, b);
    let dup = n.and(b, a); // commutated operands still collide
    let out = n.xor(first, dup);
    n.mark_output("out", out);
    n.check().unwrap();
    let findings = duplicate_gates(&n);
    assert_eq!(findings.len(), 1, "the duplicate, not the original");
    assert_eq!(findings[0].net, Some(dup.index()));
    assert!(findings[0]
        .message
        .contains(&format!("net {}", first.index())));
    assert!(dead_logic(&n).is_empty());
}

#[test]
fn distinct_gates_do_not_collide() {
    let mut n = Netlist::new();
    let a = n.input();
    let b = n.input();
    let x = n.and(a, b);
    let y = n.or(a, b); // same inputs, different kind
    let z = n.nand(a, b); // inverted cousin is still distinct
    let out = n.xor(x, y);
    let out = n.xor(out, z);
    n.mark_output("out", out);
    assert!(duplicate_gates(&n).is_empty());
}

#[test]
fn replicated_constants_and_dffs_are_exempt() {
    let mut n = Netlist::new();
    let c1 = n.constant(true);
    let c2 = n.constant(true);
    let d = n.and(c1, c2);
    let q1 = n.dff();
    let q2 = n.dff();
    n.drive_dff(q1, d).unwrap();
    n.drive_dff(q2, d).unwrap();
    let out = n.xor(q1, q2);
    n.mark_output("out", out);
    n.check().unwrap();
    assert!(duplicate_gates(&n).is_empty());
}

#[test]
fn constant_output_is_flagged_through_short_circuit_and_state() {
    let mut n = Netlist::new();
    let a = n.input();
    let zero = n.constant(false);
    // AND with a known 0 folds even though `a` is unknown.
    let gnd = n.and(a, zero);
    // A flip-flop fed only 0 resets to 0 and never leaves it.
    let q = n.dff();
    n.drive_dff(q, gnd).unwrap();
    let stuck = n.or(q, gnd);
    let alive = n.xor(a, q);
    n.mark_output("stuck", stuck);
    n.mark_output("alive", alive);
    n.check().unwrap();
    let findings = constant_outputs(&n);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].net, Some(stuck.index()));
    assert!(findings[0].message.contains("'stuck' is constant 0"));
}

#[test]
fn toggling_dff_is_not_constant() {
    // q feeds back through an inverter: constant propagation must not
    // conclude anything about it.
    assert!(constant_outputs(&clean_fixture()).is_empty());
}

#[test]
fn deep_skew_raises_glitch_info() {
    let mut n = Netlist::new();
    let a = n.input();
    let b = n.input();
    // A 6-deep inverter chain racing a direct input into one XOR.
    let mut deep = a;
    for _ in 0..6 {
        deep = n.not(deep);
    }
    let out = n.xor(deep, b);
    n.mark_output("out", out);
    n.check().unwrap();
    let findings = glitch_hazards(&n);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].severity, Severity::Info);
    assert!(findings[0].message.contains("skew 6"));
}

#[test]
fn balanced_paths_raise_nothing() {
    let mut n = Netlist::new();
    let a = n.input();
    let b = n.input();
    let out = n.xor(a, b);
    n.mark_output("out", out);
    assert!(glitch_hazards(&n).is_empty());
}

/// The noise-floor guarantee: across every generated codec, at every
/// stage, no pass reports an error; and the structural passes that
/// assert cleanliness (loops, undriven, duplicates before tech-mapping,
/// dead logic after optimization) are completely silent.
#[test]
fn clean_codecs_stay_clean() {
    for entry in codec_netlists(8).unwrap() {
        let report = lint_netlist(&entry.label, &entry.netlist);
        assert!(
            report.is_clean(),
            "{}: unexpected errors:\n{}",
            entry.label,
            report.render_text()
        );
        assert!(
            combinational_loops(&entry.netlist).is_empty(),
            "{}: loop in a builder-made netlist",
            entry.label
        );
        assert!(undriven(&entry.netlist).is_empty(), "{}", entry.label);
        // tech_map deliberately replicates NAND inverters, so the
        // duplicate lint's no-noise contract covers raw and optimized
        // netlists.
        if entry.stage != Stage::TechMapped {
            assert!(
                duplicate_gates(&entry.netlist).is_empty(),
                "{}: duplicates before tech-mapping",
                entry.label
            );
        }
        // The optimizer's dead-gate removal is exactly what this pass
        // checks, so optimized and mapped netlists must be cone-tight.
        if entry.stage != Stage::Raw {
            assert!(
                dead_logic(&entry.netlist).is_empty(),
                "{}: dead logic survived optimization",
                entry.label
            );
        }
        assert!(
            constant_outputs(&entry.netlist).is_empty(),
            "{}",
            entry.label
        );
    }
}

/// The raw generators do leave dead carry bits behind — that is a true
/// finding, and the optimizer is the fix. Pin the relationship.
#[test]
fn optimizer_clears_raw_dead_logic() {
    let mut saw_raw_dead = false;
    for entry in codec_netlists(8).unwrap() {
        if entry.stage == Stage::Raw && !dead_logic(&entry.netlist).is_empty() {
            saw_raw_dead = true;
            let optimized = buscode_logic::optimize(&entry.netlist).0;
            assert!(
                dead_logic(&optimized).is_empty(),
                "{}: optimize() left dead gates",
                entry.label
            );
        }
    }
    assert!(
        saw_raw_dead,
        "expected at least one raw netlist with dead gates"
    );
}
