//! Regenerates paper Table 8 (encoder/decoder power for on-chip loads)
//! and benchmarks gate-level codec simulation throughput.

use buscode_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use buscode_bench::render::render_power_table;
use buscode_bench::tables;
use buscode_core::{BusWidth, Stride};
use buscode_logic::codecs::{dual_t0bi_encoder, t0_encoder};
use buscode_trace::{paper_benchmarks, StreamKind};

fn bench(c: &mut Criterion) {
    let table = tables::table8(30_000).expect("table 8 builds");
    println!(
        "{}",
        render_power_table(
            "Table 8: Enc/Dec Power Consumption for On-Chip Loads",
            &table,
            false
        )
    );

    let stream = paper_benchmarks()[0].stream_with_len(StreamKind::Muxed, 2_000);
    let mut group = c.benchmark_group("table8/gate_level_encode");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("t0_circuit", |b| {
        let circuit = t0_encoder(BusWidth::MIPS, Stride::WORD).expect("circuit builds");
        b.iter(|| circuit.run(&stream))
    });
    group.bench_function("dual_t0bi_circuit", |b| {
        let circuit = dual_t0bi_encoder(BusWidth::MIPS, Stride::WORD).expect("circuit builds");
        b.iter(|| circuit.run(&stream))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
