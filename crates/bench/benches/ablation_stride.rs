//! Ablation: T0 savings versus configured stride (the paper's "parametric
//! increments" knob). The stream steps by the machine stride of 4; only
//! the matching encoder stride captures the sequentiality.

use buscode_bench::harness::{criterion_group, criterion_main, Criterion};
use buscode_bench::tables;

fn bench(c: &mut Criterion) {
    println!("Ablation: T0 savings vs configured stride (machine stride = 4)");
    for (stride, savings) in tables::ablation_stride(100_000) {
        println!("  stride {stride}: {savings:6.2}% savings vs binary");
    }

    c.bench_function("ablation_stride/sweep_20k", |b| {
        b.iter(|| tables::ablation_stride(20_000))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
