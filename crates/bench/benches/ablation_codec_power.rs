//! Ablation: gate-level codec power for *all seven* codecs (the paper's
//! Table 8 covers three), at a representative on-chip load.

use buscode_bench::harness::{criterion_group, criterion_main, Criterion};
use buscode_bench::tables::reference_muxed_stream;
use buscode_core::{BusWidth, Stride};
use buscode_logic::Technology;
use buscode_power::{onchip_table_for, ALL_CODECS};

fn bench(c: &mut Criterion) {
    let stream = reference_muxed_stream(20_000);
    let table = onchip_table_for(
        &ALL_CODECS,
        &stream,
        &[0.1, 0.5, 2.0],
        BusWidth::MIPS,
        Stride::WORD,
        Technology::date98(),
    )
    .expect("table builds");
    println!("Ablation: codec power (mW), all gate-level codecs, on-chip loads");
    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "codec", "0.1pF", "0.5pF", "2.0pF"
    );
    for codec in ALL_CODECS {
        let series = table.series(codec);
        println!(
            "{:>12} {:>10.4} {:>10.4} {:>10.4}",
            codec, series[0].1, series[1].1, series[2].1
        );
    }

    c.bench_function("ablation_codec_power/seven_codec_sweep_2k", |b| {
        let stream = reference_muxed_stream(2_000);
        b.iter(|| {
            onchip_table_for(
                &ALL_CODECS,
                &stream,
                &[0.5],
                BusWidth::MIPS,
                Stride::WORD,
                Technology::date98(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
