//! Regenerates paper Table 2 (Existing Encoding Schemes, Instruction Address Streams) and benchmarks the per-code encoding
//! throughput on the underlying streams.

use buscode_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use buscode_bench::render::render_transition_table;
use buscode_bench::tables;
use buscode_core::metrics::count_transitions;
use buscode_core::{CodeKind, CodeParams};
use buscode_trace::{paper_benchmarks, StreamKind};

fn bench(c: &mut Criterion) {
    let table = tables::table2(usize::MAX);
    println!(
        "{}",
        render_transition_table(
            "Table 2: Existing Encoding Schemes, Instruction Address Streams",
            &table
        )
    );

    let stream = paper_benchmarks()[0].stream_with_len(StreamKind::Instruction, 50_000);
    let params = CodeParams::default();
    let mut group = c.benchmark_group("table2");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for kind in [CodeKind::Binary, CodeKind::T0, CodeKind::BusInvert] {
        let mut enc = kind.encoder(params).expect("valid params");
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                enc.reset();
                count_transitions(enc.as_mut(), stream.iter().copied())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
