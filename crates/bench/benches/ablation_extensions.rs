//! Ablation: the extension codes (T0-XOR, offset, working-zone, Beach) on
//! all three stream classes, against the binary reference.

use buscode_bench::harness::{criterion_group, criterion_main, Criterion};
use buscode_bench::tables;

fn bench(c: &mut Criterion) {
    println!("Ablation: extension codes, average savings vs binary");
    for (kind, table) in tables::ablation_extensions(50_000) {
        print!("  {kind:12}");
        for (code, savings) in table.codes.iter().zip(&table.avg_savings_percent) {
            print!("  {}={savings:6.2}%", code.name());
        }
        println!();
    }

    c.bench_function("ablation_extensions/sweep_5k", |b| {
        b.iter(|| tables::ablation_extensions(5_000))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
