//! Regenerates paper Table 9 (encoder/decoder/pad power for off-chip
//! loads, with the crossover analysis) and benchmarks the sweep itself.

use buscode_bench::harness::{criterion_group, criterion_main, Criterion};
use buscode_bench::render::render_power_table;
use buscode_bench::tables;

fn bench(c: &mut Criterion) {
    let table = tables::table9(30_000).expect("table 9 builds");
    println!(
        "{}",
        render_power_table(
            "Table 9: Enc/Dec Power Consumption for Off-Chip Loads",
            &table,
            true
        )
    );

    c.bench_function("table9/full_sweep_1k_stream", |b| {
        b.iter(|| tables::table9(1_000).expect("table 9 builds"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
