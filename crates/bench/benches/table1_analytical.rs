//! Regenerates paper Table 1 (analytical comparison + Monte-Carlo check)
//! and benchmarks the analytical model evaluation.

use buscode_bench::harness::{criterion_group, criterion_main, Criterion};
use buscode_bench::render::render_table1;
use buscode_bench::tables;
use buscode_core::{analysis, BusWidth, Stride};

fn bench(c: &mut Criterion) {
    let report = tables::table1(BusWidth::MIPS, Stride::WORD, 200_000);
    println!("{}", render_table1(&report));

    c.bench_function("table1/analytical_models", |b| {
        b.iter(|| analysis::table1(BusWidth::MIPS, Stride::WORD))
    });
    c.bench_function("table1/bus_invert_exact_expectation", |b| {
        b.iter(|| analysis::bus_invert_random_exact(BusWidth::MIPS))
    });
    c.bench_function("table1/monte_carlo_10k", |b| {
        b.iter(|| tables::table1(BusWidth::MIPS, Stride::WORD, 10_000))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
