//! Ablation: the analytical Table 1 quantities versus bus width (16, 32,
//! 64 lines) — the paper motivates its work with the drift toward 64-bit
//! address buses.

use buscode_bench::harness::{criterion_group, criterion_main, Criterion};
use buscode_bench::tables;

fn bench(c: &mut Criterion) {
    println!("Ablation: analytical transitions/clock vs bus width (random stream)");
    for (bits, binary, bus_invert) in tables::ablation_width() {
        println!(
            "  N={bits:2}: binary {binary:6.3}, bus-invert {bus_invert:6.3} ({:5.2}% better)",
            100.0 * (1.0 - bus_invert / binary)
        );
    }

    c.bench_function("ablation_width/analytical_sweep", |b| {
        b.iter(tables::ablation_width)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
