//! Microbenchmark: raw encoding throughput of every code (behavioural
//! implementations) on the reference multiplexed stream — the cost a
//! simulator pays per table cell.

use buscode_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use buscode_bench::tables::reference_muxed_stream;
use buscode_core::metrics::count_transitions;
use buscode_core::{CodeKind, CodeParams};

fn bench(c: &mut Criterion) {
    let stream = reference_muxed_stream(100_000);
    let params = CodeParams::default();
    let mut group = c.benchmark_group("encode_throughput");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for kind in CodeKind::all() {
        let mut enc = kind.encoder(params).expect("valid params");
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                enc.reset();
                count_transitions(enc.as_mut(), stream.iter().copied())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
