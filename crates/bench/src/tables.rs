//! Builders for every table of the paper, plus ablation tables.

use buscode_core::analysis::{self, StreamClass, Table1Row};
use buscode_core::metrics::{binary_reference, count_transitions};
use buscode_core::CodecError;
use buscode_core::{Access, BusWidth, CodeKind, CodeParams, Stride};
use buscode_engine::SweepEngine;
use buscode_logic::{LogicError, Technology};
use buscode_power::{
    hardening_cost, offchip_table, onchip_table, CodecPowerTable, HardeningCost, PadModel,
};
use buscode_trace::{paper_benchmarks, DataModel, InstructionModel, StreamKind, StreamStats};

/// Table 1 with both the closed-form models and a Monte-Carlo check of
/// the actual encoders.
#[derive(Clone, Debug)]
pub struct Table1Report {
    /// The analytical rows.
    pub analytical: Vec<Table1Row>,
    /// Per `(stream, code)`: the measured transitions/clock of the real
    /// encoder on a matching synthetic stream.
    pub measured: Vec<(StreamClass, &'static str, f64)>,
}

/// Builds Table 1: the analytical comparison of binary, Gray, T0 and
/// bus-invert on out-of-sequence and in-sequence unlimited streams, plus
/// a Monte-Carlo verification with `cycles` simulated cycles per cell.
pub fn table1(width: BusWidth, stride: Stride, cycles: usize) -> Table1Report {
    table1_with(&SweepEngine::serial(), width, stride, cycles)
}

/// [`table1`] with its Monte-Carlo cells sharded through `engine`.
///
/// Cell order — and therefore the report — is identical for any worker
/// count.
pub fn table1_with(
    engine: &SweepEngine,
    width: BusWidth,
    stride: Stride,
    cycles: usize,
) -> Table1Report {
    use buscode_core::rng::Rng64;
    let analytical = analysis::table1(width, stride);

    let mut rng = Rng64::seed_from_u64(0x7ab1e1);
    let random: Vec<Access> = (0..cycles)
        .map(|_| Access::data(rng.gen::<u64>() & width.mask()))
        .collect();
    let sequential: Vec<Access> = (0..cycles as u64)
        .map(|i| Access::instruction((stride.get() * i) & width.mask()))
        .collect();

    let params = CodeParams { width, stride };
    let kinds = [
        ("binary", CodeKind::Binary),
        ("gray", CodeKind::Gray),
        ("t0", CodeKind::T0),
        ("bus-invert", CodeKind::BusInvert),
    ];
    let mut cells = Vec::new();
    for (stream_class, stream) in [
        (StreamClass::OutOfSequence, &random),
        (StreamClass::InSequence, &sequential),
    ] {
        for (name, kind) in kinds {
            cells.push((stream_class, name, kind, stream));
        }
    }
    let measured = engine.run(cells, |(stream_class, name, kind, stream)| {
        let mut enc = kind.encoder(params).expect("valid params");
        let stats = count_transitions(enc.as_mut(), stream.iter().copied());
        (stream_class, name, stats.per_cycle())
    });
    Table1Report {
        analytical,
        measured,
    }
}

/// One benchmark row of a transition-count table (Tables 2-7).
#[derive(Clone, Debug)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Stream length used.
    pub length: u64,
    /// Measured in-sequence percentage of the stream.
    pub in_seq_percent: f64,
    /// Binary (reference) transition count.
    pub binary_transitions: u64,
    /// Per code: `(name, transitions, savings% vs binary)`.
    pub codes: Vec<(&'static str, u64, f64)>,
}

/// A full transition-count table (one of Tables 2-7).
#[derive(Clone, Debug)]
pub struct TransitionTable {
    /// Which bus configuration the table covers.
    pub stream: StreamKind,
    /// The codes compared (beyond the binary reference).
    pub codes: Vec<CodeKind>,
    /// One row per benchmark, paper order.
    pub rows: Vec<BenchmarkRow>,
    /// Column averages: in-seq % and per-code savings %.
    pub avg_in_seq_percent: f64,
    /// Average savings percentage per code, same order as `codes`.
    pub avg_savings_percent: Vec<f64>,
}

impl TransitionTable {
    /// The average savings of one code, by name.
    pub fn avg_savings(&self, code: &str) -> Option<f64> {
        self.codes
            .iter()
            .position(|k| k.name() == code)
            .map(|i| self.avg_savings_percent[i])
    }
}

/// Builds a transition-count table over the nine paper benchmarks.
///
/// `length` caps each benchmark's stream (pass `usize::MAX` for the full
/// profile lengths used by the paper-scale runs).
pub fn transition_table(codes: &[CodeKind], stream: StreamKind, length: usize) -> TransitionTable {
    transition_table_with(&SweepEngine::serial(), codes, stream, length)
}

/// [`transition_table`] with its benchmark rows sharded through `engine`.
///
/// Each of the nine rows is an independent job; results come back in
/// paper order regardless of worker count, so the rendered table is
/// byte-identical between `--jobs 1` and `--jobs N`.
pub fn transition_table_with(
    engine: &SweepEngine,
    codes: &[CodeKind],
    stream: StreamKind,
    length: usize,
) -> TransitionTable {
    let params = CodeParams::default();
    let profiles: Vec<&'static buscode_trace::BenchmarkProfile> =
        paper_benchmarks().iter().collect();
    let rows = engine.run(profiles, |profile| {
        let len = profile.length.min(length);
        let accesses = profile.stream_with_len(stream, len);
        let stats = StreamStats::measure(&accesses, params.stride);
        let reference = binary_reference(params.width, accesses.iter().copied());
        let mut code_cells = Vec::new();
        for &kind in codes {
            // The Beach code is stream-trained: profile the benchmark's own
            // stream, as in its embedded-systems setting (paper ref [7]).
            let mut enc: Box<dyn buscode_core::Encoder> = if kind == CodeKind::Beach {
                let addresses = accesses.iter().map(|a| a.address);
                Box::new(
                    buscode_core::codes::BeachCode::train(params.width, addresses).into_encoder(),
                )
            } else {
                kind.encoder(params).expect("valid params")
            };
            let coded = count_transitions(enc.as_mut(), accesses.iter().copied());
            code_cells.push((kind.name(), coded.total(), coded.savings_vs(&reference)));
        }
        BenchmarkRow {
            name: profile.name,
            length: len as u64,
            in_seq_percent: stats.in_seq_percent(),
            binary_transitions: reference.total(),
            codes: code_cells,
        }
    });
    let n = rows.len() as f64;
    let avg_in_seq_percent = rows.iter().map(|r| r.in_seq_percent).sum::<f64>() / n;
    let avg_savings_percent = (0..codes.len())
        .map(|i| rows.iter().map(|r| r.codes[i].2).sum::<f64>() / n)
        .collect();
    TransitionTable {
        stream,
        codes: codes.to_vec(),
        rows,
        avg_in_seq_percent,
        avg_savings_percent,
    }
}

const EXISTING_CODES: [CodeKind; 2] = [CodeKind::T0, CodeKind::BusInvert];
const MIXED_CODES: [CodeKind; 3] = [CodeKind::T0Bi, CodeKind::DualT0, CodeKind::DualT0Bi];

/// Table 2: existing schemes on instruction address streams.
pub fn table2(length: usize) -> TransitionTable {
    transition_table(&EXISTING_CODES, StreamKind::Instruction, length)
}

/// Table 3: existing schemes on data address streams.
pub fn table3(length: usize) -> TransitionTable {
    transition_table(&EXISTING_CODES, StreamKind::Data, length)
}

/// Table 4: existing schemes on multiplexed address streams.
pub fn table4(length: usize) -> TransitionTable {
    transition_table(&EXISTING_CODES, StreamKind::Muxed, length)
}

/// Table 5: mixed schemes on instruction address streams.
pub fn table5(length: usize) -> TransitionTable {
    transition_table(&MIXED_CODES, StreamKind::Instruction, length)
}

/// Table 6: mixed schemes on data address streams.
pub fn table6(length: usize) -> TransitionTable {
    transition_table(&MIXED_CODES, StreamKind::Data, length)
}

/// Table 7: mixed schemes on multiplexed address streams.
pub fn table7(length: usize) -> TransitionTable {
    transition_table(&MIXED_CODES, StreamKind::Muxed, length)
}

/// [`table2`] sharded through `engine`.
pub fn table2_with(engine: &SweepEngine, length: usize) -> TransitionTable {
    transition_table_with(engine, &EXISTING_CODES, StreamKind::Instruction, length)
}

/// [`table3`] sharded through `engine`.
pub fn table3_with(engine: &SweepEngine, length: usize) -> TransitionTable {
    transition_table_with(engine, &EXISTING_CODES, StreamKind::Data, length)
}

/// [`table4`] sharded through `engine`.
pub fn table4_with(engine: &SweepEngine, length: usize) -> TransitionTable {
    transition_table_with(engine, &EXISTING_CODES, StreamKind::Muxed, length)
}

/// [`table5`] sharded through `engine`.
pub fn table5_with(engine: &SweepEngine, length: usize) -> TransitionTable {
    transition_table_with(engine, &MIXED_CODES, StreamKind::Instruction, length)
}

/// [`table6`] sharded through `engine`.
pub fn table6_with(engine: &SweepEngine, length: usize) -> TransitionTable {
    transition_table_with(engine, &MIXED_CODES, StreamKind::Data, length)
}

/// [`table7`] sharded through `engine`.
pub fn table7_with(engine: &SweepEngine, length: usize) -> TransitionTable {
    transition_table_with(engine, &MIXED_CODES, StreamKind::Muxed, length)
}

/// The reference multiplexed stream driving the codec power sweeps: the
/// paper applies "the same reference input switching activities (derived
/// from the benchmark address streams)" to all encoders.
pub fn reference_muxed_stream(length: usize) -> Vec<Access> {
    paper_benchmarks()[0].stream_with_len(StreamKind::Muxed, length)
}

/// The on-chip load sweep of Table 8, picofarads per line.
pub const TABLE8_LOADS_PF: [f64; 6] = [0.1, 0.2, 0.4, 0.8, 1.6, 3.2];

/// The off-chip load sweep of Table 9, picofarads per line.
pub const TABLE9_LOADS_PF: [f64; 6] = [5.0, 10.0, 20.0, 50.0, 100.0, 200.0];

/// Table 8: encoder/decoder power for on-chip loads.
///
/// # Errors
///
/// Propagates circuit-construction errors from the gate-level builders.
pub fn table8(stream_length: usize) -> Result<CodecPowerTable, LogicError> {
    onchip_table(
        &reference_muxed_stream(stream_length),
        &TABLE8_LOADS_PF,
        BusWidth::MIPS,
        Stride::WORD,
        Technology::date98(),
    )
}

/// Table 9: encoder/decoder/pad power for off-chip loads.
///
/// # Errors
///
/// Propagates circuit-construction errors from the gate-level builders.
pub fn table9(stream_length: usize) -> Result<CodecPowerTable, LogicError> {
    offchip_table(
        &reference_muxed_stream(stream_length),
        &TABLE9_LOADS_PF,
        BusWidth::MIPS,
        Stride::WORD,
        Technology::date98(),
        PadModel::date98(),
    )
}

/// Ablation: T0 savings versus stride mismatch. Streams step by the
/// *machine's* stride (4); encoders are configured with each candidate
/// stride, showing why "the increments ... can be parametric, reflecting
/// the addressability scheme" matters.
pub fn ablation_stride(length: usize) -> Vec<(u64, f64)> {
    let width = BusWidth::MIPS;
    let stream = InstructionModel::new(0.6304).generate(length, 7);
    let reference = binary_reference(width, stream.iter().copied());
    [1u64, 2, 4, 8]
        .into_iter()
        .map(|s| {
            let stride = Stride::new(s, width).expect("power of two");
            let params = CodeParams { width, stride };
            let mut enc = CodeKind::T0.encoder(params).expect("valid");
            let stats = count_transitions(enc.as_mut(), stream.iter().copied());
            (s, stats.savings_vs(&reference))
        })
        .collect()
}

/// Ablation: analytical Table 1 quantities versus bus width.
pub fn ablation_width() -> Vec<(u32, f64, f64)> {
    [16u32, 32, 64]
        .into_iter()
        .map(|bits| {
            let width = BusWidth::new(bits).expect("valid width");
            (
                bits,
                analysis::binary_random(width),
                analysis::bus_invert_random_exact(width),
            )
        })
        .collect()
}

/// One row of the codec synthesis report: structural cost of a codec's
/// encoder circuit, before and after optimization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthesisRow {
    /// Codec name.
    pub codec: &'static str,
    /// Gate count of the as-built encoder netlist.
    pub gates: usize,
    /// Flip-flop count.
    pub dffs: usize,
    /// Combinational logic depth (levels).
    pub depth: u32,
    /// Gate count after [`buscode_logic::optimize`].
    pub optimized_gates: usize,
    /// NAND2-equivalent area after [`buscode_logic::tech_map`].
    pub nand2_area: usize,
}

/// The codec synthesis report: area and depth of every encoder circuit —
/// the structural counterpart of the paper's Section 4 synthesis results
/// (its 5.36 ns critical path "through the bus-invert section and the
/// output mux" shows up here as the dual T0_BI depth).
///
/// # Errors
///
/// Propagates circuit-construction and optimization errors.
pub fn codec_synthesis_report() -> Result<Vec<SynthesisRow>, LogicError> {
    use buscode_logic::codecs::{
        binary_encoder, bus_invert_encoder, dual_t0_encoder, dual_t0bi_encoder, gray_encoder,
        t0_encoder, t0bi_encoder,
    };
    let (w, s) = (BusWidth::MIPS, Stride::WORD);
    let circuits = [
        binary_encoder(w)?,
        gray_encoder(w, s)?,
        bus_invert_encoder(w)?,
        t0_encoder(w, s)?,
        t0bi_encoder(w, s)?,
        dual_t0_encoder(w, s)?,
        dual_t0bi_encoder(w, s)?,
    ];
    circuits
        .into_iter()
        .map(|circuit| {
            let optimized = circuit.optimized()?;
            Ok(SynthesisRow {
                codec: circuit.name,
                gates: circuit.netlist.gate_count(),
                dffs: circuit.netlist.dff_count(),
                depth: circuit.netlist.logic_depth(),
                optimized_gates: optimized.netlist.gate_count(),
                nand2_area: buscode_logic::nand2_area(&circuit.netlist),
            })
        })
        .collect()
}

/// The decoder-side synthesis report (same columns as
/// [`codec_synthesis_report`]). The asymmetries are instructive: the Gray
/// *encoder* is two levels deep while its decoder's XOR prefix chain is
/// ~30 levels — the timing cost that pushed the literature from Gray to
/// the redundant codes.
///
/// # Errors
///
/// Propagates circuit-construction and optimization errors.
pub fn decoder_synthesis_report() -> Result<Vec<SynthesisRow>, LogicError> {
    use buscode_logic::codecs::{
        binary_decoder, bus_invert_decoder, dual_t0_decoder, dual_t0bi_decoder, gray_decoder,
        t0_decoder, t0bi_decoder,
    };
    let (w, s) = (BusWidth::MIPS, Stride::WORD);
    let circuits = [
        binary_decoder(w)?,
        gray_decoder(w, s)?,
        bus_invert_decoder(w)?,
        t0_decoder(w, s)?,
        t0bi_decoder(w, s)?,
        dual_t0_decoder(w, s)?,
        dual_t0bi_decoder(w, s)?,
    ];
    circuits
        .into_iter()
        .map(|circuit| {
            let optimized = circuit.optimized()?;
            Ok(SynthesisRow {
                codec: circuit.name,
                gates: circuit.netlist.gate_count(),
                dffs: circuit.netlist.dff_count(),
                depth: circuit.netlist.logic_depth(),
                optimized_gates: optimized.netlist.gate_count(),
                nand2_area: buscode_logic::nand2_area(&circuit.netlist),
            })
        })
        .collect()
}

/// Ablation: partitioned bus-invert on data streams — Stan and Burleson's
/// wide-bus refinement. More partitions lower the inversion threshold per
/// slice (more savings) at the price of one `INV` line each.
///
/// Returns `(partitions, avg savings % vs binary)` over the nine data
/// benchmark streams.
pub fn ablation_partitioned_bus_invert(length: usize) -> Vec<(u32, f64)> {
    use buscode_core::codes::BusInvertEncoder;
    let params = CodeParams::default();
    [1u32, 2, 4, 8]
        .into_iter()
        .map(|partitions| {
            let mut total_savings = 0.0;
            for profile in paper_benchmarks() {
                let stream = profile.stream_with_len(StreamKind::Data, profile.length.min(length));
                let reference = binary_reference(params.width, stream.iter().copied());
                let mut enc = BusInvertEncoder::with_partitions(params.width, partitions)
                    .expect("valid partition count");
                let stats = count_transitions(&mut enc, stream.iter().copied());
                total_savings += stats.savings_vs(&reference);
            }
            (partitions, total_savings / paper_benchmarks().len() as f64)
        })
        .collect()
}

/// One point of the sequentiality sweep: savings of each code at one
/// in-sequence fraction.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The stream's in-sequence fraction target.
    pub in_seq: f64,
    /// Per code: `(name, savings% vs binary)`.
    pub savings: Vec<(&'static str, f64)>,
}

/// Sweeps a data-style stream's in-sequence fraction from nearly random
/// to nearly pure array walks and measures every paper code — the
/// design-space curve behind all of the paper's tables: bus-invert rules
/// the low-locality end, the T0 family takes over as runs lengthen.
/// (Data-style streams mix stack and heap regions, giving bus-invert the
/// far patterns it needs; instruction jumps stay inside one segment and
/// never trigger it.)
pub fn sequentiality_sweep(length: usize) -> Vec<SweepPoint> {
    let params = CodeParams::default();
    let fractions = [0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95];
    fractions
        .into_iter()
        .map(|q| {
            let stream = DataModel::new(q).generate(length, 0x5eed ^ q.to_bits());
            let reference = binary_reference(params.width, stream.iter().copied());
            let savings = CodeKind::paper_codes()
                .iter()
                .map(|kind| {
                    let mut enc = kind.encoder(params).expect("valid params");
                    let stats = count_transitions(enc.as_mut(), stream.iter().copied());
                    (kind.name(), stats.savings_vs(&reference))
                })
                .collect();
            SweepPoint { in_seq: q, savings }
        })
        .collect()
}

/// Ablation: the extension codes on all three stream kinds; per code the
/// average savings over the nine benchmarks.
pub fn ablation_extensions(length: usize) -> Vec<(StreamKind, TransitionTable)> {
    let codes: Vec<CodeKind> = CodeKind::extension_codes().to_vec();
    [StreamKind::Instruction, StreamKind::Data, StreamKind::Muxed]
        .into_iter()
        .map(|kind| (kind, transition_table(&codes, kind, length)))
        .collect()
}

/// The refresh intervals swept by [`hardening_table`].
pub const HARDENING_REFRESHES: [u64; 3] = [8, 32, 128];

/// The power-vs-reliability trade-off: bus power of each stateful paper
/// code bare and under the `Hardened` wrapper, on the reference
/// multiplexed stream at the off-chip load of Table 9's 50 pF column.
/// One [`HardeningCost`] per code × refresh interval in
/// [`HARDENING_REFRESHES`]; the reliability side of the same trade-off is
/// the `faultrun` campaign's resync bound.
///
/// # Errors
///
/// Propagates invalid-parameter errors from the power model.
pub fn hardening_table(stream_length: usize) -> Result<Vec<HardeningCost>, CodecError> {
    let stream = reference_muxed_stream(stream_length);
    let params = CodeParams {
        width: BusWidth::MIPS,
        stride: Stride::WORD,
    };
    let tech = Technology::date98();
    let codes = [
        CodeKind::T0,
        CodeKind::T0Bi,
        CodeKind::DualT0,
        CodeKind::DualT0Bi,
        CodeKind::T0Xor,
        CodeKind::Offset,
    ];
    let mut out = Vec::new();
    for code in codes {
        for refresh in HARDENING_REFRESHES {
            out.push(hardening_cost(code, params, refresh, &stream, 50.0, tech)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_LEN: usize = 20_000;

    #[test]
    fn table1_monte_carlo_agrees_with_analysis() {
        let report = table1(BusWidth::MIPS, Stride::WORD, 30_000);
        for (stream, code, measured) in &report.measured {
            let analytical = report
                .analytical
                .iter()
                .find(|r| r.stream == *stream && r.code == *code)
                .unwrap()
                .avg_transitions_per_clock;
            assert!(
                (measured - analytical).abs() < 0.15,
                "{stream} {code}: measured {measured}, analytical {analytical}"
            );
        }
    }

    #[test]
    fn table2_shape_matches_paper() {
        // Paper: T0 saves ~35% on instruction streams; bus-invert ~0%.
        let t = table2(TEST_LEN);
        let t0 = t.avg_savings("t0").unwrap();
        let bi = t.avg_savings("bus-invert").unwrap();
        assert!(t0 > 20.0, "t0 savings {t0}");
        assert!(bi.abs() < 5.0, "bus-invert savings {bi}");
        assert!((t.avg_in_seq_percent - 63.04).abs() < 3.0);
    }

    #[test]
    fn table3_shape_matches_paper() {
        // Paper: on data streams T0 gives only marginal savings; bus-invert
        // is the best existing redundant code.
        let t = table3(TEST_LEN);
        let t0 = t.avg_savings("t0").unwrap();
        let bi = t.avg_savings("bus-invert").unwrap();
        assert!(t0 < 15.0, "t0 savings {t0}");
        assert!(bi > t0, "bus-invert {bi} should beat t0 {t0}");
        assert!((t.avg_in_seq_percent - 11.39).abs() < 3.0);
    }

    #[test]
    fn table4_shape_matches_paper() {
        // Muxed streams sit between the two, and both codes save something.
        let t = table4(TEST_LEN);
        let t0 = t.avg_savings("t0").unwrap();
        assert!(t0 > 0.0);
        let instr = table2(TEST_LEN).avg_savings("t0").unwrap();
        assert!(t0 < instr, "muxed t0 {t0} < instruction t0 {instr}");
    }

    #[test]
    fn table5_mixed_codes_match_t0_on_instruction_streams() {
        // Paper: on pure instruction streams dual T0 and dual T0_BI achieve
        // the same savings as plain T0; T0_BI is very close.
        let mixed = table5(TEST_LEN);
        let plain = table2(TEST_LEN).avg_savings("t0").unwrap();
        let dual = mixed.avg_savings("dual-t0").unwrap();
        let dual_bi = mixed.avg_savings("dual-t0-bi").unwrap();
        let t0bi = mixed.avg_savings("t0-bi").unwrap();
        assert!((dual - plain).abs() < 0.5, "dual {dual} vs t0 {plain}");
        assert!((dual_bi - plain).abs() < 0.5);
        assert!((t0bi - plain).abs() < 5.0);
    }

    #[test]
    fn table6_shape_matches_paper() {
        // Paper: dual T0 saves nothing on data streams; T0_BI and dual
        // T0_BI both save meaningfully, with T0_BI on top.
        let t = table6(TEST_LEN);
        let dual = t.avg_savings("dual-t0").unwrap();
        let t0bi = t.avg_savings("t0-bi").unwrap();
        let dual_bi = t.avg_savings("dual-t0-bi").unwrap();
        assert!(dual.abs() < 1.0, "dual t0 on data: {dual}");
        assert!(t0bi > 0.0 && dual_bi > 0.0);
        assert!(t0bi >= dual_bi - 0.5, "t0-bi {t0bi} vs dual {dual_bi}");
    }

    #[test]
    fn table7_dual_t0bi_is_best_on_muxed_bus() {
        // The paper's headline result.
        let t = table7(TEST_LEN);
        let t0bi = t.avg_savings("t0-bi").unwrap();
        let dual = t.avg_savings("dual-t0").unwrap();
        let dual_bi = t.avg_savings("dual-t0-bi").unwrap();
        assert!(dual_bi > t0bi, "dual t0-bi {dual_bi} vs t0-bi {t0bi}");
        assert!(dual_bi > dual, "dual t0-bi {dual_bi} vs dual t0 {dual}");
        let plain = table4(TEST_LEN).avg_savings("t0").unwrap();
        assert!(dual_bi > plain, "dual t0-bi {dual_bi} vs t0 {plain}");
    }

    #[test]
    fn table8_has_all_rows_and_codecs() {
        let t = table8(2_000).unwrap();
        assert_eq!(t.rows.len(), TABLE8_LOADS_PF.len());
        for row in &t.rows {
            assert_eq!(row.entries.len(), 3);
            for e in &row.entries {
                assert!(e.global_mw > 0.0);
                assert!(e.pads_mw.is_none());
            }
        }
    }

    #[test]
    fn table9_encoded_codecs_win_at_the_top_of_the_sweep() {
        let t = table9(2_000).unwrap();
        let last = t.rows.last().unwrap();
        let by_name = |n: &str| last.entries.iter().find(|e| e.codec == n).unwrap();
        assert!(by_name("dual-t0-bi").global_mw < by_name("binary").global_mw);
        assert!(by_name("t0").global_mw < by_name("binary").global_mw);
    }

    #[test]
    fn stride_ablation_peaks_at_the_machine_stride() {
        let rows = ablation_stride(TEST_LEN);
        let best = rows.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert_eq!(best.0, 4, "{rows:?}");
    }

    #[test]
    fn width_ablation_is_monotone() {
        let rows = ablation_width();
        for pair in rows.windows(2) {
            assert!(pair[1].1 > pair[0].1);
            assert!(pair[1].2 > pair[0].2);
        }
    }

    #[test]
    fn decoder_report_shows_the_gray_asymmetry() {
        let decoders = decoder_synthesis_report().unwrap();
        let encoders = codec_synthesis_report().unwrap();
        let dec = |n: &str| decoders.iter().find(|r| r.codec == n).unwrap();
        let enc = |n: &str| encoders.iter().find(|r| r.codec == n).unwrap();
        // Gray: trivial encoder, deep decoder (the XOR prefix chain).
        assert!(dec("gray").depth > enc("gray").depth + 20);
        // The paper: T0 and dual T0_BI decoders are architecturally similar.
        let ratio = dec("dual-t0-bi").gates as f64 / dec("t0").gates as f64;
        assert!((0.8..2.0).contains(&ratio), "ratio {ratio}");
        // Bus-invert's decoder is one XOR rank: far smaller than its encoder.
        assert!(dec("bus-invert").gates * 4 < enc("bus-invert").gates);
    }

    #[test]
    fn partitioned_bus_invert_improves_with_partitions() {
        let rows = ablation_partitioned_bus_invert(8_000);
        assert_eq!(rows.len(), 4);
        // More partitions increase savings overall (not strictly monotone:
        // partition boundaries interact with the address-field structure).
        for pair in rows.windows(2) {
            assert!(pair[1].1 > pair[0].1 - 3.0, "{rows:?}");
        }
        assert!(rows[3].1 > rows[0].1 + 3.0, "{rows:?}");
    }

    #[test]
    fn sequentiality_sweep_shows_the_regime_change() {
        let sweep = sequentiality_sweep(15_000);
        let get = |point: &SweepPoint, code: &str| {
            point
                .savings
                .iter()
                .find(|(c, _)| *c == code)
                .map(|(_, s)| *s)
                .unwrap()
        };
        let low = &sweep[0]; // ~5% in-seq: bus-invert territory
        let high = sweep.last().unwrap(); // ~95% in-seq: T0 territory
        assert!(
            get(low, "bus-invert") > get(low, "t0"),
            "low-locality regime"
        );
        assert!(
            get(high, "t0") > get(high, "bus-invert") + 30.0,
            "high-locality regime"
        );
        // T0 savings grow monotonically with sequentiality.
        let t0: Vec<f64> = sweep.iter().map(|p| get(p, "t0")).collect();
        for pair in t0.windows(2) {
            assert!(pair[1] > pair[0] - 1.0, "{t0:?}");
        }
    }

    #[test]
    fn synthesis_report_matches_paper_observations() {
        let report = codec_synthesis_report().unwrap();
        assert_eq!(report.len(), 7);
        let by = |n: &str| report.iter().find(|r| r.codec == n).unwrap();
        // Cost ordering of the paper's three compared codecs.
        assert!(by("binary").gates < by("t0").gates);
        assert!(by("t0").gates < by("dual-t0-bi").gates);
        // The critical path runs through the bus-invert section.
        assert!(by("dual-t0-bi").depth > by("t0").depth);
        // Binary and Gray are register-free.
        assert_eq!(by("binary").dffs, 0);
        assert_eq!(by("gray").dffs, 0);
        // Optimization never grows a circuit.
        for row in &report {
            assert!(row.optimized_gates <= row.gates, "{row:?}");
        }
        // NAND2 area preserves the cost ordering.
        assert!(by("binary").nand2_area < by("t0").nand2_area);
        assert!(by("t0").nand2_area < by("dual-t0-bi").nand2_area);
    }

    #[test]
    fn hardening_table_shows_overhead_shrinking_with_refresh() {
        let rows = hardening_table(4_000).unwrap();
        assert_eq!(rows.len(), 6 * HARDENING_REFRESHES.len());
        for chunk in rows.chunks(HARDENING_REFRESHES.len()) {
            // Hardening always costs power…
            for row in chunk {
                assert!(row.hardened_mw > row.bare_mw, "{row:?}");
            }
            // …and the tighter the resync bound, the more it costs.
            for pair in chunk.windows(2) {
                assert!(pair[0].refresh < pair[1].refresh);
                assert!(pair[0].hardened_mw > pair[1].hardened_mw, "{pair:?}");
            }
        }
    }

    #[test]
    fn extension_ablation_covers_all_streams() {
        let tables = ablation_extensions(5_000);
        assert_eq!(tables.len(), 3);
        for (_, t) in &tables {
            assert_eq!(t.codes.len(), CodeKind::extension_codes().len());
            assert_eq!(t.rows.len(), 9);
        }
    }
}
