//! Plain-text rendering of the experiment tables, in the layout of the
//! paper's tables.

use crate::tables::{Table1Report, TransitionTable};
use buscode_power::{CodecPowerTable, HardeningCost};

fn hr(widths: &[usize]) -> String {
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    "-".repeat(total)
}

/// Renders Table 1 (analytical + Monte-Carlo).
pub fn render_table1(report: &Table1Report) -> String {
    let mut out = String::new();
    out.push_str("Table 1: Analytical Performance Comparison\n");
    out.push_str(&format!(
        "{:<16} {:<12} {:>14} {:>14} {:>10} {:>12}\n",
        "Stream", "Code", "Avg.Trans/Clk", "per Line", "Rel.Power", "MonteCarlo"
    ));
    out.push_str(&hr(&[16, 12, 14, 14, 10, 12]));
    out.push('\n');
    for row in &report.analytical {
        let measured = report
            .measured
            .iter()
            .find(|(s, c, _)| *s == row.stream && *c == row.code)
            .map(|(_, _, m)| format!("{m:>12.3}"))
            .unwrap_or_else(|| format!("{:>12}", "-"));
        out.push_str(&format!(
            "{:<16} {:<12} {:>14.4} {:>14.4} {:>10.4} {}\n",
            row.stream.to_string(),
            row.code,
            row.avg_transitions_per_clock,
            row.avg_transitions_per_line,
            row.relative_power,
            measured
        ));
    }
    out
}

/// Renders one of Tables 2-7.
pub fn render_transition_table(title: &str, table: &TransitionTable) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<11} {:>9} {:>9} {:>12}",
        "Benchmark", "Length", "In-Seq%", "Binary"
    ));
    for kind in &table.codes {
        out.push_str(&format!(" {:>12} {:>9}", kind.name(), "Savings"));
    }
    out.push('\n');
    for row in &table.rows {
        out.push_str(&format!(
            "{:<11} {:>9} {:>8.2}% {:>12}",
            row.name, row.length, row.in_seq_percent, row.binary_transitions
        ));
        for (_, transitions, savings) in &row.codes {
            out.push_str(&format!(" {:>12} {:>8.2}%", transitions, savings));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{:<11} {:>9} {:>8.2}% {:>12}",
        "Average", "", table.avg_in_seq_percent, ""
    ));
    for savings in &table.avg_savings_percent {
        out.push_str(&format!(" {:>12} {:>8.2}%", "", savings));
    }
    out.push('\n');
    out
}

/// Renders Table 8 or 9 (codec power sweep).
pub fn render_power_table(title: &str, table: &CodecPowerTable, with_pads: bool) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:>9}", "Load(pF)"));
    for entry in &table.rows[0].entries {
        if with_pads {
            out.push_str(&format!(
                " | {:>10} {:>10} {:>10} {:>10}",
                format!("{}.enc", entry.codec),
                "dec",
                "pads",
                "global"
            ));
        } else {
            out.push_str(&format!(
                " | {:>10} {:>10} {:>10}",
                format!("{}.enc", entry.codec),
                "dec",
                "global"
            ));
        }
    }
    out.push_str(" (mW)\n");
    for row in &table.rows {
        out.push_str(&format!("{:>9.2}", row.load_pf));
        for entry in &row.entries {
            if with_pads {
                out.push_str(&format!(
                    " | {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                    entry.encoder_mw,
                    entry.decoder_mw,
                    entry.pads_mw.unwrap_or(0.0),
                    entry.global_mw
                ));
            } else {
                out.push_str(&format!(
                    " | {:>10.4} {:>10.4} {:>10.4}",
                    entry.encoder_mw, entry.decoder_mw, entry.global_mw
                ));
            }
        }
        out.push('\n');
    }
    if let Some(load) = table.crossover("binary", "t0") {
        out.push_str(&format!("t0 overtakes binary at {load} pF\n"));
    }
    if let Some(load) = table.crossover("t0", "dual-t0-bi") {
        out.push_str(&format!("dual-t0-bi overtakes t0 at {load} pF\n"));
    }
    out
}

/// Renders the hardening power-vs-reliability table: per stateful code
/// and refresh interval, bare versus hardened bus power and the overhead
/// the parity line and refresh words cost.
pub fn render_hardening_table(title: &str, rows: &[HardeningCost]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>8} {:>12} {:>14} {:>10}\n",
        "Code", "Refresh", "Bare(mW)", "Hardened(mW)", "Overhead"
    ));
    out.push_str(&hr(&[12, 8, 12, 14, 10]));
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:<12} {:>8} {:>12.4} {:>14.4} {:>9.2}%\n",
            row.code.name(),
            row.refresh,
            row.bare_mw,
            row.hardened_mw,
            row.overhead_percent()
        ));
    }
    out
}

/// Renders the hardening trade-off table as CSV.
pub fn csv_hardening_table(rows: &[HardeningCost]) -> String {
    let mut out = String::from("code,refresh,bare_mw,hardened_mw,overhead_percent\n");
    for row in rows {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:.4}\n",
            row.code.name(),
            row.refresh,
            row.bare_mw,
            row.hardened_mw,
            row.overhead_percent()
        ));
    }
    out
}

/// Renders one of Tables 2-7 as CSV (machine-readable companion to the
/// plain-text layout).
pub fn csv_transition_table(table: &TransitionTable) -> String {
    let mut out = String::from("benchmark,length,in_seq_percent,binary_transitions");
    for kind in &table.codes {
        out.push_str(&format!(
            ",{0}_transitions,{0}_savings_percent",
            kind.name()
        ));
    }
    out.push('\n');
    for row in &table.rows {
        out.push_str(&format!(
            "{},{},{:.4},{}",
            row.name, row.length, row.in_seq_percent, row.binary_transitions
        ));
        for (_, transitions, savings) in &row.codes {
            out.push_str(&format!(",{transitions},{savings:.4}"));
        }
        out.push('\n');
    }
    out
}

/// Renders Table 8 or 9 as CSV.
pub fn csv_power_table(table: &CodecPowerTable) -> String {
    let mut out = String::from("load_pf");
    for entry in &table.rows[0].entries {
        out.push_str(&format!(
            ",{0}_encoder_mw,{0}_decoder_mw,{0}_pads_mw,{0}_global_mw",
            entry.codec
        ));
    }
    out.push('\n');
    for row in &table.rows {
        out.push_str(&format!("{}", row.load_pf));
        for entry in &row.entries {
            out.push_str(&format!(
                ",{:.6},{:.6},{:.6},{:.6}",
                entry.encoder_mw,
                entry.decoder_mw,
                entry.pads_mw.unwrap_or(0.0),
                entry.global_mw
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables;
    use buscode_core::{BusWidth, Stride};

    #[test]
    fn table1_renders_every_row() {
        let report = tables::table1(BusWidth::MIPS, Stride::WORD, 2_000);
        let text = render_table1(&report);
        assert!(text.contains("bus-invert"));
        assert!(text.contains("in-sequence"));
        assert!(text.lines().count() >= 10);
    }

    #[test]
    fn transition_table_renders_benchmarks_and_average() {
        let t = tables::table2(3_000);
        let text = render_transition_table("Table 2", &t);
        for name in ["gzip", "oracle", "Average"] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn power_table_renders_loads() {
        let t = tables::table8(500).unwrap();
        let text = render_power_table("Table 8", &t, false);
        assert!(text.contains("0.10"));
        assert!(text.contains("dual-t0-bi.enc"));
    }

    #[test]
    fn csv_transition_table_is_parseable() {
        let t = tables::table2(2_000);
        let csv = csv_transition_table(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 10); // header + 9 benchmarks
        let columns = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "{line}");
        }
        assert!(lines[0].contains("t0_savings_percent"));
        assert!(lines[1].starts_with("gzip,"));
    }

    #[test]
    fn hardening_table_renders_and_csv_parses() {
        let rows = tables::hardening_table(2_000).unwrap();
        let text = render_hardening_table("Hardening cost", &rows);
        assert!(text.contains("dual-t0-bi"));
        assert!(text.contains("Overhead"));
        let csv = csv_hardening_table(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + rows.len());
        let columns = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns);
        }
    }

    #[test]
    fn csv_power_table_is_parseable() {
        let t = tables::table8(300).unwrap();
        let csv = csv_power_table(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + tables::TABLE8_LOADS_PF.len());
        let columns = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns);
        }
    }
}
