//! # buscode-bench
//!
//! The experiment harness that regenerates every table of the DATE'98
//! paper. The table builders here are shared between the `paper_tables`
//! binary (which prints them) and the Criterion benches (one per table).
//!
//! | paper table | builder | contents |
//! |---|---|---|
//! | Table 1 | [`table1`] | analytical comparison + Monte-Carlo check |
//! | Table 2 | [`table2`] | binary/T0/bus-invert on instruction streams |
//! | Table 3 | [`table3`] | same on data streams |
//! | Table 4 | [`table4`] | same on multiplexed streams |
//! | Table 5 | [`table5`] | T0_BI / dual T0 / dual T0_BI on instruction streams |
//! | Table 6 | [`table6`] | same on data streams |
//! | Table 7 | [`table7`] | same on multiplexed streams |
//! | Table 8 | [`table8`] | on-chip codec power sweep |
//! | Table 9 | [`table9`] | off-chip codec power sweep with pads |
//!
//! Ablations beyond the paper: [`ablation_stride`], [`ablation_width`],
//! and [`ablation_extensions`].

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod harness;
pub mod render;
pub mod tables;

pub use tables::{
    ablation_extensions, ablation_partitioned_bus_invert, ablation_stride, ablation_width,
    codec_synthesis_report, decoder_synthesis_report, hardening_table, sequentiality_sweep, table1,
    table2, table3, table4, table5, table6, table7, table8, table9, SweepPoint, SynthesisRow,
    Table1Report, TransitionTable, HARDENING_REFRESHES,
};
