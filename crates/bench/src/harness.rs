//! Minimal benchmark harness with a Criterion-compatible surface.
//!
//! The workspace builds offline, so the bench targets run on this
//! self-contained timing harness instead of the external `criterion`
//! crate. It implements exactly the subset the benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::throughput`], [`Bencher::iter`], and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — reporting the
//! median, minimum, and (when a throughput is declared) elements per
//! second for each benchmark.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness handle; mirrors `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times a single benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, None, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Declared per-iteration work, used to derive a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many items per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.throughput, self.criterion.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the inner loop.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, preventing the result from being optimized away.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(f());
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One untimed warm-up pass.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        times.push(bencher.elapsed);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let rate = throughput.map(|t| {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let per_sec = count as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE);
        format!("  thrpt: {} {unit}", humanize_rate(per_sec))
    });
    println!(
        "bench {id:<44} median {:>12}  min {:>12}  ({samples} samples){}",
        humanize_duration(median),
        humanize_duration(min),
        rate.unwrap_or_default()
    );
}

fn humanize_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn humanize_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} k", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

/// Defines a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::harness::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Defines the bench binary entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

// Let bench files import the macros alongside the types from this module.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut runs = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("t", |b| {
                b.iter(|| {
                    runs += 1;
                });
            });
        // One warm-up + three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_applies_throughput_without_panicking() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn humanize_formats() {
        assert_eq!(humanize_duration(Duration::from_nanos(10)), "10 ns");
        assert!(humanize_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(humanize_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(humanize_rate(2.5e6).starts_with("2.50 M"));
    }
}
