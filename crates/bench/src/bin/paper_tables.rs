//! Regenerates the paper's tables on stdout.
//!
//! Usage:
//!
//! ```text
//! paper_tables [--table N] [--len L] [--ablations]
//! ```
//!
//! Without arguments, all nine paper tables plus the hardening
//! power-vs-reliability table (`--table 10`) are printed at full
//! benchmark lengths (use `--len` to cap stream lengths for a quick run).

use buscode_bench::render::{
    csv_hardening_table, csv_power_table, csv_transition_table, render_hardening_table,
    render_power_table, render_table1, render_transition_table,
};
use buscode_bench::tables;
use buscode_core::{BusWidth, Stride};

struct Options {
    table: Option<u32>,
    len: usize,
    ablations: bool,
    csv_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        table: None,
        len: usize::MAX,
        ablations: false,
        csv_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--table" => {
                let v = args.next().ok_or("--table needs a number")?;
                opts.table = Some(v.parse().map_err(|_| format!("bad table number {v}"))?);
            }
            "--len" => {
                let v = args.next().ok_or("--len needs a number")?;
                opts.len = v.parse().map_err(|_| format!("bad length {v}"))?;
            }
            "--ablations" => opts.ablations = true,
            "--csv" => {
                let dir = args.next().ok_or("--csv needs a directory")?;
                opts.csv_dir = Some(std::path::PathBuf::from(dir));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: paper_tables [--table N] [--len L] [--ablations] [--csv DIR]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let want = |n: u32| opts.table.is_none() || opts.table == Some(n);
    let write_csv = |name: &str, contents: String| {
        if let Some(dir) = &opts.csv_dir {
            if let Err(e) =
                std::fs::create_dir_all(dir).and_then(|()| std::fs::write(dir.join(name), contents))
            {
                eprintln!("cannot write {name}: {e}");
                std::process::exit(1);
            }
        }
    };
    // Power tables simulate gate-level circuits; cap their stream length
    // to keep the run minutes-scale even at "full" settings.
    let power_len = opts.len.min(30_000);
    let t1_cycles = opts.len.min(200_000);

    if want(1) {
        let report = tables::table1(BusWidth::MIPS, Stride::WORD, t1_cycles);
        println!("{}", render_table1(&report));
    }
    if want(2) {
        let table = tables::table2(opts.len);
        println!(
            "{}",
            render_transition_table(
                "Table 2: Existing Encoding Schemes, Instruction Address Streams",
                &table
            )
        );
        write_csv("table2.csv", csv_transition_table(&table));
    }
    if want(3) {
        let table = tables::table3(opts.len);
        println!(
            "{}",
            render_transition_table(
                "Table 3: Existing Encoding Schemes, Data Address Streams",
                &table
            )
        );
        write_csv("table3.csv", csv_transition_table(&table));
    }
    if want(4) {
        let table = tables::table4(opts.len);
        println!(
            "{}",
            render_transition_table(
                "Table 4: Existing Encoding Schemes, Multiplexed Address Streams",
                &table
            )
        );
        write_csv("table4.csv", csv_transition_table(&table));
    }
    if want(5) {
        let table = tables::table5(opts.len);
        println!(
            "{}",
            render_transition_table(
                "Table 5: Mixed Encoding Schemes, Instruction Address Streams",
                &table
            )
        );
        write_csv("table5.csv", csv_transition_table(&table));
    }
    if want(6) {
        let table = tables::table6(opts.len);
        println!(
            "{}",
            render_transition_table(
                "Table 6: Mixed Encoding Schemes, Data Address Streams",
                &table
            )
        );
        write_csv("table6.csv", csv_transition_table(&table));
    }
    if want(7) {
        let table = tables::table7(opts.len);
        println!(
            "{}",
            render_transition_table(
                "Table 7: Mixed Encoding Schemes, Multiplexed Address Streams",
                &table
            )
        );
        write_csv("table7.csv", csv_transition_table(&table));
    }
    if want(8) {
        let table = tables::table8(power_len).expect("table 8 builds");
        println!(
            "{}",
            render_power_table(
                "Table 8: Enc/Dec Power Consumption for On-Chip Loads",
                &table,
                false
            )
        );
        write_csv("table8.csv", csv_power_table(&table));
    }
    if want(9) {
        let table = tables::table9(power_len).expect("table 9 builds");
        println!(
            "{}",
            render_power_table(
                "Table 9: Enc/Dec Power Consumption for Off-Chip Loads",
                &table,
                true
            )
        );
        write_csv("table9.csv", csv_power_table(&table));
    }
    if want(10) {
        let rows = tables::hardening_table(power_len).expect("hardening table builds");
        println!(
            "{}",
            render_hardening_table(
                "Hardening Cost: Bus Power of Stateful Codes Bare vs Hardened (50 pF)",
                &rows
            )
        );
        write_csv("hardening.csv", csv_hardening_table(&rows));
    }
    if opts.ablations {
        println!("Codec synthesis report (32-bit encoders)");
        println!(
            "{:>12} {:>7} {:>6} {:>7} {:>10} {:>10}",
            "codec", "gates", "dffs", "depth", "optimized", "nand2"
        );
        for row in tables::codec_synthesis_report().expect("synthesis report builds") {
            println!(
                "{:>12} {:>7} {:>6} {:>7} {:>10} {:>10}",
                row.codec, row.gates, row.dffs, row.depth, row.optimized_gates, row.nand2_area
            );
        }
        println!();
        println!("Decoder synthesis report (32-bit decoders)");
        println!(
            "{:>12} {:>7} {:>6} {:>7} {:>10} {:>10}",
            "codec", "gates", "dffs", "depth", "optimized", "nand2"
        );
        for row in tables::decoder_synthesis_report().expect("synthesis report builds") {
            println!(
                "{:>12} {:>7} {:>6} {:>7} {:>10} {:>10}",
                row.codec, row.gates, row.dffs, row.depth, row.optimized_gates, row.nand2_area
            );
        }
        println!();
        println!("Ablation: T0 savings vs configured stride (machine stride = 4)");
        for (stride, savings) in tables::ablation_stride(opts.len.min(100_000)) {
            println!("  stride {stride}: {savings:.2}%");
        }
        println!("\nAblation: analytical transitions/clock vs bus width (random stream)");
        for (bits, binary, bus_invert) in tables::ablation_width() {
            println!("  N={bits}: binary {binary:.3}, bus-invert {bus_invert:.3}");
        }
        println!("\nAblation: partitioned bus-invert on data streams");
        for (partitions, savings) in tables::ablation_partitioned_bus_invert(opts.len.min(50_000)) {
            println!("  {partitions} partition(s): {savings:.2}% savings vs binary");
        }
        println!("\nDesign-space sweep: savings vs in-sequence fraction (data-style streams)");
        let sweep = tables::sequentiality_sweep(opts.len.min(60_000));
        print!("{:>8}", "in-seq");
        for (code, _) in &sweep[0].savings {
            print!(" {code:>11}");
        }
        println!();
        for point in &sweep {
            print!("{:>7.0}%", 100.0 * point.in_seq);
            for (_, savings) in &point.savings {
                print!(" {savings:>10.2}%");
            }
            println!();
        }
        println!("\nAblation: extension codes, average savings vs binary");
        for (kind, table) in tables::ablation_extensions(opts.len.min(50_000)) {
            print!("  {kind}:");
            for (code, savings) in table.codes.iter().zip(&table.avg_savings_percent) {
                print!(" {}={savings:.2}%", code.name());
            }
            println!();
        }
    }
}
