//! Regenerates the paper's tables on stdout.
//!
//! Usage:
//!
//! ```text
//! paper_tables [--table N] [--len L] [--ablations] [--csv DIR]
//!              [--format text|json] [--seed S] [--jobs N] [--quiet]
//! ```
//!
//! Without arguments, all nine paper tables plus the hardening
//! power-vs-reliability table (`--table 10`) are printed at full
//! benchmark lengths (use `--len` to cap stream lengths for a quick
//! run). `--jobs N` shards the transition tables' benchmark rows across
//! worker threads; the output is byte-identical to a serial run. The
//! common `--seed` flag is accepted for interface uniformity but unused:
//! every stream here is fixed by the paper's benchmark profiles.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::process::ExitCode;

use buscode_bench::render::{
    csv_hardening_table, csv_power_table, csv_transition_table, render_hardening_table,
    render_power_table, render_table1, render_transition_table,
};
use buscode_bench::tables;
use buscode_core::{BusWidth, Stride};
use buscode_engine::cli::{
    self, json_escape, CommonArgs, JsonPayload, Outcome, Report, ToolRun, COMMON_USAGE,
};
use buscode_engine::SweepEngine;
use buscode_telemetry::MetricSet;

const TOOL: &str = "paper_tables";

fn usage() -> String {
    format!("usage: paper_tables [--table N] [--len L] [--ablations] [--csv DIR] {COMMON_USAGE}")
}

struct Options {
    table: Option<u32>,
    len: usize,
    ablations: bool,
    csv_dir: Option<std::path::PathBuf>,
}

fn parse_tool_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        table: None,
        len: usize::MAX,
        ablations: false,
        csv_dir: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--table" => {
                let v = it.next().ok_or("--table needs a number")?;
                opts.table = Some(v.parse().map_err(|_| format!("bad table number {v}"))?);
            }
            "--len" => {
                let v = it.next().ok_or("--len needs a number")?;
                opts.len = v.parse().map_err(|_| format!("bad length {v}"))?;
            }
            "--ablations" => opts.ablations = true,
            "--csv" => {
                let dir = it.next().ok_or("--csv needs a directory")?;
                opts.csv_dir = Some(std::path::PathBuf::from(dir));
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

/// One rendered table: an identifier for the JSON envelope plus the text
/// block the serial binary has always printed.
struct Section {
    id: String,
    text: String,
}

/// All rendered tables from one run, behind the unified [`Report`] API.
struct TablesReport {
    sections: Vec<Section>,
}

impl Report for TablesReport {
    fn render_text(&self) -> String {
        self.sections.iter().map(|s| s.text.as_str()).collect()
    }

    fn render_json(&self) -> String {
        let entries: Vec<String> = self
            .sections
            .iter()
            .map(|s| {
                format!(
                    "{{\"table\":\"{}\",\"render\":\"{}\"}}",
                    json_escape(&s.id),
                    json_escape(&s.text)
                )
            })
            .collect();
        format!("[{}]", entries.join(","))
    }

    fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("tables.sections", self.sections.len() as u64);
        let bytes: u64 = self.sections.iter().map(|s| s.text.len() as u64).sum();
        set.add_counter("tables.rendered_bytes", bytes);
        set
    }
}

fn build_sections(opts: &Options, engine: &SweepEngine) -> Result<Vec<Section>, String> {
    let want = |n: u32| opts.table.is_none() || opts.table == Some(n);
    let mut sections = Vec::new();
    let write_csv = |name: &str, contents: String| -> Result<(), String> {
        if let Some(dir) = &opts.csv_dir {
            std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(name), contents))
                .map_err(|e| format!("cannot write {name}: {e}"))?;
        }
        Ok(())
    };
    // Power tables simulate gate-level circuits; cap their stream length
    // to keep the run minutes-scale even at "full" settings.
    let power_len = opts.len.min(30_000);
    let t1_cycles = opts.len.min(200_000);

    if want(1) {
        let report = tables::table1_with(engine, BusWidth::MIPS, Stride::WORD, t1_cycles);
        sections.push(Section {
            id: "1".to_string(),
            text: format!("{}\n", render_table1(&report)),
        });
    }
    type TableFn = fn(&SweepEngine, usize) -> tables::TransitionTable;
    let transition_tables: [(u32, TableFn, &str); 6] = [
        (
            2,
            tables::table2_with,
            "Table 2: Existing Encoding Schemes, Instruction Address Streams",
        ),
        (
            3,
            tables::table3_with,
            "Table 3: Existing Encoding Schemes, Data Address Streams",
        ),
        (
            4,
            tables::table4_with,
            "Table 4: Existing Encoding Schemes, Multiplexed Address Streams",
        ),
        (
            5,
            tables::table5_with,
            "Table 5: Mixed Encoding Schemes, Instruction Address Streams",
        ),
        (
            6,
            tables::table6_with,
            "Table 6: Mixed Encoding Schemes, Data Address Streams",
        ),
        (
            7,
            tables::table7_with,
            "Table 7: Mixed Encoding Schemes, Multiplexed Address Streams",
        ),
    ];
    for (n, build, title) in transition_tables {
        if want(n) {
            let table = build(engine, opts.len);
            sections.push(Section {
                id: n.to_string(),
                text: format!("{}\n", render_transition_table(title, &table)),
            });
            write_csv(&format!("table{n}.csv"), csv_transition_table(&table))?;
        }
    }
    if want(8) {
        let table = tables::table8(power_len).map_err(|e| format!("table 8 failed: {e}"))?;
        sections.push(Section {
            id: "8".to_string(),
            text: format!(
                "{}\n",
                render_power_table(
                    "Table 8: Enc/Dec Power Consumption for On-Chip Loads",
                    &table,
                    false
                )
            ),
        });
        write_csv("table8.csv", csv_power_table(&table))?;
    }
    if want(9) {
        let table = tables::table9(power_len).map_err(|e| format!("table 9 failed: {e}"))?;
        sections.push(Section {
            id: "9".to_string(),
            text: format!(
                "{}\n",
                render_power_table(
                    "Table 9: Enc/Dec Power Consumption for Off-Chip Loads",
                    &table,
                    true
                )
            ),
        });
        write_csv("table9.csv", csv_power_table(&table))?;
    }
    if want(10) {
        let rows = tables::hardening_table(power_len)
            .map_err(|e| format!("hardening table failed: {e}"))?;
        sections.push(Section {
            id: "10".to_string(),
            text: format!(
                "{}\n",
                render_hardening_table(
                    "Hardening Cost: Bus Power of Stateful Codes Bare vs Hardened (50 pF)",
                    &rows
                )
            ),
        });
        write_csv("hardening.csv", csv_hardening_table(&rows))?;
    }
    if opts.ablations {
        sections.push(Section {
            id: "ablations".to_string(),
            text: build_ablations(opts.len)?,
        });
    }
    Ok(sections)
}

fn build_ablations(len: usize) -> Result<String, String> {
    let mut out = String::new();
    let fail = |e: buscode_logic::LogicError| format!("synthesis report failed: {e}");
    out.push_str("Codec synthesis report (32-bit encoders)\n");
    let _ = writeln!(
        out,
        "{:>12} {:>7} {:>6} {:>7} {:>10} {:>10}",
        "codec", "gates", "dffs", "depth", "optimized", "nand2"
    );
    for row in tables::codec_synthesis_report().map_err(fail)? {
        let _ = writeln!(
            out,
            "{:>12} {:>7} {:>6} {:>7} {:>10} {:>10}",
            row.codec, row.gates, row.dffs, row.depth, row.optimized_gates, row.nand2_area
        );
    }
    out.push_str("\nDecoder synthesis report (32-bit decoders)\n");
    let _ = writeln!(
        out,
        "{:>12} {:>7} {:>6} {:>7} {:>10} {:>10}",
        "codec", "gates", "dffs", "depth", "optimized", "nand2"
    );
    for row in tables::decoder_synthesis_report().map_err(fail)? {
        let _ = writeln!(
            out,
            "{:>12} {:>7} {:>6} {:>7} {:>10} {:>10}",
            row.codec, row.gates, row.dffs, row.depth, row.optimized_gates, row.nand2_area
        );
    }
    out.push_str("\nAblation: T0 savings vs configured stride (machine stride = 4)\n");
    for (stride, savings) in tables::ablation_stride(len.min(100_000)) {
        let _ = writeln!(out, "  stride {stride}: {savings:.2}%");
    }
    out.push_str("\nAblation: analytical transitions/clock vs bus width (random stream)\n");
    for (bits, binary, bus_invert) in tables::ablation_width() {
        let _ = writeln!(
            out,
            "  N={bits}: binary {binary:.3}, bus-invert {bus_invert:.3}"
        );
    }
    out.push_str("\nAblation: partitioned bus-invert on data streams\n");
    for (partitions, savings) in tables::ablation_partitioned_bus_invert(len.min(50_000)) {
        let _ = writeln!(
            out,
            "  {partitions} partition(s): {savings:.2}% savings vs binary"
        );
    }
    out.push_str("\nDesign-space sweep: savings vs in-sequence fraction (data-style streams)\n");
    let sweep = tables::sequentiality_sweep(len.min(60_000));
    let _ = write!(out, "{:>8}", "in-seq");
    for (code, _) in &sweep[0].savings {
        let _ = write!(out, " {code:>11}");
    }
    out.push('\n');
    for point in &sweep {
        let _ = write!(out, "{:>7.0}%", 100.0 * point.in_seq);
        for (_, savings) in &point.savings {
            let _ = write!(out, " {savings:>10.2}%");
        }
        out.push('\n');
    }
    out.push_str("\nAblation: extension codes, average savings vs binary\n");
    for (kind, table) in tables::ablation_extensions(len.min(50_000)) {
        let _ = write!(out, "  {kind}:");
        for (code, savings) in table.codes.iter().zip(&table.avg_savings_percent) {
            let _ = write!(out, " {}={savings:.2}%", code.name());
        }
        out.push('\n');
    }
    Ok(out)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonArgs::extract(&mut args) {
        Ok(common) => common,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    if common.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_tool_args(&args) {
        Ok(opts) => opts,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    let run = ToolRun::new(TOOL, env!("CARGO_PKG_VERSION"), common);
    let engine = common.engine();

    let sections = match build_sections(&opts, &engine) {
        Ok(sections) => sections,
        Err(msg) => return run.finish(&Outcome::error(msg)),
    };

    let report = TablesReport { sections };
    let data = JsonPayload::new()
        .u64("jobs", engine.jobs() as u64)
        .raw("tables", &Report::render_json(&report))
        .finish();
    let outcome = Outcome::success(report.render_text(), data);
    run.finish(&outcome.with_metrics(report.metrics()))
}
