//! Metrics and tracing core for the buscode workspace.
//!
//! Every runtime layer (pipeline supervisor, link ARQ, fault campaigns,
//! the packed transition kernels) records observations through the same
//! small vocabulary:
//!
//! - [`MetricSet`] — an ordered, mergeable snapshot of named metrics:
//!   counters, gauges, log₂-bucketed histograms, and span tallies. This
//!   is the *one* reporting surface: tool stat structs collapse onto it
//!   and every CLI's `--metrics {text,json,csv}` output renders it under
//!   the versioned [`SCHEMA`].
//! - [`Registry`] — a sealed, lock-free recorder for hot paths. Metric
//!   names are declared up front through [`RegistryBuilder`]; recording
//!   afterwards is a relaxed atomic add behind a typed id, safe to share
//!   across sweep worker threads without locks. A registry built with
//!   [`RegistryBuilder::build_noop`] short-circuits every record call on
//!   one predictable branch, so instrumentation left in place costs
//!   nearly nothing when telemetry is off.
//!
//! Determinism is a schema-level guarantee: merged snapshots depend only
//! on *what* was recorded, never on thread interleaving or wall time.
//! Counters, histogram buckets, and span *counts* merge commutatively;
//! gauges merge by maximum; span wall-clock totals are carried for local
//! display but excluded from every rendered snapshot. Sharded runs that
//! merge per-shard sets therefore render byte-identically to serial
//! runs.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod metric;
mod registry;

pub use metric::{
    format_duration_nanos, HistogramSnapshot, MetricSet, MetricValue, SpanSnapshot, BUCKETS, SCHEMA,
};
pub use registry::{CounterId, GaugeId, HistogramId, Registry, RegistryBuilder, SpanGuard, SpanId};
