//! Metric values, the mergeable [`MetricSet`] snapshot, and the three
//! renderers behind every CLI's `--metrics` flag.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The versioned identifier stamped on every rendered snapshot.
///
/// Bump the trailing number whenever the rendered shape changes; CI
/// validates CLI output against checked-in snapshots of this schema.
pub const SCHEMA: &str = "buscode-metrics/1";

/// Number of log₂ histogram buckets: bucket `0` holds zeros, bucket `i`
/// holds values in `[2^(i-1), 2^i)`, up to `i = 64` for the top of the
/// `u64` range.
pub const BUCKETS: usize = 65;

/// Aggregated state of one log₂-bucketed histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Per-bucket observation counts; see [`BUCKETS`].
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// The log₂ bucket a value falls into.
#[must_use]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl HistogramSnapshot {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Folds another histogram into this one (commutative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Mean observed value, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nonzero buckets as `(index, count)` pairs, ascending.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// Aggregated state of one span timer.
///
/// Only `count` enters rendered snapshots: wall time varies run to run,
/// and the snapshot must stay byte-identical across worker counts. The
/// nanosecond total is still carried for local display and the
/// `engine_bench` overhead gate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time across spans, in nanoseconds (saturating).
    /// Excluded from every rendered snapshot.
    pub total_ns: u64,
}

impl SpanSnapshot {
    /// Folds another span tally into this one.
    pub fn merge(&mut self, other: &SpanSnapshot) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }
}

/// One named metric's aggregated value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic event count; merges by addition.
    Counter(u64),
    /// Last-observed level; merges by maximum so sharded merges stay
    /// order-independent.
    Gauge(u64),
    /// Log₂-bucketed value distribution; merges bucket-wise. Boxed to
    /// keep the enum small — the bucket array dwarfs every other kind.
    Histogram(Box<HistogramSnapshot>),
    /// Span-timer tally; only the count is rendered.
    Span(SpanSnapshot),
}

impl MetricValue {
    /// The kind label used by every renderer.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
            MetricValue::Span(_) => "span",
        }
    }

    /// Folds `other` into `self`. Kind mismatches keep `self` — they
    /// indicate a naming collision, not data to combine.
    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a = a.saturating_add(*b),
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            (MetricValue::Span(a), MetricValue::Span(b)) => a.merge(b),
            _ => {}
        }
    }
}

/// An ordered snapshot of named metrics — the unified unit of reporting.
///
/// Names sort lexicographically (a `BTreeMap` underneath), so rendering
/// order never depends on recording order, and [`MetricSet::merge`] is
/// commutative for counters, histograms, and span counts. Dotted names
/// namespace by subsystem: `pipeline.retries`, `link.naks`,
/// `fault.campaign_cells`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricSet {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of named metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Adds `n` to the counter `name`, creating it at zero first.
    pub fn add_counter(&mut self, name: &str, n: u64) {
        if let MetricValue::Counter(v) = self
            .entries
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            *v = v.saturating_add(n);
        }
    }

    /// Sets the gauge `name` to `value` (overwriting).
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.entries
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let MetricValue::Histogram(h) = self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Box::default()))
        {
            h.observe(value);
        }
    }

    /// Records one completed span of `ns` nanoseconds under `name`.
    pub fn record_span(&mut self, name: &str, ns: u64) {
        if let MetricValue::Span(s) = self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Span(SpanSnapshot::default()))
        {
            s.count += 1;
            s.total_ns = s.total_ns.saturating_add(ns);
        }
    }

    /// Inserts a fully-formed value under `name`, replacing any prior
    /// entry.
    pub fn insert(&mut self, name: &str, value: MetricValue) {
        self.entries.insert(name.to_string(), value);
    }

    /// Looks up a metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// The value of counter `name`, or zero when absent or another kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Iterates `(name, value)` in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into this set. Deterministic for any merge order:
    /// counters/histograms/span-counts add, gauges take the maximum.
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, value) in &other.entries {
            match self.entries.get_mut(name) {
                Some(mine) => mine.merge(value),
                None => {
                    self.entries.insert(name.clone(), value.clone());
                }
            }
        }
    }

    /// Human-readable rendering, one metric per line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!("metrics ({SCHEMA})\n");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "  counter   {name} = {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "  gauge     {name} = {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(out, "  histogram {name} count={} sum={}", h.count, h.sum);
                    let nonzero = h.nonzero_buckets();
                    if !nonzero.is_empty() {
                        out.push_str(" buckets=");
                        for (i, (bucket, count)) in nonzero.iter().enumerate() {
                            if i > 0 {
                                out.push(' ');
                            }
                            let _ = write!(out, "{bucket}:{count}");
                        }
                    }
                    out.push('\n');
                }
                MetricValue::Span(s) => {
                    let _ = writeln!(out, "  span      {name} count={}", s.count);
                }
            }
        }
        out
    }

    /// JSON rendering of the versioned snapshot.
    ///
    /// Shape: `{"schema":"buscode-metrics/1","metrics":{NAME:ENTRY,..}}`
    /// where an entry is `{"kind":"counter","value":N}`,
    /// `{"kind":"gauge","value":N}`,
    /// `{"kind":"histogram","count":N,"sum":N,"buckets":[[I,N],..]}`, or
    /// `{"kind":"span","count":N}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = format!("{{\"schema\":\"{SCHEMA}\",\"metrics\":{{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape(name));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{{\"kind\":\"counter\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{{\"kind\":\"gauge\",\"value\":{v}}}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count, h.sum
                    );
                    for (j, (bucket, count)) in h.nonzero_buckets().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{bucket},{count}]");
                    }
                    out.push_str("]}");
                }
                MetricValue::Span(s) => {
                    let _ = write!(out, "{{\"kind\":\"span\",\"count\":{}}}", s.count);
                }
            }
        }
        out.push_str("}}");
        out
    }

    /// CSV rendering: a schema line, a header, then one
    /// `name,kind,value` row per metric. Histogram values pack
    /// `count=..;sum=..;I:N;..` into the value column so the row count
    /// stays one per metric.
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = format!("schema,{SCHEMA}\nname,kind,value\n");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name},counter,{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name},gauge,{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(out, "{name},histogram,count={};sum={}", h.count, h.sum);
                    for (bucket, count) in h.nonzero_buckets() {
                        let _ = write!(out, ";{bucket}:{count}");
                    }
                    out.push('\n');
                }
                MetricValue::Span(s) => {
                    let _ = writeln!(out, "{name},span,{}", s.count);
                }
            }
        }
        out
    }
}

/// Escapes a metric name for a JSON string literal. Names are plain
/// dotted identifiers in practice; this keeps pathological input safe.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = MetricSet::new();
        a.add_counter("x", 2);
        a.add_counter("x", 3);
        let mut b = MetricSet::new();
        b.add_counter("x", 5);
        b.add_counter("y", 1);
        a.merge(&b);
        assert_eq!(a.counter("x"), 10);
        assert_eq!(a.counter("y"), 1);
    }

    #[test]
    fn merge_is_commutative_for_every_kind() {
        let build = |values: &[u64]| {
            let mut m = MetricSet::new();
            for &v in values {
                m.add_counter("c", v);
                m.set_gauge("g", v);
                m.observe("h", v);
                m.record_span("s", v);
            }
            m
        };
        let a = build(&[1, 7, 300]);
        let b = build(&[2, 9]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Gauges keep the max under merge, so both orders agree.
        assert_eq!(ab.render_json(), ba.render_json());
        assert_eq!(ab.render_csv(), ba.render_csv());
    }

    #[test]
    fn span_wall_time_stays_out_of_renders() {
        let mut a = MetricSet::new();
        a.record_span("s", 1_000);
        let mut b = MetricSet::new();
        b.record_span("s", 999_999);
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_csv(), b.render_csv());
        match a.get("s") {
            Some(MetricValue::Span(s)) => assert_eq!(s.total_ns, 1_000),
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn renders_have_the_documented_shape() {
        let mut m = MetricSet::new();
        m.add_counter("a.count", 3);
        m.set_gauge("a.level", 2);
        m.observe("a.dist", 5);
        let json = m.render_json();
        assert!(json.starts_with("{\"schema\":\"buscode-metrics/1\",\"metrics\":{"));
        assert!(json.contains("\"a.count\":{\"kind\":\"counter\",\"value\":3}"));
        assert!(json.contains(
            "\"a.dist\":{\"kind\":\"histogram\",\"count\":1,\"sum\":5,\"buckets\":[[3,1]]}"
        ));
        let csv = m.render_csv();
        assert!(csv.starts_with("schema,buscode-metrics/1\nname,kind,value\n"));
        assert!(csv.contains("a.count,counter,3\n"));
        assert!(csv.contains("a.dist,histogram,count=1;sum=5;3:1\n"));
        assert!(m.render_text().contains("counter   a.count = 3"));
    }

    #[test]
    fn kind_collisions_keep_the_existing_value() {
        let mut m = MetricSet::new();
        m.add_counter("x", 4);
        // A gauge write under a counter name is ignored by add paths...
        m.observe("x", 9);
        assert_eq!(m.counter("x"), 4);
        // ...and merge keeps the left side on mismatch.
        let mut other = MetricSet::new();
        other.set_gauge("x", 99);
        m.merge(&other);
        assert_eq!(m.counter("x"), 4);
    }
}
