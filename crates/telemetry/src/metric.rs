//! Metric values, the mergeable [`MetricSet`] snapshot, and the three
//! renderers behind every CLI's `--metrics` flag.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The versioned identifier stamped on every rendered snapshot.
///
/// Bump the trailing number whenever the rendered shape changes; CI
/// validates CLI output against checked-in snapshots of this schema.
pub const SCHEMA: &str = "buscode-metrics/1";

/// Number of log₂ histogram buckets: bucket `0` holds zeros, bucket `i`
/// holds values in `[2^(i-1), 2^i)`, up to `i = 64` for the top of the
/// `u64` range.
pub const BUCKETS: usize = 65;

/// Aggregated state of one log₂-bucketed histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Per-bucket observation counts; see [`BUCKETS`].
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// The log₂ bucket a value falls into.
#[must_use]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl HistogramSnapshot {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Folds another histogram into this one (commutative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Mean observed value, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nonzero buckets as `(index, count)` pairs, ascending.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// An upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the
    /// inclusive upper edge of the log₂ bucket the quantile rank falls
    /// into. Zero when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Renders the nonzero buckets as human-readable duration ranges —
    /// `[lo, hi) count` lines with nanosecond-based unit labels. Intended
    /// for latency report bodies; counts only, no wall-time totals.
    #[must_use]
    pub fn render_duration_buckets(&self) -> String {
        let mut out = String::new();
        for (i, count) in self.nonzero_buckets() {
            let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
            let _ = writeln!(
                out,
                "    [{}, {}) {count}",
                format_duration_nanos(lo),
                format_duration_nanos(bucket_upper_bound(i).saturating_add(1)),
            );
        }
        out
    }
}

/// The inclusive upper edge of log₂ bucket `i`.
fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Formats a nanosecond value with a unit label (`ns`, `us`, `ms`, `s`),
/// one decimal above nanoseconds.
#[must_use]
pub fn format_duration_nanos(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}s", ns as f64 / 1e9)
    }
}

/// Aggregated state of one span timer.
///
/// Only `count` enters rendered snapshots: wall time varies run to run,
/// and the snapshot must stay byte-identical across worker counts. The
/// nanosecond total is still carried for local display and the
/// `engine_bench` overhead gate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time across spans, in nanoseconds (saturating).
    /// Excluded from every rendered snapshot.
    pub total_ns: u64,
}

impl SpanSnapshot {
    /// Folds another span tally into this one.
    pub fn merge(&mut self, other: &SpanSnapshot) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }
}

/// One named metric's aggregated value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic event count; merges by addition.
    Counter(u64),
    /// Last-observed level; merges by maximum so sharded merges stay
    /// order-independent.
    Gauge(u64),
    /// Log₂-bucketed value distribution; merges bucket-wise. Boxed to
    /// keep the enum small — the bucket array dwarfs every other kind.
    Histogram(Box<HistogramSnapshot>),
    /// Span-timer tally; only the count is rendered.
    Span(SpanSnapshot),
    /// Log₂-bucketed duration distribution in nanoseconds. Like spans,
    /// only the observation count enters rendered snapshots (wall time
    /// varies run to run); the buckets stay available in-process for
    /// quantile estimates and unit-labeled local display.
    Duration(Box<HistogramSnapshot>),
}

impl MetricValue {
    /// The kind label used by every renderer.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
            MetricValue::Span(_) => "span",
            MetricValue::Duration(_) => "duration",
        }
    }

    /// Folds `other` into `self`. Kind mismatches keep `self` — they
    /// indicate a naming collision, not data to combine.
    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a = a.saturating_add(*b),
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            (MetricValue::Span(a), MetricValue::Span(b)) => a.merge(b),
            (MetricValue::Duration(a), MetricValue::Duration(b)) => a.merge(b),
            _ => {}
        }
    }
}

/// An ordered snapshot of named metrics — the unified unit of reporting.
///
/// Names sort lexicographically (a `BTreeMap` underneath), so rendering
/// order never depends on recording order, and [`MetricSet::merge`] is
/// commutative for counters, histograms, and span counts. Dotted names
/// namespace by subsystem: `pipeline.retries`, `link.naks`,
/// `fault.campaign_cells`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricSet {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of named metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Adds `n` to the counter `name`, creating it at zero first.
    pub fn add_counter(&mut self, name: &str, n: u64) {
        if let MetricValue::Counter(v) = self
            .entries
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            *v = v.saturating_add(n);
        }
    }

    /// Sets the gauge `name` to `value` (overwriting).
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.entries
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let MetricValue::Histogram(h) = self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Box::default()))
        {
            h.observe(value);
        }
    }

    /// Records one duration observation of `ns` nanoseconds into the
    /// duration histogram `name`. Renders carry only the observation
    /// count (plus the `ns` unit label) so snapshots stay byte-identical
    /// across runs; quantiles come from [`MetricSet::duration`].
    pub fn record_duration_nanos(&mut self, name: &str, ns: u64) {
        if let MetricValue::Duration(h) = self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Duration(Box::default()))
        {
            h.observe(ns);
        }
    }

    /// Folds a whole pre-built histogram into the duration metric
    /// `name` — how a report carries an already-aggregated latency
    /// distribution onto the snapshot in one call.
    pub fn add_duration(&mut self, name: &str, snapshot: &HistogramSnapshot) {
        if let MetricValue::Duration(h) = self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Duration(Box::default()))
        {
            h.merge(snapshot);
        }
    }

    /// The duration histogram `name`, when present.
    #[must_use]
    pub fn duration(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(name) {
            Some(MetricValue::Duration(h)) => Some(h),
            _ => None,
        }
    }

    /// Records one completed span of `ns` nanoseconds under `name`.
    pub fn record_span(&mut self, name: &str, ns: u64) {
        if let MetricValue::Span(s) = self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Span(SpanSnapshot::default()))
        {
            s.count += 1;
            s.total_ns = s.total_ns.saturating_add(ns);
        }
    }

    /// Inserts a fully-formed value under `name`, replacing any prior
    /// entry.
    pub fn insert(&mut self, name: &str, value: MetricValue) {
        self.entries.insert(name.to_string(), value);
    }

    /// Looks up a metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// The value of counter `name`, or zero when absent or another kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Iterates `(name, value)` in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into this set. Deterministic for any merge order:
    /// counters/histograms/span-counts add, gauges take the maximum.
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, value) in &other.entries {
            match self.entries.get_mut(name) {
                Some(mine) => mine.merge(value),
                None => {
                    self.entries.insert(name.clone(), value.clone());
                }
            }
        }
    }

    /// Human-readable rendering, one metric per line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!("metrics ({SCHEMA})\n");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "  counter   {name} = {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "  gauge     {name} = {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(out, "  histogram {name} count={} sum={}", h.count, h.sum);
                    let nonzero = h.nonzero_buckets();
                    if !nonzero.is_empty() {
                        out.push_str(" buckets=");
                        for (i, (bucket, count)) in nonzero.iter().enumerate() {
                            if i > 0 {
                                out.push(' ');
                            }
                            let _ = write!(out, "{bucket}:{count}");
                        }
                    }
                    out.push('\n');
                }
                MetricValue::Span(s) => {
                    let _ = writeln!(out, "  span      {name} count={}", s.count);
                }
                MetricValue::Duration(h) => {
                    let _ = writeln!(out, "  duration  {name} count={} unit=ns", h.count);
                }
            }
        }
        out
    }

    /// JSON rendering of the versioned snapshot.
    ///
    /// Shape: `{"schema":"buscode-metrics/1","metrics":{NAME:ENTRY,..}}`
    /// where an entry is `{"kind":"counter","value":N}`,
    /// `{"kind":"gauge","value":N}`,
    /// `{"kind":"histogram","count":N,"sum":N,"buckets":[[I,N],..]}`, or
    /// `{"kind":"span","count":N}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = format!("{{\"schema\":\"{SCHEMA}\",\"metrics\":{{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape(name));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{{\"kind\":\"counter\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{{\"kind\":\"gauge\",\"value\":{v}}}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count, h.sum
                    );
                    for (j, (bucket, count)) in h.nonzero_buckets().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{bucket},{count}]");
                    }
                    out.push_str("]}");
                }
                MetricValue::Span(s) => {
                    let _ = write!(out, "{{\"kind\":\"span\",\"count\":{}}}", s.count);
                }
                MetricValue::Duration(h) => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"duration\",\"count\":{},\"unit\":\"ns\"}}",
                        h.count
                    );
                }
            }
        }
        out.push_str("}}");
        out
    }

    /// CSV rendering: a schema line, a header, then one
    /// `name,kind,value` row per metric. Histogram values pack
    /// `count=..;sum=..;I:N;..` into the value column so the row count
    /// stays one per metric.
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = format!("schema,{SCHEMA}\nname,kind,value\n");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name},counter,{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name},gauge,{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(out, "{name},histogram,count={};sum={}", h.count, h.sum);
                    for (bucket, count) in h.nonzero_buckets() {
                        let _ = write!(out, ";{bucket}:{count}");
                    }
                    out.push('\n');
                }
                MetricValue::Span(s) => {
                    let _ = writeln!(out, "{name},span,{}", s.count);
                }
                MetricValue::Duration(h) => {
                    let _ = writeln!(out, "{name},duration,count={};unit=ns", h.count);
                }
            }
        }
        out
    }
}

/// Escapes a metric name for a JSON string literal. Names are plain
/// dotted identifiers in practice; this keeps pathological input safe.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = MetricSet::new();
        a.add_counter("x", 2);
        a.add_counter("x", 3);
        let mut b = MetricSet::new();
        b.add_counter("x", 5);
        b.add_counter("y", 1);
        a.merge(&b);
        assert_eq!(a.counter("x"), 10);
        assert_eq!(a.counter("y"), 1);
    }

    #[test]
    fn merge_is_commutative_for_every_kind() {
        let build = |values: &[u64]| {
            let mut m = MetricSet::new();
            for &v in values {
                m.add_counter("c", v);
                m.set_gauge("g", v);
                m.observe("h", v);
                m.record_span("s", v);
            }
            m
        };
        let a = build(&[1, 7, 300]);
        let b = build(&[2, 9]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Gauges keep the max under merge, so both orders agree.
        assert_eq!(ab.render_json(), ba.render_json());
        assert_eq!(ab.render_csv(), ba.render_csv());
    }

    #[test]
    fn span_wall_time_stays_out_of_renders() {
        let mut a = MetricSet::new();
        a.record_span("s", 1_000);
        let mut b = MetricSet::new();
        b.record_span("s", 999_999);
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_csv(), b.render_csv());
        match a.get("s") {
            Some(MetricValue::Span(s)) => assert_eq!(s.total_ns, 1_000),
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn duration_renders_count_only_with_unit_label() {
        let mut a = MetricSet::new();
        a.record_duration_nanos("lat", 1_500);
        let mut b = MetricSet::new();
        b.record_duration_nanos("lat", 2_000_000);
        // Same count, wildly different wall time: renders must agree.
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_csv(), b.render_csv());
        assert!(a
            .render_json()
            .contains("\"lat\":{\"kind\":\"duration\",\"count\":1,\"unit\":\"ns\"}"));
        assert!(a.render_text().contains("duration  lat count=1 unit=ns"));
        assert!(a.render_csv().contains("lat,duration,count=1;unit=ns\n"));
        // The buckets stay observable in-process.
        let h = a.duration("lat").expect("duration histogram");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 1_500);
    }

    #[test]
    fn duration_merge_is_bucket_wise() {
        let mut a = MetricSet::new();
        a.record_duration_nanos("lat", 10);
        let mut b = MetricSet::new();
        b.record_duration_nanos("lat", 1_000_000);
        b.record_duration_nanos("lat", 1_000_001);
        a.merge(&b);
        let h = a.duration("lat").expect("duration histogram");
        assert_eq!(h.count, 3);
        assert_eq!(h.nonzero_buckets().len(), 2);
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let mut h = HistogramSnapshot::default();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 4, 700, 900] {
            h.observe(v);
        }
        // count=6: p50 rank 3 lands in bucket 2 ([2,4)), upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 rank 6 lands in bucket 10 ([512,1024)), upper bound 1023.
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(0.0), 1);
        let mut top = HistogramSnapshot::default();
        top.observe(u64::MAX);
        assert_eq!(top.quantile(1.0), u64::MAX);
    }

    #[test]
    fn duration_labels_scale_with_magnitude() {
        assert_eq!(format_duration_nanos(0), "0ns");
        assert_eq!(format_duration_nanos(999), "999ns");
        assert_eq!(format_duration_nanos(1_500), "1.5us");
        assert_eq!(format_duration_nanos(2_000_000), "2.0ms");
        assert_eq!(format_duration_nanos(3_500_000_000), "3.5s");
        let mut h = HistogramSnapshot::default();
        h.observe(1_500);
        let rendered = h.render_duration_buckets();
        assert!(rendered.contains("[1.0us, 2.0us) 1"), "{rendered}");
    }

    #[test]
    fn renders_have_the_documented_shape() {
        let mut m = MetricSet::new();
        m.add_counter("a.count", 3);
        m.set_gauge("a.level", 2);
        m.observe("a.dist", 5);
        let json = m.render_json();
        assert!(json.starts_with("{\"schema\":\"buscode-metrics/1\",\"metrics\":{"));
        assert!(json.contains("\"a.count\":{\"kind\":\"counter\",\"value\":3}"));
        assert!(json.contains(
            "\"a.dist\":{\"kind\":\"histogram\",\"count\":1,\"sum\":5,\"buckets\":[[3,1]]}"
        ));
        let csv = m.render_csv();
        assert!(csv.starts_with("schema,buscode-metrics/1\nname,kind,value\n"));
        assert!(csv.contains("a.count,counter,3\n"));
        assert!(csv.contains("a.dist,histogram,count=1;sum=5;3:1\n"));
        assert!(m.render_text().contains("counter   a.count = 3"));
    }

    #[test]
    fn kind_collisions_keep_the_existing_value() {
        let mut m = MetricSet::new();
        m.add_counter("x", 4);
        // A gauge write under a counter name is ignored by add paths...
        m.observe("x", 9);
        assert_eq!(m.counter("x"), 4);
        // ...and merge keeps the left side on mismatch.
        let mut other = MetricSet::new();
        other.set_gauge("x", 99);
        m.merge(&other);
        assert_eq!(m.counter("x"), 4);
    }
}
