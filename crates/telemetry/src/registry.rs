//! The sealed, lock-free recorder hot paths write through.
//!
//! Metric names are declared once through [`RegistryBuilder`], which
//! hands back copyable typed ids. [`RegistryBuilder::build`] seals the
//! name table; from then on every record call is an index into a fixed
//! slot vector and a relaxed atomic add — no locks, no allocation, safe
//! to share by reference across sweep worker threads. A registry built
//! with [`RegistryBuilder::build_noop`] keeps the same ids but
//! short-circuits every record call on its `enabled` flag, so
//! instrumentation stays in place at near-zero cost when telemetry is
//! off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::metric::BUCKETS;
use crate::metric::{bucket_index, HistogramSnapshot, MetricSet, MetricValue, SpanSnapshot};

/// Handle to a declared counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a declared gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a declared histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Handle to a declared span timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize);

struct Cell {
    name: String,
    value: AtomicU64,
}

impl Cell {
    fn new(name: &str) -> Self {
        Cell {
            name: name.to_string(),
            value: AtomicU64::new(0),
        }
    }
}

struct HistCell {
    name: String,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

struct SpanCell {
    name: String,
    count: AtomicU64,
    total_ns: AtomicU64,
}

/// Declares the metric names a [`Registry`] will record.
#[derive(Default)]
pub struct RegistryBuilder {
    counters: Vec<String>,
    gauges: Vec<String>,
    histograms: Vec<String>,
    spans: Vec<String>,
}

impl RegistryBuilder {
    /// An empty builder; [`Registry::builder`] is the usual entry point.
    #[must_use]
    pub fn new() -> Self {
        RegistryBuilder::default()
    }

    /// Declares a counter and returns its id.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counters.push(name.to_string());
        CounterId(self.counters.len() - 1)
    }

    /// Declares a gauge and returns its id.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauges.push(name.to_string());
        GaugeId(self.gauges.len() - 1)
    }

    /// Declares a histogram and returns its id.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        self.histograms.push(name.to_string());
        HistogramId(self.histograms.len() - 1)
    }

    /// Declares a span timer and returns its id.
    pub fn span(&mut self, name: &str) -> SpanId {
        self.spans.push(name.to_string());
        SpanId(self.spans.len() - 1)
    }

    /// Seals the declarations into an active registry.
    #[must_use]
    pub fn build(self) -> Registry {
        self.finish(true)
    }

    /// Seals the declarations into a no-op registry: identical ids and
    /// snapshot shape, but every record call returns after one branch.
    #[must_use]
    pub fn build_noop(self) -> Registry {
        self.finish(false)
    }

    fn finish(self, enabled: bool) -> Registry {
        Registry {
            enabled,
            counters: self.counters.iter().map(|n| Cell::new(n)).collect(),
            gauges: self.gauges.iter().map(|n| Cell::new(n)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|n| HistCell {
                    name: n.clone(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|n| SpanCell {
                    name: n.clone(),
                    count: AtomicU64::new(0),
                    total_ns: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

/// A sealed set of atomic metric slots shared across worker threads.
pub struct Registry {
    enabled: bool,
    counters: Vec<Cell>,
    gauges: Vec<Cell>,
    histograms: Vec<HistCell>,
    spans: Vec<SpanCell>,
}

impl Registry {
    /// Starts declaring a new registry.
    #[must_use]
    pub fn builder() -> RegistryBuilder {
        RegistryBuilder::new()
    }

    /// True when record calls actually write.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0].value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises a gauge to at least `value` (gauges merge by maximum, so
    /// the recording side is monotone too).
    #[inline]
    pub fn set_max(&self, id: GaugeId, value: u64) {
        if self.enabled {
            self.gauges[id.0].value.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&self, id: HistogramId, value: u64) {
        if self.enabled {
            let cell = &self.histograms[id.0];
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(value, Ordering::Relaxed);
            cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one completed span of `ns` nanoseconds directly.
    #[inline]
    pub fn record_span_ns(&self, id: SpanId, ns: u64) {
        if self.enabled {
            let cell = &self.spans[id.0];
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.total_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Starts a span; the returned guard records the count on every
    /// drop and elapsed wall time on a **1-in-8 sample** of them. Span
    /// nanoseconds are diagnostic (excluded from every rendering for
    /// determinism), so sampling the clock keeps the hot path down to
    /// one load and one add per span while `total_ns` still tracks
    /// where the time goes. On a no-op registry the guard does nothing.
    #[must_use]
    pub fn span(&self, id: SpanId) -> SpanGuard<'_> {
        let start = if self.enabled && self.spans[id.0].count.load(Ordering::Relaxed) & 7 == 0 {
            Some(Instant::now())
        } else {
            None
        };
        SpanGuard {
            registry: self,
            id,
            start,
        }
    }

    /// Reads every slot into an ordered, mergeable [`MetricSet`].
    ///
    /// Taken after workers are joined; relaxed loads are sufficient
    /// because the caller owns the happens-before edge (thread join).
    #[must_use]
    pub fn snapshot(&self) -> MetricSet {
        let mut set = MetricSet::new();
        for cell in &self.counters {
            set.insert(
                &cell.name,
                MetricValue::Counter(cell.value.load(Ordering::Relaxed)),
            );
        }
        for cell in &self.gauges {
            set.insert(
                &cell.name,
                MetricValue::Gauge(cell.value.load(Ordering::Relaxed)),
            );
        }
        for cell in &self.histograms {
            let mut h = HistogramSnapshot {
                count: cell.count.load(Ordering::Relaxed),
                sum: cell.sum.load(Ordering::Relaxed),
                ..HistogramSnapshot::default()
            };
            for (slot, bucket) in h.buckets.iter_mut().zip(cell.buckets.iter()) {
                *slot = bucket.load(Ordering::Relaxed);
            }
            set.insert(&cell.name, MetricValue::Histogram(Box::new(h)));
        }
        for cell in &self.spans {
            set.insert(
                &cell.name,
                MetricValue::Span(SpanSnapshot {
                    count: cell.count.load(Ordering::Relaxed),
                    total_ns: cell.total_ns.load(Ordering::Relaxed),
                }),
            );
        }
        set
    }
}

/// Live span: records one completion into its registry on drop.
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    id: SpanId,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.registry.enabled {
            return;
        }
        let cell = &self.registry.spans[self.id.0];
        cell.count.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            cell.total_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricValue;

    #[test]
    fn sealed_registry_records_and_snapshots() {
        let mut spec = Registry::builder();
        let hits = spec.counter("k.hits");
        let level = spec.gauge("k.level");
        let dist = spec.histogram("k.dist");
        let work = spec.span("k.work");
        let reg = spec.build();

        reg.add(hits, 3);
        reg.set_max(level, 7);
        reg.set_max(level, 2);
        reg.observe(dist, 5);
        reg.record_span_ns(work, 40);
        drop(reg.span(work));

        let snap = reg.snapshot();
        assert_eq!(snap.counter("k.hits"), 3);
        assert_eq!(snap.get("k.level"), Some(&MetricValue::Gauge(7)));
        match snap.get("k.work") {
            Some(MetricValue::Span(s)) => assert_eq!(s.count, 2),
            other => panic!("expected span, got {other:?}"),
        }
        match snap.get("k.dist") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 5);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn noop_registry_snapshot_is_all_zeros() {
        let mut spec = Registry::builder();
        let hits = spec.counter("k.hits");
        let work = spec.span("k.work");
        let reg = spec.build_noop();
        reg.add(hits, 99);
        drop(reg.span(work));
        let snap = reg.snapshot();
        assert!(!reg.enabled());
        assert_eq!(snap.counter("k.hits"), 0);
        assert_eq!(
            snap.get("k.work"),
            Some(&MetricValue::Span(SpanSnapshot::default()))
        );
    }

    #[test]
    fn shared_recording_across_threads_totals_up() {
        let mut spec = Registry::builder();
        let hits = spec.counter("k.hits");
        let reg = spec.build();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        reg.add(hits, 1);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("k.hits"), 4000);
    }
}
