//! `busload` — the closed/open-loop load generator for `busserved`.
//!
//! Replays seeded synthetic address traces (the paper's muxed
//! instruction/data model) over N concurrent sessions, verifies every
//! decoded word against the offered stream, and reports delivered-word
//! throughput, shed rate, and p50/p99/p999 round-trip latency from the
//! telemetry log₂ histograms. Closed-loop replays with a fixed `--seed`
//! produce byte-identical `--metrics json` snapshots run over run.

use std::process::ExitCode;

use buscode_core::{CodeKind, Tier};
use buscode_engine::cli::{
    gate_outcome, parse_u64, usage_error, CommonArgs, JsonPayload, Outcome, Report, ToolRun,
    COMMON_USAGE,
};
use buscode_serve::{
    connect_with_retry, memory_listener, run_load, shutdown_server, LoadConfig, LoadMode,
    LoadReport, Server, ServerConfig, Transport,
};

const TOOL: &str = "busload";

fn usage() -> String {
    format!(
        "usage: {TOOL} (--connect ADDR | --memory) [--sessions N] [--words N] [--batch N]\n\
         \x20              [--mode closed|open] [--rate N] [--code NAME|all] [--tier NAME|all]\n\
         \x20              [--retries N] [--shutdown] [--smoke] {COMMON_USAGE}\n\
         \n\
         --connect ADDR   drive a busserved instance over TCP\n\
         --memory         drive an in-process server over the memory transport\n\
         --sessions N     concurrent sessions (default 4)\n\
         --words N        words offered per session (default 1024)\n\
         --batch N        words per DATA batch (default 64)\n\
         --mode M         closed (default; ≤1 outstanding, retries sheds) or open\n\
         --rate N         open-loop batches/second per session (default 1000)\n\
         --code NAME      bus code for every session, or 'all' to cycle (default binary)\n\
         --tier NAME      protection tier, or 'all' to cycle (default bare)\n\
         --retries N      closed-loop retry budget per shed batch (default 32)\n\
         --shutdown       send the admin SHUTDOWN frame after the run\n\
         --smoke          gate delivery, integrity, and accounting invariants"
    )
}

struct Args {
    connect: Option<String>,
    memory: bool,
    shutdown: bool,
    smoke: bool,
    rate: u32,
    mode_open: bool,
    load: LoadConfig,
}

fn parse_codes(value: &str) -> Result<Vec<CodeKind>, String> {
    if value == "all" {
        return Ok(CodeKind::all().to_vec());
    }
    CodeKind::all()
        .into_iter()
        .find(|k| k.name() == value)
        .map(|k| vec![k])
        .ok_or_else(|| format!("unknown code '{value}'"))
}

fn parse_tiers(value: &str) -> Result<Vec<Tier>, String> {
    if value == "all" {
        return Ok(Tier::all().to_vec());
    }
    Tier::from_name(value)
        .map(|t| vec![t])
        .ok_or_else(|| format!("unknown tier '{value}'"))
}

fn parse_args(mut rest: Vec<String>, common: &CommonArgs) -> Result<Args, String> {
    let mut args = Args {
        connect: None,
        memory: false,
        shutdown: false,
        smoke: false,
        rate: 1000,
        mode_open: false,
        load: LoadConfig {
            seed: common.seed_or(42),
            ..LoadConfig::default()
        },
    };
    let mut it = rest.drain(..);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => args.connect = Some(it.next().ok_or("--connect needs an address")?),
            "--memory" => args.memory = true,
            "--shutdown" => args.shutdown = true,
            "--smoke" => args.smoke = true,
            "--sessions" => {
                let value = it.next().ok_or("--sessions needs a value")?;
                args.load.sessions = usize::try_from(parse_u64("--sessions", &value)?)
                    .map_err(|_| "--sessions out of range".to_string())?;
            }
            "--words" => {
                let value = it.next().ok_or("--words needs a value")?;
                args.load.words_per_session = usize::try_from(parse_u64("--words", &value)?)
                    .map_err(|_| "--words out of range".to_string())?;
            }
            "--batch" => {
                let value = it.next().ok_or("--batch needs a value")?;
                args.load.batch_words = usize::try_from(parse_u64("--batch", &value)?)
                    .map_err(|_| "--batch out of range".to_string())?;
            }
            "--mode" => match it.next().ok_or("--mode needs a value")?.as_str() {
                "closed" => args.mode_open = false,
                "open" => args.mode_open = true,
                other => return Err(format!("unknown mode '{other}' (expected closed|open)")),
            },
            "--rate" => {
                let value = it.next().ok_or("--rate needs a value")?;
                args.rate = u32::try_from(parse_u64("--rate", &value)?)
                    .map_err(|_| "--rate out of range".to_string())?;
            }
            "--code" => {
                let value = it.next().ok_or("--code needs a value")?;
                args.load.codes = parse_codes(&value)?;
            }
            "--tier" => {
                let value = it.next().ok_or("--tier needs a value")?;
                args.load.tiers = parse_tiers(&value)?;
            }
            "--retries" => {
                let value = it.next().ok_or("--retries needs a value")?;
                args.load.max_retries = u32::try_from(parse_u64("--retries", &value)?)
                    .map_err(|_| "--retries out of range".to_string())?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    args.load.mode = if args.mode_open {
        LoadMode::Open {
            rate_per_sec: args.rate,
        }
    } else {
        LoadMode::Closed
    };
    if args.connect.is_none() && !args.memory {
        return Err("one of --connect or --memory is required".to_string());
    }
    Ok(args)
}

fn smoke_gates(report: &LoadReport, closed_mode: bool) -> Vec<String> {
    let mut failures = Vec::new();
    if report.mismatched_words != 0 {
        failures.push(format!(
            "integrity gate: {} decoded words differ from the offered trace",
            report.mismatched_words
        ));
    }
    if report.failed_sessions != 0 {
        failures.push(format!(
            "session gate: {} sessions died mid-stream",
            report.failed_sessions
        ));
    }
    if report.rejected_sessions != 0 {
        failures.push(format!(
            "session gate: {} sessions rejected at HELLO",
            report.rejected_sessions
        ));
    }
    if report.requests != report.delivered_frames + report.shed_frames {
        failures.push(format!(
            "accounting gate: {} requests != {} delivered + {} shed",
            report.requests, report.delivered_frames, report.shed_frames
        ));
    }
    if closed_mode {
        if report.abandoned_frames != 0 {
            failures.push(format!(
                "delivery gate: {} batches abandoned after retry budget",
                report.abandoned_frames
            ));
        }
        if report.delivered_words != report.words_offered {
            failures.push(format!(
                "delivery gate: {} words offered but {} delivered",
                report.words_offered, report.delivered_words
            ));
        }
    }
    failures
}

fn run_campaign(args: &Args) -> Result<LoadReport, String> {
    if args.memory {
        let (listener, connector) = memory_listener();
        let server = Server::new(ServerConfig::default());
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run(Box::new(listener)));
        let report = run_load(&args.load, |_| {
            connector
                .connect()
                .map(|t| Box::new(t) as Box<dyn Transport>)
        });
        handle.shutdown();
        match run.join() {
            Ok(Ok(_)) => {}
            Ok(Err(err)) => return Err(format!("in-process server failed: {err}")),
            Err(_) => return Err("in-process server panicked".to_string()),
        }
        report.map_err(|err| format!("{err}"))
    } else {
        let addr = args.connect.as_deref().unwrap_or_default().to_string();
        let report = run_load(&args.load, |_| {
            connect_with_retry(&addr, 20).map(|t| Box::new(t) as Box<dyn Transport>)
        })
        .map_err(|err| format!("{err}"))?;
        if args.shutdown {
            let transport =
                connect_with_retry(&addr, 5).map_err(|err| format!("shutdown: {err}"))?;
            shutdown_server(Box::new(transport)).map_err(|err| format!("shutdown: {err}"))?;
        }
        Ok(report)
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonArgs::extract(&mut argv) {
        Ok(common) => common,
        Err(message) => return usage_error(TOOL, &usage(), &message),
    };
    if common.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(argv, &common) {
        Ok(args) => args,
        Err(message) => return usage_error(TOOL, &usage(), &message),
    };
    let run = ToolRun::new(TOOL, env!("CARGO_PKG_VERSION"), common);
    let outcome = match run_campaign(&args) {
        Ok(report) => {
            let metrics = report.metrics();
            let text = report.render_text();
            let payload = JsonPayload::new().report("load", &report);
            if args.smoke {
                let failures = smoke_gates(&report, args.load.mode == LoadMode::Closed);
                let failed = failures.len();
                gate_outcome(
                    text,
                    payload,
                    &failures,
                    "smoke passed: delivery, integrity, and accounting gates hold",
                    format!("{failed} smoke gate(s) failed"),
                )
                .with_metrics(metrics)
            } else {
                Outcome::success(text, payload.finish()).with_metrics(metrics)
            }
        }
        Err(message) => Outcome::error(message),
    };
    run.finish(&outcome)
}
