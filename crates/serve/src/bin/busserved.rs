//! `busserved` — the concurrent bus-encoding service.
//!
//! Listens on TCP (`--listen`), negotiates one pinned encoding pipeline
//! per session, streams DATA batches through it under a bounded worker
//! pool, sheds with typed RETRY-AFTER when queues fill, and drains
//! gracefully (flushing every in-flight session) on an admin SHUTDOWN
//! frame. `--self-test` runs the same stack over the in-memory
//! transport with a closed-loop load and gates the accounting
//! invariants — the CI smoke path.

use std::process::ExitCode;

use buscode_engine::cli::{
    gate_outcome, parse_u64, usage_error, CommonArgs, JsonPayload, Outcome, ToolRun, COMMON_USAGE,
};
use buscode_serve::{
    memory_listener, run_load, LoadConfig, Server, ServerConfig, TcpListenerAdapter,
};

const TOOL: &str = "busserved";

fn usage() -> String {
    format!(
        "usage: {TOOL} (--listen ADDR | --self-test) [--queue-depth N] \
         [--deadline-micros N] [--max-sessions N] [--retry-after-micros N] {COMMON_USAGE}\n\
         \n\
         --listen ADDR        serve TCP connections on ADDR (e.g. 127.0.0.1:7070)\n\
         --self-test          run server + closed-loop load in-process and gate accounting\n\
         --queue-depth N      per-session queue depth before shedding (default 4)\n\
         --deadline-micros N  expire batches older than N microseconds (default off)\n\
         --max-sessions N     concurrent session cap (default 256)\n\
         --retry-after-micros N  backoff hint in RETRY-AFTER replies (default 500)\n\
         --jobs N             worker threads (0 = auto, default 1)"
    )
}

struct Args {
    listen: Option<String>,
    self_test: bool,
    config: ServerConfig,
}

fn parse_args(mut rest: Vec<String>, common: &CommonArgs) -> Result<Args, String> {
    let mut args = Args {
        listen: None,
        self_test: false,
        config: ServerConfig::default(),
    };
    let mut it = rest.drain(..);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => {
                args.listen = Some(it.next().ok_or("--listen needs an address")?);
            }
            "--self-test" => args.self_test = true,
            "--queue-depth" => {
                let value = it.next().ok_or("--queue-depth needs a value")?;
                args.config.queue_depth = usize::try_from(parse_u64("--queue-depth", &value)?)
                    .map_err(|_| "--queue-depth out of range".to_string())?;
            }
            "--deadline-micros" => {
                let value = it.next().ok_or("--deadline-micros needs a value")?;
                args.config.deadline_micros = Some(parse_u64("--deadline-micros", &value)?);
            }
            "--max-sessions" => {
                let value = it.next().ok_or("--max-sessions needs a value")?;
                args.config.max_sessions = usize::try_from(parse_u64("--max-sessions", &value)?)
                    .map_err(|_| "--max-sessions out of range".to_string())?;
            }
            "--retry-after-micros" => {
                let value = it.next().ok_or("--retry-after-micros needs a value")?;
                args.config.retry_after_micros =
                    u32::try_from(parse_u64("--retry-after-micros", &value)?)
                        .map_err(|_| "--retry-after-micros out of range".to_string())?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    args.config.workers = match common.jobs {
        0 => std::thread::available_parallelism().map_or(2, |n| n.get()),
        n => n,
    };
    if args.listen.is_none() && !args.self_test {
        return Err("one of --listen or --self-test is required".to_string());
    }
    Ok(args)
}

fn serve_tcp(addr: &str, config: ServerConfig) -> Outcome {
    let listener = match TcpListenerAdapter::bind(addr) {
        Ok(listener) => listener,
        Err(err) => return Outcome::error(format!("{err}")),
    };
    let bound = listener
        .local_addr()
        .map_or_else(|_| addr.to_string(), |a| a.to_string());
    eprintln!("{TOOL}: listening on {bound}");
    let server = Server::new(config);
    match server.run(Box::new(listener)) {
        Ok(metrics) => {
            let text = format!(
                "drained: {} sessions served, {} words delivered, {} frames shed\n",
                metrics.sessions_closed, metrics.delivered_words, metrics.shed_frames
            );
            let data = JsonPayload::new()
                .u64("sessions_closed", metrics.sessions_closed)
                .u64("delivered_words", metrics.delivered_words)
                .u64("shed_frames", metrics.shed_frames)
                .finish();
            Outcome::success(text, data).with_metrics(metrics.metrics())
        }
        Err(err) => Outcome::error(format!("{err}")),
    }
}

fn self_test(config: ServerConfig, seed: u64) -> Outcome {
    let (listener, connector) = memory_listener();
    let server = Server::new(config);
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run(Box::new(listener)));

    let load = LoadConfig {
        sessions: 8,
        words_per_session: 512,
        batch_words: 32,
        seed,
        codes: buscode_core::CodeKind::all().to_vec(),
        tiers: buscode_core::Tier::all().to_vec(),
        ..LoadConfig::default()
    };
    let report = run_load(&load, |_| {
        connector
            .connect()
            .map(|t| Box::new(t) as Box<dyn buscode_serve::Transport>)
    });
    handle.shutdown();
    let metrics = match run.join() {
        Ok(Ok(metrics)) => metrics,
        Ok(Err(err)) => return Outcome::error(format!("server failed: {err}")),
        Err(_) => return Outcome::error("server thread panicked".to_string()),
    };
    let report = match report {
        Ok(report) => report,
        Err(err) => return Outcome::error(format!("load failed: {err}")),
    };

    let mut failures = Vec::new();
    if report.delivered_words != report.words_offered {
        failures.push(format!(
            "delivery gate: {} words offered but {} delivered",
            report.words_offered, report.delivered_words
        ));
    }
    if report.mismatched_words != 0 {
        failures.push(format!(
            "integrity gate: {} decoded words differ from the offered trace",
            report.mismatched_words
        ));
    }
    if metrics.requests != metrics.delivered_frames + metrics.shed_frames + metrics.expired_frames {
        failures.push(format!(
            "accounting gate: {} requests != {} delivered + {} shed + {} expired",
            metrics.requests, metrics.delivered_frames, metrics.shed_frames, metrics.expired_frames
        ));
    }
    if metrics.sessions_closed != metrics.sessions_opened {
        failures.push(format!(
            "session gate: {} opened but {} closed",
            metrics.sessions_opened, metrics.sessions_closed
        ));
    }

    let text = format!(
        "self-test: {} sessions, {} words offered, {} delivered, {} shed\n",
        report.sessions, report.words_offered, report.delivered_words, metrics.shed_frames
    );
    let payload = JsonPayload::new()
        .report("load", &report)
        .u64("server_requests", metrics.requests)
        .u64("server_delivered", metrics.delivered_frames);
    let failed = failures.len();
    gate_outcome(
        text,
        payload,
        &failures,
        "self-test passed: every word delivered exactly once, accounting balanced",
        format!("{failed} self-test gate(s) failed"),
    )
    .with_metrics(metrics.metrics())
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonArgs::extract(&mut argv) {
        Ok(common) => common,
        Err(message) => return usage_error(TOOL, &usage(), &message),
    };
    if common.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(argv, &common) {
        Ok(args) => args,
        Err(message) => return usage_error(TOOL, &usage(), &message),
    };
    let run = ToolRun::new(TOOL, env!("CARGO_PKG_VERSION"), common);
    let outcome = if args.self_test {
        self_test(args.config, common.seed_or(42))
    } else {
        match args.listen.as_deref() {
            Some(addr) => serve_tcp(addr, args.config),
            None => Outcome::error("no listen address".to_string()),
        }
    };
    run.finish(&outcome)
}
