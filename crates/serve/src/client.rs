//! The client side of the wire protocol: session negotiation, request
//! dispatch, and the typed replies `busload` consumes.

use buscode_core::{Access, CodeKind, Tier};

use crate::transport::{RecvHalf, SendHalf, Transport};
use crate::wire::{Message, WireError};

/// Session parameters offered in the HELLO frame.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// The bus code to run.
    pub code: CodeKind,
    /// Bus width in bits.
    pub width: u8,
    /// Address stride.
    pub stride: u64,
    /// The protection tier to pin.
    pub tier: Tier,
    /// Hardening refresh interval (`0` = server default).
    pub refresh: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            code: CodeKind::Binary,
            width: 32,
            stride: 4,
            tier: Tier::Bare,
            refresh: 0,
        }
    }
}

/// Why a client operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// A transport or framing fault.
    Wire(WireError),
    /// The server refused the session.
    Rejected {
        /// The `REJECT_*` code.
        code: u8,
        /// The server's reason.
        reason: String,
    },
    /// The server answered out of protocol.
    Protocol(String),
    /// The server reported a typed error and closed the session.
    ServerError {
        /// The error code.
        code: u8,
        /// The server's detail string.
        detail: String,
    },
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Wire(err) => write!(f, "{err}"),
            ClientError::Rejected { code, reason } => {
                write!(f, "session rejected (code {code}): {reason}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::ServerError { code, detail } => {
                write!(f, "server error (code {code}): {detail}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        ClientError::Wire(err)
    }
}

/// The answer to one DATA request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchReply {
    /// The batch was delivered; decoded addresses in offer order.
    Delivered(Vec<u64>),
    /// The batch was shed; retry after the hint.
    Shed {
        /// Suggested backoff before retrying, in microseconds.
        hint_micros: u32,
    },
}

/// An open session against a `busserved` instance.
pub struct ClientSession {
    recv: Box<dyn RecvHalf>,
    send: Box<dyn SendHalf>,
    session: u64,
    next_seq: u32,
}

impl ClientSession {
    /// Negotiates a session over `transport`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] when the server refuses,
    /// [`ClientError::Wire`] on transport faults, and
    /// [`ClientError::Protocol`] on out-of-protocol replies.
    pub fn open(transport: Box<dyn Transport>, config: &ClientConfig) -> Result<Self, ClientError> {
        let (mut recv, mut send) = transport.split();
        send.send(
            &Message::Hello {
                code: config.code,
                width: config.width,
                stride: config.stride,
                tier: config.tier,
                refresh: config.refresh,
            }
            .encode(),
        )?;
        match recv_message(&mut recv)? {
            Message::HelloOk { session } => Ok(ClientSession {
                recv,
                send,
                session,
                next_seq: 0,
            }),
            Message::Reject { code, reason } => Err(ClientError::Rejected { code, reason }),
            Message::Error { code, detail } => Err(ClientError::ServerError { code, detail }),
            other => Err(ClientError::Protocol(format!(
                "expected HELLO-OK, got {other:?}"
            ))),
        }
    }

    /// The server-assigned session id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.session
    }

    /// Sends one batch and blocks for its typed reply.
    ///
    /// # Errors
    ///
    /// Propagates wire faults and server errors; a shed batch is *not*
    /// an error — it returns [`BatchReply::Shed`].
    pub fn request(&mut self, accesses: &[Access]) -> Result<BatchReply, ClientError> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.send.send(
            &Message::Data {
                seq,
                accesses: accesses.to_vec(),
            }
            .encode(),
        )?;
        match recv_message(&mut self.recv)? {
            Message::Decoded {
                seq: reply_seq,
                addresses,
            } if reply_seq == seq => Ok(BatchReply::Delivered(addresses)),
            Message::RetryAfter {
                seq: reply_seq,
                hint_micros,
            } if reply_seq == seq => Ok(BatchReply::Shed { hint_micros }),
            Message::Error { code, detail } => Err(ClientError::ServerError { code, detail }),
            other => Err(ClientError::Protocol(format!(
                "reply out of sequence: {other:?}"
            ))),
        }
    }

    /// Sends a DATA frame without waiting for the reply (open-loop and
    /// drain-test use). Returns the sequence number used.
    ///
    /// # Errors
    ///
    /// Propagates transport faults.
    pub fn send_data(&mut self, accesses: &[Access]) -> Result<u32, ClientError> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.send.send(
            &Message::Data {
                seq,
                accesses: accesses.to_vec(),
            }
            .encode(),
        )?;
        Ok(seq)
    }

    /// Blocks for the next server message (open-loop receive path).
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] (wrapped) at EOF, otherwise transport and
    /// decode faults.
    pub fn recv_reply(&mut self) -> Result<Message, ClientError> {
        recv_message(&mut self.recv)
    }

    /// Closes the session and returns the server's final accounting
    /// `(words, shed)`.
    ///
    /// # Errors
    ///
    /// Propagates wire faults and protocol violations.
    pub fn close(mut self) -> Result<(u64, u64), ClientError> {
        self.send.send(&Message::Close.encode())?;
        loop {
            match recv_message(&mut self.recv)? {
                Message::Closed { words, shed } => return Ok((words, shed)),
                // Replies still in flight ahead of the CLOSED frame are
                // skipped; close() is for sessions with no outstanding
                // requests, but the drain path may interleave.
                Message::Decoded { .. } | Message::RetryAfter { .. } => {}
                Message::Error { code, detail } => {
                    return Err(ClientError::ServerError { code, detail })
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected CLOSED, got {other:?}"
                    )))
                }
            }
        }
    }
}

fn recv_message(recv: &mut Box<dyn RecvHalf>) -> Result<Message, ClientError> {
    match recv.recv()? {
        Some(frame) => Ok(Message::decode(&frame)?),
        None => Err(ClientError::Wire(WireError::Closed)),
    }
}

/// Sends the admin SHUTDOWN frame over a fresh connection and waits for
/// the acknowledgement.
///
/// # Errors
///
/// Propagates wire faults; [`ClientError::Protocol`] if the server
/// answers with anything but SHUTDOWN-OK.
pub fn shutdown_server(transport: Box<dyn Transport>) -> Result<(), ClientError> {
    let (mut recv, mut send) = transport.split();
    send.send(&Message::Shutdown.encode())?;
    match recv_message(&mut recv)? {
        Message::ShutdownOk => Ok(()),
        other => Err(ClientError::Protocol(format!(
            "expected SHUTDOWN-OK, got {other:?}"
        ))),
    }
}
