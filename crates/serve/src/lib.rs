//! Concurrent bus-encoding as a network service.
//!
//! The paper's encoders live on a memory bus; this crate puts them
//! behind a socket so many clients can stream address traces through
//! pinned [`Pipeline`](buscode_pipeline::Pipeline)s concurrently and
//! the saturation behaviour of the encoding stack can be measured
//! end to end:
//!
//! - [`wire`] — the length-prefixed frame protocol, CRC-16 protected
//!   with the link layer's [`Crc16`](buscode_link::Crc16) core; every
//!   malformed input is a typed [`WireError`], never a panic.
//! - [`transport`] — the [`Transport`] seam:
//!   a deterministic in-memory duplex for tests and a TCP binding for
//!   deployment, both honouring the half-close contract the graceful
//!   drain depends on.
//! - [`server`] — `busserved`'s runtime: bounded worker pool, bounded
//!   per-session queues, typed RETRY-AFTER load shedding, queue-age
//!   deadline watchdogs, and a zero-loss drain path.
//! - [`client`] — session negotiation and typed request/reply.
//! - [`load`] — `busload`'s closed/open-loop generator replaying the
//!   synthetic trace models, with log₂ latency histograms from
//!   [`buscode_telemetry`].

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod client;
pub mod load;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{shutdown_server, BatchReply, ClientConfig, ClientError, ClientSession};
pub use load::{run_load, session_workload, LoadConfig, LoadMode, LoadReport};
pub use server::{ServeMetrics, Server, ServerConfig, ServerHandle};
pub use transport::{
    connect_with_retry, memory_listener, memory_pair, Listener, MemoryConnector, MemoryListener,
    MemoryTransport, RecvHalf, SendHalf, TcpListenerAdapter, TcpTransport, Transport,
};
pub use wire::{Message, WireError};
