//! The length-prefixed wire protocol `busserved` speaks.
//!
//! Every message travels as one frame:
//!
//! ```text
//! magic(2) │ version(1) │ type(1) │ length(4, LE) │ payload │ crc(2, LE)
//! ```
//!
//! The CRC is the link layer's CRC-16-CCITT bit-roller
//! ([`buscode_link::Crc16`]) over everything between the magic and the
//! trailer — version, type, length, and payload — so a receiver rejects
//! corrupted frames with a typed error before any session state is
//! risked, exactly like the ARQ frames reject corrupted bus words.
//!
//! The length field is validated against [`MAX_PAYLOAD_BYTES`] *before*
//! any payload allocation, so an adversarial length can never balloon
//! memory. Every decode failure is a typed [`WireError`]; nothing in
//! this module panics on wire input.

use buscode_core::{Access, AccessKind, CodeKind, Tier};
use buscode_link::Crc16;

/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = [0xB5, 0xC0];
/// The protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header bytes before the payload (magic, version, type, length).
pub const HEADER_BYTES: usize = 8;
/// Trailer bytes after the payload (the CRC).
pub const TRAILER_BYTES: usize = 2;
/// Hard cap on a frame's payload length, enforced before allocation.
pub const MAX_PAYLOAD_BYTES: usize = 64 * 1024;
/// Hard cap on the words one DATA frame may carry.
pub const MAX_BATCH_WORDS: usize = 4096;

/// Why a frame (or a transport read) was rejected. Every variant maps to
/// a stable [`WireError::code`] carried in ERROR replies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame.
    Truncated {
        /// Bytes the frame needed.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The first two bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes observed.
        got: [u8; 2],
    },
    /// An unsupported protocol version.
    Version {
        /// The version byte observed.
        got: u8,
    },
    /// The length field exceeds [`MAX_PAYLOAD_BYTES`].
    Oversized {
        /// The declared payload length.
        len: usize,
    },
    /// The trailer CRC does not match the frame contents.
    Crc {
        /// The CRC recomputed over the observed bytes.
        expected: u16,
        /// The CRC carried in the trailer.
        got: u16,
    },
    /// An unknown message type byte.
    UnknownType {
        /// The type byte observed.
        got: u8,
    },
    /// The payload does not parse as its type's structure.
    Malformed {
        /// Which structural rule was violated.
        what: &'static str,
    },
    /// The connection closed where a frame was required.
    Closed,
    /// A transport-level I/O failure.
    Io {
        /// The underlying error, stringified.
        detail: String,
    },
}

impl WireError {
    /// The stable error code carried inside ERROR frames.
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            WireError::Truncated { .. } => 1,
            WireError::BadMagic { .. } => 2,
            WireError::Version { .. } => 3,
            WireError::Oversized { .. } => 4,
            WireError::Crc { .. } => 5,
            WireError::UnknownType { .. } => 6,
            WireError::Malformed { .. } => 7,
            WireError::Closed => 8,
            WireError::Io { .. } => 9,
        }
    }
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: needed {expected} bytes, got {got}")
            }
            WireError::BadMagic { got } => {
                write!(f, "bad magic {:02x}{:02x}", got[0], got[1])
            }
            WireError::Version { got } => write!(f, "unsupported protocol version {got}"),
            WireError::Oversized { len } => {
                write!(f, "payload length {len} exceeds cap {MAX_PAYLOAD_BYTES}")
            }
            WireError::Crc { expected, got } => {
                write!(
                    f,
                    "crc mismatch: computed {expected:04x}, carried {got:04x}"
                )
            }
            WireError::UnknownType { got } => write!(f, "unknown message type {got:#04x}"),
            WireError::Malformed { what } => write!(f, "malformed payload: {what}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io { detail } => write!(f, "transport error: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Message type bytes. Client-to-server types sit below `0x80`,
/// server-to-client replies above.
mod ty {
    pub const HELLO: u8 = 0x01;
    pub const DATA: u8 = 0x02;
    pub const CLOSE: u8 = 0x03;
    pub const SHUTDOWN: u8 = 0x04;
    pub const HELLO_OK: u8 = 0x81;
    pub const REJECT: u8 = 0x82;
    pub const DECODED: u8 = 0x83;
    pub const RETRY_AFTER: u8 = 0x84;
    pub const CLOSED: u8 = 0x85;
    pub const SHUTDOWN_OK: u8 = 0x86;
    pub const ERROR: u8 = 0x87;
}

/// One protocol message, either direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Session open: negotiates code × width × tier (client → server).
    Hello {
        /// The bus code to run, by [`CodeKind::name`].
        code: CodeKind,
        /// Bus width in bits.
        width: u8,
        /// Address stride for stride-aware codes.
        stride: u64,
        /// The protection tier to pin the session's pipeline at.
        tier: Tier,
        /// Hardening refresh interval for parity/ECC tiers (`0` = server
        /// default).
        refresh: u32,
    },
    /// One batch of addresses to stream through the session pipeline.
    Data {
        /// Client-chosen request sequence number, echoed in the reply.
        seq: u32,
        /// The batch, at most [`MAX_BATCH_WORDS`] accesses.
        accesses: Vec<Access>,
    },
    /// Orderly end of session (client → server).
    Close,
    /// Admin drain request: stop accepting, flush every in-flight
    /// session, exit 0 (client → server).
    Shutdown,
    /// Session accepted (server → client).
    HelloOk {
        /// The server-assigned session id.
        session: u64,
    },
    /// Session refused (server → client); see the `REJECT_*` codes.
    Reject {
        /// Why, as a stable code.
        code: u8,
        /// Human-readable detail.
        reason: String,
    },
    /// A delivered batch: the decoded addresses, in order.
    Decoded {
        /// The DATA sequence number this answers.
        seq: u32,
        /// Decoded addresses, one per offered access.
        addresses: Vec<u64>,
    },
    /// The typed load-shed reply: the batch was *not* enqueued; retry
    /// after the hint.
    RetryAfter {
        /// The DATA sequence number this answers.
        seq: u32,
        /// Suggested client backoff before retrying, in microseconds.
        hint_micros: u32,
    },
    /// Final session accounting (server → client, answers CLOSE).
    Closed {
        /// Words delivered over the session's lifetime.
        words: u64,
        /// Frames shed (queue-full plus deadline-expired).
        shed: u64,
    },
    /// The drain was accepted (server → client, answers SHUTDOWN).
    ShutdownOk,
    /// A typed protocol error; the server closes the session after
    /// sending it.
    Error {
        /// A [`WireError::code`], or [`INTERNAL_ERROR`].
        code: u8,
        /// Human-readable detail.
        detail: String,
    },
}

/// Session rejected because the server is draining.
pub const REJECT_DRAINING: u8 = 1;
/// Session rejected because the session table is full.
pub const REJECT_FULL: u8 = 2;
/// Session rejected because the negotiated parameters are invalid.
pub const REJECT_BAD_PARAMS: u8 = 3;
/// ERROR code for a server-side failure that is not a wire fault.
pub const INTERNAL_ERROR: u8 = 100;

impl Message {
    /// Encodes the message as one complete wire frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let (ty, payload) = self.encode_payload();
        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + TRAILER_BYTES);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(ty);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = Crc16::checksum(&out[2..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn encode_payload(&self) -> (u8, Vec<u8>) {
        match self {
            Message::Hello {
                code,
                width,
                stride,
                tier,
                refresh,
            } => {
                let name = code.name().as_bytes();
                let mut p = Vec::with_capacity(1 + name.len() + 14);
                p.push(name.len() as u8);
                p.extend_from_slice(name);
                p.push(*width);
                p.extend_from_slice(&stride.to_le_bytes());
                p.push(tier_code(*tier));
                p.extend_from_slice(&refresh.to_le_bytes());
                (ty::HELLO, p)
            }
            Message::Data { seq, accesses } => {
                let mut p = Vec::with_capacity(6 + accesses.len() * 9);
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&(accesses.len() as u16).to_le_bytes());
                for access in accesses {
                    p.push(match access.kind {
                        AccessKind::Instruction => 0,
                        AccessKind::Data => 1,
                    });
                    p.extend_from_slice(&access.address.to_le_bytes());
                }
                (ty::DATA, p)
            }
            Message::Close => (ty::CLOSE, Vec::new()),
            Message::Shutdown => (ty::SHUTDOWN, Vec::new()),
            Message::HelloOk { session } => (ty::HELLO_OK, session.to_le_bytes().to_vec()),
            Message::Reject { code, reason } => (ty::REJECT, encode_coded_string(*code, reason)),
            Message::Decoded { seq, addresses } => {
                let mut p = Vec::with_capacity(6 + addresses.len() * 8);
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&(addresses.len() as u16).to_le_bytes());
                for addr in addresses {
                    p.extend_from_slice(&addr.to_le_bytes());
                }
                (ty::DECODED, p)
            }
            Message::RetryAfter { seq, hint_micros } => {
                let mut p = Vec::with_capacity(8);
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&hint_micros.to_le_bytes());
                (ty::RETRY_AFTER, p)
            }
            Message::Closed { words, shed } => {
                let mut p = Vec::with_capacity(16);
                p.extend_from_slice(&words.to_le_bytes());
                p.extend_from_slice(&shed.to_le_bytes());
                (ty::CLOSED, p)
            }
            Message::ShutdownOk => (ty::SHUTDOWN_OK, Vec::new()),
            Message::Error { code, detail } => (ty::ERROR, encode_coded_string(*code, detail)),
        }
    }

    /// Decodes one complete frame.
    ///
    /// # Errors
    ///
    /// Returns a typed [`WireError`] for truncation, bad magic, an
    /// unsupported version, an oversized length, a CRC mismatch, an
    /// unknown type, or a payload that violates its type's structure.
    pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
        if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
            return Err(WireError::Truncated {
                expected: HEADER_BYTES + TRAILER_BYTES,
                got: bytes.len(),
            });
        }
        if bytes[0..2] != MAGIC {
            return Err(WireError::BadMagic {
                got: [bytes[0], bytes[1]],
            });
        }
        if bytes[2] != VERSION {
            return Err(WireError::Version { got: bytes[2] });
        }
        let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        if len > MAX_PAYLOAD_BYTES {
            return Err(WireError::Oversized { len });
        }
        let total = HEADER_BYTES + len + TRAILER_BYTES;
        if bytes.len() < total {
            return Err(WireError::Truncated {
                expected: total,
                got: bytes.len(),
            });
        }
        if bytes.len() > total {
            return Err(WireError::Malformed {
                what: "trailing bytes after frame",
            });
        }
        let carried = u16::from_le_bytes([bytes[total - 2], bytes[total - 1]]);
        let computed = Crc16::checksum(&bytes[2..total - 2]);
        if carried != computed {
            return Err(WireError::Crc {
                expected: computed,
                got: carried,
            });
        }
        let mut cursor = Cursor::new(&bytes[HEADER_BYTES..HEADER_BYTES + len]);
        let message = match bytes[3] {
            ty::HELLO => {
                let name_len = cursor.u8()? as usize;
                let name = cursor.bytes(name_len)?;
                let name = core::str::from_utf8(name).map_err(|_| WireError::Malformed {
                    what: "code name is not UTF-8",
                })?;
                let code = CodeKind::all()
                    .into_iter()
                    .find(|k| k.name() == name)
                    .ok_or(WireError::Malformed {
                        what: "unknown code name",
                    })?;
                let width = cursor.u8()?;
                let stride = cursor.u64()?;
                let tier = tier_from_code(cursor.u8()?)?;
                let refresh = cursor.u32()?;
                Message::Hello {
                    code,
                    width,
                    stride,
                    tier,
                    refresh,
                }
            }
            ty::DATA => {
                let seq = cursor.u32()?;
                let count = cursor.u16()? as usize;
                if count > MAX_BATCH_WORDS {
                    return Err(WireError::Malformed {
                        what: "batch exceeds the word cap",
                    });
                }
                let mut accesses = Vec::with_capacity(count);
                for _ in 0..count {
                    let kind = match cursor.u8()? {
                        0 => AccessKind::Instruction,
                        1 => AccessKind::Data,
                        _ => {
                            return Err(WireError::Malformed {
                                what: "unknown access kind",
                            })
                        }
                    };
                    let address = cursor.u64()?;
                    accesses.push(Access { address, kind });
                }
                Message::Data { seq, accesses }
            }
            ty::CLOSE => Message::Close,
            ty::SHUTDOWN => Message::Shutdown,
            ty::HELLO_OK => Message::HelloOk {
                session: cursor.u64()?,
            },
            ty::REJECT => {
                let (code, reason) = decode_coded_string(&mut cursor)?;
                Message::Reject { code, reason }
            }
            ty::DECODED => {
                let seq = cursor.u32()?;
                let count = cursor.u16()? as usize;
                if count > MAX_BATCH_WORDS {
                    return Err(WireError::Malformed {
                        what: "batch exceeds the word cap",
                    });
                }
                let mut addresses = Vec::with_capacity(count);
                for _ in 0..count {
                    addresses.push(cursor.u64()?);
                }
                Message::Decoded { seq, addresses }
            }
            ty::RETRY_AFTER => Message::RetryAfter {
                seq: cursor.u32()?,
                hint_micros: cursor.u32()?,
            },
            ty::CLOSED => Message::Closed {
                words: cursor.u64()?,
                shed: cursor.u64()?,
            },
            ty::SHUTDOWN_OK => Message::ShutdownOk,
            ty::ERROR => {
                let (code, detail) = decode_coded_string(&mut cursor)?;
                Message::Error { code, detail }
            }
            other => return Err(WireError::UnknownType { got: other }),
        };
        cursor.expect_empty()?;
        Ok(message)
    }
}

fn tier_code(tier: Tier) -> u8 {
    match tier {
        Tier::Bare => 0,
        Tier::Parity => 1,
        Tier::Ecc => 2,
    }
}

fn tier_from_code(code: u8) -> Result<Tier, WireError> {
    match code {
        0 => Ok(Tier::Bare),
        1 => Ok(Tier::Parity),
        2 => Ok(Tier::Ecc),
        _ => Err(WireError::Malformed {
            what: "unknown tier code",
        }),
    }
}

fn encode_coded_string(code: u8, text: &str) -> Vec<u8> {
    let bytes = text.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    let mut p = Vec::with_capacity(3 + len);
    p.push(code);
    p.extend_from_slice(&(len as u16).to_le_bytes());
    p.extend_from_slice(&bytes[..len]);
    p
}

fn decode_coded_string(cursor: &mut Cursor<'_>) -> Result<(u8, String), WireError> {
    let code = cursor.u8()?;
    let len = cursor.u16()? as usize;
    let bytes = cursor.bytes(len)?;
    let text = core::str::from_utf8(bytes).map_err(|_| WireError::Malformed {
        what: "string payload is not UTF-8",
    })?;
    Ok((code, text.to_string()))
}

/// A bounds-checked little-endian payload reader.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.data.len() - self.pos < n {
            return Err(WireError::Malformed {
                what: "payload shorter than its structure",
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn expect_empty(&self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(WireError::Malformed {
                what: "trailing bytes in payload",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                code: CodeKind::DualT0Bi,
                width: 32,
                stride: 4,
                tier: Tier::Ecc,
                refresh: 16,
            },
            Message::Data {
                seq: 7,
                accesses: vec![
                    Access::instruction(0x400),
                    Access::data(0x2_0000),
                    Access::instruction(0x404),
                ],
            },
            Message::Close,
            Message::Shutdown,
            Message::HelloOk { session: 42 },
            Message::Reject {
                code: REJECT_BAD_PARAMS,
                reason: "width 0 is invalid".to_string(),
            },
            Message::Decoded {
                seq: 7,
                addresses: vec![0x400, 0x2_0000, 0x404],
            },
            Message::RetryAfter {
                seq: 9,
                hint_micros: 500,
            },
            Message::Closed {
                words: 4096,
                shed: 3,
            },
            Message::ShutdownOk,
            Message::Error {
                code: 5,
                detail: "crc mismatch".to_string(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            assert_eq!(&bytes[0..2], &MAGIC, "{msg:?}");
            let back = Message::decode(&bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn every_code_and_tier_negotiates() {
        for kind in CodeKind::all() {
            for &tier in Tier::all() {
                let msg = Message::Hello {
                    code: kind,
                    width: 32,
                    stride: 4,
                    tier,
                    refresh: 8,
                };
                assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
            }
        }
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = Message::Close.encode();
        for cut in 0..bytes.len() {
            let err = Message::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn single_bit_rot_never_decodes_silently() {
        let msg = Message::Data {
            seq: 3,
            accesses: vec![Access::instruction(0x1234_5678)],
        };
        let bytes = msg.encode();
        for bit in 0..bytes.len() * 8 {
            let mut hit = bytes.clone();
            hit[bit / 8] ^= 1 << (bit % 8);
            // Any typed error is acceptable — a shrunk length field
            // lands on Malformed, a grown one on Truncated — but a
            // silent successful decode means the CRC failed its job.
            if let Ok(decoded) = Message::decode(&hit) {
                panic!("bit {bit} flipped silently into {decoded:?}");
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Message::Close.encode();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn wrong_version_and_unknown_type_are_typed() {
        let mut v = Message::Close.encode();
        v[2] = 9;
        assert_eq!(Message::decode(&v), Err(WireError::Version { got: 9 }));

        let mut t = Message::Close.encode();
        t[3] = 0x7F;
        // Recompute the CRC so the type byte is the only fault.
        let total = t.len();
        let crc = Crc16::checksum(&t[2..total - 2]);
        t[total - 2..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Message::decode(&t),
            Err(WireError::UnknownType { got: 0x7F })
        );
    }

    #[test]
    fn malformed_payload_structure_is_typed() {
        // A DATA frame whose count promises more accesses than present.
        let msg = Message::Data {
            seq: 1,
            accesses: vec![Access::instruction(0)],
        };
        let mut bytes = msg.encode();
        let count_at = HEADER_BYTES + 4;
        bytes[count_at..count_at + 2].copy_from_slice(&9u16.to_le_bytes());
        let total = bytes.len();
        let crc = Crc16::checksum(&bytes[2..total - 2]);
        bytes[total - 2..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(
            WireError::Truncated {
                expected: 1,
                got: 0
            }
            .code(),
            1
        );
        assert_eq!(
            WireError::Crc {
                expected: 0,
                got: 1
            }
            .code(),
            5
        );
        assert_eq!(WireError::Closed.code(), 8);
    }
}
