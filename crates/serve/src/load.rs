//! The closed- and open-loop load generator behind `busload`.
//!
//! Each session replays a seeded [`MuxedModel`] workload — the same
//! synthetic instruction/data streams the paper's trace experiments
//! use — against a `busserved` instance and verifies every decoded
//! address against the offered stream.
//!
//! *Closed loop* keeps at most one request outstanding per session and
//! retries shed batches after the server's hint (capped, with the
//! engine's deterministic backoff); offered load adapts to service
//! rate, so with a fixed `--seed` the delivered/shed counters are a
//! pure function of the workload and every `--metrics` snapshot is
//! byte-identical across runs. *Open loop* fires batches at a fixed
//! rate regardless of completions — the mode that drives the server
//! into saturation for the shed-rate experiments.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use buscode_core::{Access, CodeKind, Tier};
use buscode_engine::cli::Report;
use buscode_engine::Backoff;
use buscode_telemetry::{format_duration_nanos, HistogramSnapshot, MetricSet};
use buscode_trace::MuxedModel;

use crate::client::{BatchReply, ClientConfig, ClientError, ClientSession};
use crate::transport::Transport;
use crate::wire::{Message, WireError, MAX_BATCH_WORDS};

/// How the generator paces requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadMode {
    /// At most one outstanding request per session; shed batches are
    /// retried. Deterministic end-to-end.
    Closed,
    /// Fire batches at `rate_per_sec` per session regardless of
    /// completions; shed batches are abandoned, not retried.
    Open {
        /// Batches per second per session.
        rate_per_sec: u32,
    },
}

/// One load run's shape.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent sessions to open.
    pub sessions: usize,
    /// Words offered per session.
    pub words_per_session: usize,
    /// Words per DATA batch (capped at the wire limit).
    pub batch_words: usize,
    /// Pacing mode.
    pub mode: LoadMode,
    /// Base seed; session `i` replays seed `seed + i`.
    pub seed: u64,
    /// Codes assigned round-robin across sessions.
    pub codes: Vec<CodeKind>,
    /// Tiers assigned round-robin across sessions.
    pub tiers: Vec<Tier>,
    /// Retry budget per shed batch in closed-loop mode.
    pub max_retries: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            sessions: 4,
            words_per_session: 1024,
            batch_words: 64,
            mode: LoadMode::Closed,
            seed: 42,
            codes: vec![CodeKind::Binary],
            tiers: vec![Tier::Bare],
            max_retries: 32,
        }
    }
}

/// The aggregated result of one load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Sessions attempted.
    pub sessions: u64,
    /// Sessions the server rejected at HELLO.
    pub rejected_sessions: u64,
    /// Sessions that died mid-stream (wire/protocol fault).
    pub failed_sessions: u64,
    /// Words offered across all sessions.
    pub words_offered: u64,
    /// DATA requests sent (including retries).
    pub requests: u64,
    /// Requests answered with DECODED.
    pub delivered_frames: u64,
    /// Words delivered inside DECODED replies.
    pub delivered_words: u64,
    /// Requests answered with RETRY-AFTER.
    pub shed_frames: u64,
    /// Batches abandoned (retry budget exhausted, or open-loop shed).
    pub abandoned_frames: u64,
    /// Delivered words that did not match the offered stream.
    pub mismatched_words: u64,
    /// Shed totals reported by the server at session close.
    pub server_shed: u64,
    /// Per-request round-trip latency, in nanoseconds.
    pub latency: HistogramSnapshot,
    /// Wall-clock for the whole run, in nanoseconds (local display
    /// only; excluded from metric snapshots).
    pub elapsed_ns: u64,
}

impl LoadReport {
    fn absorb(&mut self, other: &LoadReport) {
        self.sessions += other.sessions;
        self.rejected_sessions += other.rejected_sessions;
        self.failed_sessions += other.failed_sessions;
        self.words_offered += other.words_offered;
        self.requests += other.requests;
        self.delivered_frames += other.delivered_frames;
        self.delivered_words += other.delivered_words;
        self.shed_frames += other.shed_frames;
        self.abandoned_frames += other.abandoned_frames;
        self.mismatched_words += other.mismatched_words;
        self.server_shed += other.server_shed;
        self.latency.merge(&other.latency);
    }

    /// Delivered words per second, from the local wall clock.
    #[must_use]
    pub fn throughput_words_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.delivered_words as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Fraction of requests answered with a shed reply.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.shed_frames as f64 / self.requests as f64
    }
}

impl Report for LoadReport {
    fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sessions      {} ({} rejected, {} failed)\n",
            self.sessions, self.rejected_sessions, self.failed_sessions
        ));
        out.push_str(&format!(
            "words         {} offered, {} delivered, {} mismatched\n",
            self.words_offered, self.delivered_words, self.mismatched_words
        ));
        out.push_str(&format!(
            "requests      {} ({} delivered, {} shed, {} abandoned)\n",
            self.requests, self.delivered_frames, self.shed_frames, self.abandoned_frames
        ));
        out.push_str(&format!(
            "shed rate     {:.2}% (server reported {} shed)\n",
            self.shed_rate() * 100.0,
            self.server_shed
        ));
        out.push_str(&format!(
            "throughput    {:.0} words/s over {}\n",
            self.throughput_words_per_sec(),
            format_duration_nanos(self.elapsed_ns)
        ));
        if self.latency.count > 0 {
            out.push_str(&format!(
                "latency       p50 {} p99 {} p999 {}\n",
                format_duration_nanos(self.latency.quantile(0.50)),
                format_duration_nanos(self.latency.quantile(0.99)),
                format_duration_nanos(self.latency.quantile(0.999)),
            ));
            out.push_str(&self.latency.render_duration_buckets());
        }
        out
    }

    fn render_json(&self) -> String {
        format!(
            "{{\"sessions\":{},\"rejected_sessions\":{},\"failed_sessions\":{},\
             \"words_offered\":{},\"requests\":{},\"delivered_frames\":{},\
             \"delivered_words\":{},\"shed_frames\":{},\"abandoned_frames\":{},\
             \"mismatched_words\":{},\"server_shed\":{},\"latency_count\":{}}}",
            self.sessions,
            self.rejected_sessions,
            self.failed_sessions,
            self.words_offered,
            self.requests,
            self.delivered_frames,
            self.delivered_words,
            self.shed_frames,
            self.abandoned_frames,
            self.mismatched_words,
            self.server_shed,
            self.latency.count,
        )
    }

    fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("load.sessions", self.sessions);
        set.add_counter("load.rejected_sessions", self.rejected_sessions);
        set.add_counter("load.failed_sessions", self.failed_sessions);
        set.add_counter("load.words_offered", self.words_offered);
        set.add_counter("load.requests", self.requests);
        set.add_counter("load.delivered_frames", self.delivered_frames);
        set.add_counter("load.delivered_words", self.delivered_words);
        set.add_counter("load.shed_frames", self.shed_frames);
        set.add_counter("load.abandoned_frames", self.abandoned_frames);
        set.add_counter("load.mismatched_words", self.mismatched_words);
        set.add_counter("load.server_shed", self.server_shed);
        set.add_duration("load.latency_ns", &self.latency);
        set
    }
}

/// The per-session workload: the paper's muxed instruction/data model.
#[must_use]
pub fn session_workload(words: usize, seed: u64) -> Vec<Access> {
    MuxedModel::with_targets(0.75, 0.3, 0.5).generate(words, seed)
}

/// Runs one load campaign. `connect` opens the transport for session
/// `i` — an in-memory connector in tests, TCP in `busload`.
///
/// # Errors
///
/// Returns an error only when a transport cannot even be created;
/// per-session faults are counted in the report instead.
pub fn run_load<F>(config: &LoadConfig, connect: F) -> Result<LoadReport, WireError>
where
    F: Fn(usize) -> Result<Box<dyn Transport>, WireError> + Sync,
{
    let started = Instant::now();
    let total = Mutex::new(LoadReport::default());
    let connect = &connect;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.sessions);
        for index in 0..config.sessions {
            let total = &total;
            handles.push(scope.spawn(move || {
                let report = run_session(config, index, connect);
                match total.lock() {
                    Ok(mut guard) => guard.absorb(&report),
                    Err(poisoned) => poisoned.into_inner().absorb(&report),
                }
            }));
        }
        for handle in handles {
            let _ = handle.join();
        }
    });
    let mut report = match total.into_inner() {
        Ok(report) => report,
        Err(poisoned) => poisoned.into_inner(),
    };
    report.elapsed_ns = started.elapsed().as_nanos() as u64;
    Ok(report)
}

fn session_params(config: &LoadConfig, index: usize) -> ClientConfig {
    ClientConfig {
        code: config.codes[index % config.codes.len().max(1)],
        tier: config.tiers[index % config.tiers.len().max(1)],
        ..ClientConfig::default()
    }
}

fn run_session<F>(config: &LoadConfig, index: usize, connect: &F) -> LoadReport
where
    F: Fn(usize) -> Result<Box<dyn Transport>, WireError>,
{
    let mut report = LoadReport {
        sessions: 1,
        ..LoadReport::default()
    };
    let transport = match connect(index) {
        Ok(transport) => transport,
        Err(_) => {
            report.failed_sessions += 1;
            return report;
        }
    };
    let params = session_params(config, index);
    let session = match ClientSession::open(transport, &params) {
        Ok(session) => session,
        Err(ClientError::Rejected { .. }) => {
            report.rejected_sessions += 1;
            return report;
        }
        Err(_) => {
            report.failed_sessions += 1;
            return report;
        }
    };
    let workload = session_workload(
        config.words_per_session,
        config.seed.wrapping_add(index as u64),
    );
    report.words_offered = workload.len() as u64;
    let batch = config.batch_words.clamp(1, MAX_BATCH_WORDS);
    match config.mode {
        LoadMode::Closed => closed_loop(config, &workload, batch, session, &mut report),
        LoadMode::Open { rate_per_sec } => {
            open_loop(rate_per_sec, &workload, batch, session, &mut report);
        }
    }
    report
}

fn closed_loop(
    config: &LoadConfig,
    workload: &[Access],
    batch: usize,
    mut session: ClientSession,
    report: &mut LoadReport,
) {
    let backoff = Backoff::new(50, 5_000); // microseconds
    for chunk in workload.chunks(batch) {
        let mut attempt = 0u32;
        loop {
            let sent = Instant::now();
            report.requests += 1;
            match session.request(chunk) {
                Ok(BatchReply::Delivered(addresses)) => {
                    report
                        .latency
                        .observe(sent.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    report.delivered_frames += 1;
                    report.delivered_words += addresses.len() as u64;
                    report.mismatched_words += addresses
                        .iter()
                        .zip(chunk.iter())
                        .filter(|(got, want)| **got != want.address)
                        .count() as u64
                        + chunk.len().abs_diff(addresses.len()) as u64;
                    break;
                }
                Ok(BatchReply::Shed { hint_micros }) => {
                    report
                        .latency
                        .observe(sent.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    report.shed_frames += 1;
                    if attempt >= config.max_retries {
                        report.abandoned_frames += 1;
                        break;
                    }
                    // Honour the server's hint, escalating with the
                    // engine's deterministic backoff on repeat sheds.
                    let wait = u64::from(hint_micros).max(backoff.delay(attempt));
                    std::thread::sleep(Duration::from_micros(wait.min(10_000)));
                    attempt += 1;
                }
                Err(_) => {
                    report.failed_sessions += 1;
                    return;
                }
            }
        }
    }
    match session.close() {
        Ok((_words, shed)) => report.server_shed += shed,
        Err(_) => report.failed_sessions += 1,
    }
}

fn open_loop(
    rate_per_sec: u32,
    workload: &[Access],
    batch: usize,
    mut session: ClientSession,
    report: &mut LoadReport,
) {
    let interval = if rate_per_sec == 0 {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(1.0 / f64::from(rate_per_sec))
    };
    let mut sent_at: Vec<(u32, Instant)> = Vec::new();
    let start = Instant::now();
    for (i, chunk) in workload.chunks(batch).enumerate() {
        // Pace against the ideal schedule, not the previous send, so a
        // slow server cannot throttle an open-loop generator.
        let due = start + interval * i as u32;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        report.requests += 1;
        match session.send_data(chunk) {
            Ok(seq) => sent_at.push((seq, Instant::now())),
            Err(_) => {
                report.failed_sessions += 1;
                return;
            }
        }
        drain_replies(&mut session, workload, batch, &mut sent_at, report, false);
    }
    drain_replies(&mut session, workload, batch, &mut sent_at, report, true);
    match session.close() {
        Ok((_words, shed)) => report.server_shed += shed,
        Err(_) => report.failed_sessions += 1,
    }
}

fn drain_replies(
    session: &mut ClientSession,
    workload: &[Access],
    batch: usize,
    sent_at: &mut Vec<(u32, Instant)>,
    report: &mut LoadReport,
    until_empty: bool,
) {
    while if until_empty {
        !sent_at.is_empty()
    } else {
        // Mid-stream we only reap replies for requests at least one
        // behind, keeping the sender unblocked.
        sent_at.len() > 1
    } {
        match session.recv_reply() {
            Ok(Message::Decoded { seq, addresses }) => {
                if let Some(pos) = sent_at.iter().position(|(s, _)| *s == seq) {
                    let (_, at) = sent_at.remove(pos);
                    report
                        .latency
                        .observe(at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                }
                report.delivered_frames += 1;
                report.delivered_words += addresses.len() as u64;
                let offset = seq as usize * batch;
                let expected = workload
                    .get(offset..(offset + addresses.len()).min(workload.len()))
                    .unwrap_or(&[]);
                report.mismatched_words += addresses
                    .iter()
                    .zip(expected.iter())
                    .filter(|(got, want)| **got != want.address)
                    .count() as u64
                    + addresses.len().abs_diff(expected.len()) as u64;
            }
            Ok(Message::RetryAfter { seq, .. }) => {
                sent_at.retain(|(s, _)| *s != seq);
                report.shed_frames += 1;
                report.abandoned_frames += 1;
            }
            Ok(_) | Err(_) => {
                report.failed_sessions += 1;
                sent_at.clear();
                return;
            }
        }
    }
}
