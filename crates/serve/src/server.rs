//! `busserved`'s runtime: a bounded worker pool over per-session
//! encoding pipelines.
//!
//! Each accepted connection gets a dedicated reader thread that parses
//! frames and enqueues work onto the session's *bounded* queue; a fixed
//! pool of workers drains sessions from a shared run queue and streams
//! batches through the session's pinned [`Pipeline`]. When a session's
//! queue is full the server sheds the batch with a typed
//! [`Message::RetryAfter`] reply instead of buffering unboundedly, and
//! when a batch waits past the configured deadline it is expired with
//! the same typed reply — the queue-age watchdog mirrors the pipeline's
//! own chunk watchdog contract.
//!
//! Graceful drain (an admin [`Message::Shutdown`] frame or
//! [`ServerHandle::shutdown`]): the listener stops accepting, every
//! session's inbound direction is half-closed so buffered frames still
//! drain, workers flush every queue, and [`Server::run`] returns the
//! final [`ServeMetrics`] — zero in-flight words lost.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use buscode_core::{BusWidth, CodeParams, Stride, Tier};
use buscode_pipeline::{clean_channel, Pipeline, PipelineConfig, PipelineError};
use buscode_telemetry::MetricSet;

use crate::transport::{Chan, Listener, SendHalf, Transport};
use crate::wire::{
    Message, WireError, INTERNAL_ERROR, REJECT_BAD_PARAMS, REJECT_DRAINING, REJECT_FULL,
};

/// Tunables for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads draining session queues (at least 1).
    pub workers: usize,
    /// Per-session queue depth; a full queue sheds with RETRY-AFTER.
    pub queue_depth: usize,
    /// Queue-age deadline per batch, in microseconds; `None` disables
    /// the watchdog.
    pub deadline_micros: Option<u64>,
    /// The backoff hint carried in RETRY-AFTER replies, in microseconds.
    pub retry_after_micros: u32,
    /// Concurrent session cap; beyond it new HELLOs are rejected.
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 4,
            deadline_micros: None,
            retry_after_micros: 500,
            max_sessions: 256,
        }
    }
}

/// The server's lifetime counters, rendered under the `serve.` prefix.
///
/// Invariant: `requests == delivered_frames + shed_frames +
/// expired_frames` — every DATA frame is answered exactly once, either
/// with its decoded words or with a typed shed reply.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Sessions accepted (HELLO → HELLO-OK).
    pub sessions_opened: u64,
    /// Sessions fully closed and flushed.
    pub sessions_closed: u64,
    /// HELLOs refused (draining, table full, bad parameters).
    pub sessions_rejected: u64,
    /// DATA frames received.
    pub requests: u64,
    /// DATA frames answered with DECODED.
    pub delivered_frames: u64,
    /// Words delivered inside DECODED replies.
    pub delivered_words: u64,
    /// DATA frames shed at enqueue (queue full).
    pub shed_frames: u64,
    /// DATA frames expired by the queue-age watchdog.
    pub expired_frames: u64,
    /// Frames that failed to parse or arrived out of protocol.
    pub protocol_errors: u64,
    /// Admin SHUTDOWN frames honoured.
    pub shutdowns: u64,
    /// Sessions flushed by the drain path (still open at shutdown).
    pub drained_sessions: u64,
    /// Pipeline fatal errors surfaced as ERROR replies.
    pub internal_errors: u64,
    /// Pipeline chunk-watchdog fires aggregated across closed sessions.
    pub watchdog_fires: u64,
}

impl ServeMetrics {
    /// Collapses the counters onto a telemetry snapshot.
    #[must_use]
    pub fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("serve.sessions_opened", self.sessions_opened);
        set.add_counter("serve.sessions_closed", self.sessions_closed);
        set.add_counter("serve.sessions_rejected", self.sessions_rejected);
        set.add_counter("serve.requests", self.requests);
        set.add_counter("serve.delivered_frames", self.delivered_frames);
        set.add_counter("serve.delivered_words", self.delivered_words);
        set.add_counter("serve.shed_frames", self.shed_frames);
        set.add_counter("serve.expired_frames", self.expired_frames);
        set.add_counter("serve.protocol_errors", self.protocol_errors);
        set.add_counter("serve.shutdowns", self.shutdowns);
        set.add_counter("serve.drained_sessions", self.drained_sessions);
        set.add_counter("serve.internal_errors", self.internal_errors);
        set.add_counter("serve.watchdog_fires", self.watchdog_fires);
        set
    }
}

enum Work {
    Data {
        seq: u32,
        accesses: Vec<buscode_core::Access>,
        enqueued: Instant,
    },
    Close,
}

struct SessionCore {
    pipeline: Pipeline,
    words: u64,
}

struct Session {
    id: u64,
    queue: Mutex<VecDeque<Work>>,
    scheduled: AtomicBool,
    core: Mutex<SessionCore>,
    shed: AtomicU64,
    sender: Mutex<Box<dyn SendHalf>>,
    closed: AtomicBool,
}

impl Session {
    fn send(&self, message: &Message) {
        let frame = message.encode();
        let mut sender = lock(&self.sender);
        let _ = sender.send(&frame);
    }
}

struct Shared {
    config: ServerConfig,
    metrics: Mutex<ServeMetrics>,
    run_queue: Chan<Arc<Session>>,
    sessions: Mutex<Vec<Arc<Session>>>,
    next_session: AtomicU64,
    draining: AtomicBool,
    close_listener: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        if let Some(closer) = lock(&self.close_listener).take() {
            closer();
        }
    }

    fn schedule(&self, session: &Arc<Session>) {
        if !session.scheduled.swap(true, Ordering::AcqRel) {
            self.run_queue.push(Arc::clone(session));
        }
    }
}

/// A handle for stopping a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins the graceful drain: stop accepting, flush every in-flight
    /// session, make [`Server::run`] return.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }
}

/// The concurrent encoding service.
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Creates a server with the given tunables.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        Server {
            shared: Arc::new(Shared {
                config,
                metrics: Mutex::new(ServeMetrics::default()),
                run_queue: Chan::new(),
                sessions: Mutex::new(Vec::new()),
                next_session: AtomicU64::new(1),
                draining: AtomicBool::new(false),
                close_listener: Mutex::new(None),
            }),
        }
    }

    /// A handle usable from other threads to trigger the drain.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves connections from `listener` until drained, then returns
    /// the final counters.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] only for listener-level failures; session
    /// faults are answered in-protocol and counted instead.
    pub fn run(self, mut listener: Box<dyn Listener>) -> Result<ServeMetrics, WireError> {
        *lock(&self.shared.close_listener) = Some(listener.closer());
        if self.shared.draining.load(Ordering::Acquire) {
            // A shutdown raced server start-up: close immediately.
            if let Some(closer) = lock(&self.shared.close_listener).take() {
                closer();
            }
        }

        let workers: Vec<_> = (0..self.shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let mut readers = Vec::new();
        loop {
            match listener.accept() {
                Ok(Some(transport)) => {
                    let shared = Arc::clone(&self.shared);
                    readers.push(std::thread::spawn(move || {
                        reader_loop(&shared, transport);
                    }));
                }
                Ok(None) => break,
                Err(err) => {
                    // The listener died; drain what we have and report.
                    self.shared.begin_drain();
                    drain(&self.shared, readers, workers);
                    return Err(err);
                }
            }
        }

        self.shared.begin_drain();
        drain(&self.shared, readers, workers);
        let metrics = *lock(&self.shared.metrics);
        Ok(metrics)
    }
}

fn drain(
    shared: &Arc<Shared>,
    readers: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
) {
    // Half-close every live session's inbound direction: peers can no
    // longer submit, but frames already buffered still reach the
    // readers, which enqueue them and then a CLOSE at EOF.
    let live: Vec<Arc<Session>> = lock(&shared.sessions).clone();
    for session in &live {
        lock(&session.sender).shutdown_read();
    }
    {
        let mut metrics = lock(&shared.metrics);
        metrics.drained_sessions += live.len() as u64;
    }
    for reader in readers {
        let _ = reader.join();
    }
    // Readers have enqueued everything they will ever enqueue; wait for
    // the workers to flush every queue.
    loop {
        let idle = {
            let sessions = lock(&shared.sessions);
            sessions
                .iter()
                .all(|s| lock(&s.queue).is_empty() && !s.scheduled.load(Ordering::Acquire))
        };
        if idle {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    shared.run_queue.close();
    for worker in workers {
        let _ = worker.join();
    }
}

fn reader_loop(shared: &Arc<Shared>, transport: Box<dyn Transport>) {
    let (mut recv, send) = transport.split();

    // The first frame must negotiate a session (or be an admin drain).
    let hello = match recv.recv() {
        Ok(Some(frame)) => match Message::decode(&frame) {
            Ok(message) => message,
            Err(err) => {
                let mut send = send;
                let _ = send.send(
                    &Message::Error {
                        code: err.code(),
                        detail: err.to_string(),
                    }
                    .encode(),
                );
                send.close();
                lock(&shared.metrics).protocol_errors += 1;
                return;
            }
        },
        _ => return,
    };

    let (code, width, stride, tier, refresh) = match hello {
        Message::Hello {
            code,
            width,
            stride,
            tier,
            refresh,
        } => (code, width, stride, tier, refresh),
        Message::Shutdown => {
            let mut send = send;
            let _ = send.send(&Message::ShutdownOk.encode());
            send.close();
            lock(&shared.metrics).shutdowns += 1;
            shared.begin_drain();
            return;
        }
        _ => {
            let mut send = send;
            let _ = send.send(
                &Message::Error {
                    code: WireError::Malformed {
                        what: "expected HELLO",
                    }
                    .code(),
                    detail: "first frame must be HELLO".to_string(),
                }
                .encode(),
            );
            send.close();
            lock(&shared.metrics).protocol_errors += 1;
            return;
        }
    };

    let reject = |mut send: Box<dyn SendHalf>, code: u8, reason: &str| {
        let _ = send.send(
            &Message::Reject {
                code,
                reason: reason.to_string(),
            }
            .encode(),
        );
        send.close();
        lock(&shared.metrics).sessions_rejected += 1;
    };

    if shared.draining.load(Ordering::Acquire) {
        reject(send, REJECT_DRAINING, "server is draining");
        return;
    }
    if lock(&shared.sessions).len() >= shared.config.max_sessions {
        reject(send, REJECT_FULL, "session table is full");
        return;
    }

    let pipeline = match build_pipeline(shared, code, width, stride, tier, refresh) {
        Ok(pipeline) => pipeline,
        Err(reason) => {
            reject(send, REJECT_BAD_PARAMS, &reason);
            return;
        }
    };

    let session = Arc::new(Session {
        id: shared.next_session.fetch_add(1, Ordering::Relaxed),
        queue: Mutex::new(VecDeque::new()),
        scheduled: AtomicBool::new(false),
        core: Mutex::new(SessionCore { pipeline, words: 0 }),
        shed: AtomicU64::new(0),
        sender: Mutex::new(send),
        closed: AtomicBool::new(false),
    });
    lock(&shared.sessions).push(Arc::clone(&session));
    {
        let mut metrics = lock(&shared.metrics);
        metrics.sessions_opened += 1;
    }
    session.send(&Message::HelloOk {
        session: session.id,
    });

    // Steady state: parse frames, enqueue work, shed when full.
    loop {
        let frame = match recv.recv() {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                enqueue_close(shared, &session);
                return;
            }
            Err(err) => {
                session.send(&Message::Error {
                    code: err.code(),
                    detail: err.to_string(),
                });
                lock(&shared.metrics).protocol_errors += 1;
                enqueue_close(shared, &session);
                return;
            }
        };
        match Message::decode(&frame) {
            Ok(Message::Data { seq, accesses }) => {
                lock(&shared.metrics).requests += 1;
                let full = {
                    let mut queue = lock(&session.queue);
                    if queue.len() >= shared.config.queue_depth {
                        true
                    } else {
                        queue.push_back(Work::Data {
                            seq,
                            accesses,
                            enqueued: Instant::now(),
                        });
                        false
                    }
                };
                if full {
                    session.shed.fetch_add(1, Ordering::Relaxed);
                    lock(&shared.metrics).shed_frames += 1;
                    session.send(&Message::RetryAfter {
                        seq,
                        hint_micros: shared.config.retry_after_micros,
                    });
                } else {
                    shared.schedule(&session);
                }
            }
            Ok(Message::Close) => {
                enqueue_close(shared, &session);
                return;
            }
            Ok(Message::Shutdown) => {
                session.send(&Message::ShutdownOk);
                lock(&shared.metrics).shutdowns += 1;
                shared.begin_drain();
                enqueue_close(shared, &session);
                return;
            }
            Ok(_) => {
                session.send(&Message::Error {
                    code: WireError::Malformed {
                        what: "unexpected message in session",
                    }
                    .code(),
                    detail: "only DATA, CLOSE, SHUTDOWN are valid in a session".to_string(),
                });
                lock(&shared.metrics).protocol_errors += 1;
                enqueue_close(shared, &session);
                return;
            }
            Err(err) => {
                session.send(&Message::Error {
                    code: err.code(),
                    detail: err.to_string(),
                });
                lock(&shared.metrics).protocol_errors += 1;
                enqueue_close(shared, &session);
                return;
            }
        }
    }
}

fn build_pipeline(
    shared: &Shared,
    code: buscode_core::CodeKind,
    width: u8,
    stride: u64,
    tier: Tier,
    refresh: u32,
) -> Result<Pipeline, String> {
    let bus_width = BusWidth::new(u32::from(width)).map_err(|e| e.to_string())?;
    let stride = Stride::new(stride, bus_width).map_err(|e| e.to_string())?;
    let params = CodeParams {
        width: bus_width,
        stride,
    };
    let refresh = if refresh == 0 { 64 } else { u64::from(refresh) };
    let mut config = PipelineConfig::fixed_tier(code, params, tier, refresh);
    config.deadline_micros = shared.config.deadline_micros;
    Pipeline::new(config).map_err(|e| e.to_string())
}

fn enqueue_close(shared: &Arc<Shared>, session: &Arc<Session>) {
    lock(&session.queue).push_back(Work::Close);
    shared.schedule(session);
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(session) = shared.run_queue.pop_blocking() {
        process_session(shared, &session);
        session.scheduled.store(false, Ordering::Release);
        // A reader may have enqueued between our drain and the flag
        // reset; re-check so no work is stranded.
        if !lock(&session.queue).is_empty() {
            shared.schedule(&session);
        }
    }
}

fn process_session(shared: &Arc<Shared>, session: &Arc<Session>) {
    loop {
        let work = match lock(&session.queue).pop_front() {
            Some(work) => work,
            None => return,
        };
        if session.closed.load(Ordering::Acquire) {
            // The session died (fatal pipeline error); late frames are
            // shed so the exactly-once accounting still balances.
            if matches!(work, Work::Data { .. }) {
                session.shed.fetch_add(1, Ordering::Relaxed);
                lock(&shared.metrics).shed_frames += 1;
            }
            continue;
        }
        match work {
            Work::Data {
                seq,
                accesses,
                enqueued,
            } => {
                if let Some(deadline) = shared.config.deadline_micros {
                    if enqueued.elapsed().as_micros() as u64 > deadline {
                        // Queue-age watchdog: the batch waited too long;
                        // expire it with the typed shed reply rather
                        // than deliver stale work.
                        session.shed.fetch_add(1, Ordering::Relaxed);
                        lock(&shared.metrics).expired_frames += 1;
                        session.send(&Message::RetryAfter {
                            seq,
                            hint_micros: shared.config.retry_after_micros,
                        });
                        continue;
                    }
                }
                let mut core = lock(&session.core);
                let mut channel = clean_channel();
                let mut addresses = Vec::with_capacity(accesses.len());
                let mut fatal = None;
                for access in &accesses {
                    match core.pipeline.process(*access, &mut channel) {
                        Ok(decoded) => addresses.push(decoded),
                        Err(PipelineError::Fatal { word, error }) => {
                            fatal = Some(format!("fatal codec error at word {word}: {error}"));
                            break;
                        }
                        Err(other) => {
                            fatal = Some(other.to_string());
                            break;
                        }
                    }
                }
                core.words += addresses.len() as u64;
                drop(core);
                if let Some(detail) = fatal {
                    lock(&shared.metrics).internal_errors += 1;
                    session.send(&Message::Error {
                        code: INTERNAL_ERROR,
                        detail,
                    });
                    close_session(shared, session);
                    return;
                }
                {
                    let mut metrics = lock(&shared.metrics);
                    metrics.delivered_frames += 1;
                    metrics.delivered_words += addresses.len() as u64;
                }
                session.send(&Message::Decoded { seq, addresses });
            }
            Work::Close => {
                close_session(shared, session);
                return;
            }
        }
    }
}

fn close_session(shared: &Arc<Shared>, session: &Arc<Session>) {
    if session.closed.swap(true, Ordering::AcqRel) {
        return;
    }
    let (words, pipeline_watchdogs) = {
        let core = lock(&session.core);
        (core.words, core.pipeline.stats().watchdog_fires)
    };
    session.send(&Message::Closed {
        words,
        shed: session.shed.load(Ordering::Relaxed),
    });
    lock(&session.sender).close();
    {
        let mut metrics = lock(&shared.metrics);
        metrics.sessions_closed += 1;
        metrics.watchdog_fires += pipeline_watchdogs;
    }
    lock(&shared.sessions).retain(|s| s.id != session.id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{memory_listener, RecvHalf};
    use buscode_core::{Access, CodeKind};

    fn open_session(
        connector: &crate::transport::MemoryConnector,
        tier: Tier,
    ) -> (Box<dyn RecvHalf>, Box<dyn SendHalf>) {
        let transport = connector.connect().unwrap();
        let (mut recv, mut send) = (Box::new(transport) as Box<dyn Transport>).split();
        send.send(
            &Message::Hello {
                code: CodeKind::Gray,
                width: 32,
                stride: 4,
                tier,
                refresh: 8,
            }
            .encode(),
        )
        .unwrap();
        let frame = recv.recv().unwrap().unwrap();
        assert!(matches!(
            Message::decode(&frame).unwrap(),
            Message::HelloOk { .. }
        ));
        (recv, send)
    }

    #[test]
    fn delivers_a_batch_and_accounts_for_it() {
        let (listener, connector) = memory_listener();
        let server = Server::new(ServerConfig::default());
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run(Box::new(listener)).unwrap());

        let (mut recv, mut send) = open_session(&connector, Tier::Bare);
        let accesses: Vec<Access> = (0..16).map(|i| Access::instruction(i * 4)).collect();
        send.send(
            &Message::Data {
                seq: 1,
                accesses: accesses.clone(),
            }
            .encode(),
        )
        .unwrap();
        let reply = Message::decode(&recv.recv().unwrap().unwrap()).unwrap();
        match reply {
            Message::Decoded { seq, addresses } => {
                assert_eq!(seq, 1);
                let expected: Vec<u64> = accesses.iter().map(|a| a.address).collect();
                assert_eq!(addresses, expected);
            }
            other => panic!("expected DECODED, got {other:?}"),
        }
        send.send(&Message::Close.encode()).unwrap();
        let closed = Message::decode(&recv.recv().unwrap().unwrap()).unwrap();
        assert_eq!(closed, Message::Closed { words: 16, shed: 0 });

        handle.shutdown();
        let metrics = run.join().unwrap();
        assert_eq!(metrics.requests, 1);
        assert_eq!(metrics.delivered_frames, 1);
        assert_eq!(metrics.delivered_words, 16);
        assert_eq!(metrics.shed_frames, 0);
        assert_eq!(metrics.sessions_opened, 1);
        assert_eq!(metrics.sessions_closed, 1);
    }

    #[test]
    fn zero_depth_queue_sheds_every_request_with_typed_reply() {
        let (listener, connector) = memory_listener();
        let server = Server::new(ServerConfig {
            queue_depth: 0,
            ..ServerConfig::default()
        });
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run(Box::new(listener)).unwrap());

        let (mut recv, mut send) = open_session(&connector, Tier::Parity);
        for seq in 0..5u32 {
            send.send(
                &Message::Data {
                    seq,
                    accesses: vec![Access::instruction(0x100)],
                }
                .encode(),
            )
            .unwrap();
            let reply = Message::decode(&recv.recv().unwrap().unwrap()).unwrap();
            assert_eq!(
                reply,
                Message::RetryAfter {
                    seq,
                    hint_micros: 500
                }
            );
        }
        send.send(&Message::Close.encode()).unwrap();
        let closed = Message::decode(&recv.recv().unwrap().unwrap()).unwrap();
        assert_eq!(closed, Message::Closed { words: 0, shed: 5 });

        handle.shutdown();
        let metrics = run.join().unwrap();
        assert_eq!(metrics.requests, 5);
        assert_eq!(metrics.shed_frames, 5);
        assert_eq!(metrics.delivered_frames, 0);
        assert_eq!(
            metrics.requests,
            metrics.delivered_frames + metrics.shed_frames + metrics.expired_frames
        );
    }

    #[test]
    fn shutdown_frame_drains_and_returns() {
        let (listener, connector) = memory_listener();
        let server = Server::new(ServerConfig::default());
        let run = std::thread::spawn(move || server.run(Box::new(listener)).unwrap());

        let transport = connector.connect().unwrap();
        let (mut recv, mut send) = (Box::new(transport) as Box<dyn Transport>).split();
        send.send(&Message::Shutdown.encode()).unwrap();
        let reply = Message::decode(&recv.recv().unwrap().unwrap()).unwrap();
        assert_eq!(reply, Message::ShutdownOk);

        let metrics = run.join().unwrap();
        assert_eq!(metrics.shutdowns, 1);
        // New connections are refused once draining.
        assert!(connector.connect().is_err());
    }

    #[test]
    fn bad_params_and_garbage_first_frames_are_typed() {
        let (listener, connector) = memory_listener();
        let server = Server::new(ServerConfig::default());
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run(Box::new(listener)).unwrap());

        // Width 0 is invalid → REJECT with BAD_PARAMS.
        let transport = connector.connect().unwrap();
        let (mut recv, mut send) = (Box::new(transport) as Box<dyn Transport>).split();
        send.send(
            &Message::Hello {
                code: CodeKind::Binary,
                width: 0,
                stride: 4,
                tier: Tier::Bare,
                refresh: 0,
            }
            .encode(),
        )
        .unwrap();
        let reply = Message::decode(&recv.recv().unwrap().unwrap()).unwrap();
        assert!(matches!(
            reply,
            Message::Reject {
                code: REJECT_BAD_PARAMS,
                ..
            }
        ));
        assert_eq!(recv.recv().unwrap(), None);

        // A garbage first frame → typed ERROR, clean close, server alive.
        let transport = connector.connect().unwrap();
        let (mut recv, mut send) = (Box::new(transport) as Box<dyn Transport>).split();
        send.send(&[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        let reply = Message::decode(&recv.recv().unwrap().unwrap()).unwrap();
        assert!(matches!(reply, Message::Error { .. }));
        assert_eq!(recv.recv().unwrap(), None);

        // The server still serves after both faults.
        let (mut recv, mut send) = open_session(&connector, Tier::Ecc);
        send.send(&Message::Close.encode()).unwrap();
        assert!(matches!(
            Message::decode(&recv.recv().unwrap().unwrap()).unwrap(),
            Message::Closed { .. }
        ));

        handle.shutdown();
        let metrics = run.join().unwrap();
        assert_eq!(metrics.sessions_rejected, 1);
        assert_eq!(metrics.protocol_errors, 1);
        assert_eq!(metrics.sessions_opened, 1);
    }
}
