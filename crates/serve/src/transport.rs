//! Frame transports: the seam that makes the whole service stack
//! testable without sockets.
//!
//! [`Transport`] moves whole frames (the byte vectors produced by
//! [`Message::encode`](crate::wire::Message::encode)) between a client
//! and the server. Two implementations ship:
//!
//! - [`memory_pair`] — a cross-wired in-memory duplex built on bounded
//!   channel primitives. Deterministic, allocation-only, and the
//!   backbone of the tier-1 delivery tests.
//! - [`TcpTransport`] — length-aware framing over a [`TcpStream`],
//!   validating the header (magic, length cap) *before* allocating the
//!   payload.
//!
//! Both honour the same half-close contract: `shutdown_read` stops new
//! inbound frames while letting already-buffered frames drain, which is
//! what lets the server's graceful drain lose zero in-flight words.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use buscode_engine::Backoff;

use crate::wire::{WireError, HEADER_BYTES, MAGIC, MAX_PAYLOAD_BYTES, TRAILER_BYTES};

/// A blocking MPMC queue with close semantics: `pop_blocking` drains
/// buffered items even after close, then reports `None`.
pub(crate) struct Chan<T> {
    state: Mutex<ChanState<T>>,
    cv: Condvar,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Chan<T> {
    pub(crate) fn new() -> Self {
        Chan {
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Pushes an item; returns `false` if the channel is closed.
    pub(crate) fn push(&self, item: T) -> bool {
        let mut state = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if state.closed {
            return false;
        }
        state.queue.push_back(item);
        self.cv.notify_one();
        true
    }

    /// Blocks until an item is available or the channel is closed and
    /// empty.
    pub(crate) fn pop_blocking(&self) -> Option<T> {
        let mut state = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = match self.cv.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Closes the channel; buffered items remain poppable.
    pub(crate) fn close(&self) {
        let mut state = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.closed = true;
        self.cv.notify_all();
    }
}

/// The receive half of a split transport.
pub trait RecvHalf: Send {
    /// Blocks for the next whole frame. `Ok(None)` is a clean EOF.
    ///
    /// # Errors
    ///
    /// Returns a typed [`WireError`] when the stream dies mid-frame or
    /// the framing header is invalid.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError>;
}

/// The send half of a split transport.
pub trait SendHalf: Send {
    /// Sends one whole frame.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Closed`] when the peer is gone, or
    /// [`WireError::Io`] on a transport fault.
    fn send(&mut self, frame: &[u8]) -> Result<(), WireError>;

    /// Half-closes the *inbound* direction: the peer's sends start
    /// failing, but frames already in flight still drain through
    /// `recv`.
    fn shutdown_read(&mut self);

    /// Closes both directions.
    fn close(&mut self);
}

/// A duplex frame pipe that can be split into independent halves.
pub trait Transport: Send {
    /// Splits into receive and send halves that may live on different
    /// threads.
    fn split(self: Box<Self>) -> (Box<dyn RecvHalf>, Box<dyn SendHalf>);
}

/// A source of inbound connections for [`Server::run`](crate::Server::run).
pub trait Listener: Send {
    /// Blocks for the next connection. `Ok(None)` means the listener
    /// was closed and the server should drain.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the listener itself fails.
    fn accept(&mut self) -> Result<Option<Box<dyn Transport>>, WireError>;

    /// Returns a closure that unblocks `accept` with `Ok(None)`; used
    /// by the admin shutdown path.
    fn closer(&self) -> Box<dyn Fn() + Send + Sync>;
}

// ---------------------------------------------------------------------
// In-memory transport
// ---------------------------------------------------------------------

/// One direction of an in-memory duplex.
type FramePipe = Arc<Chan<Vec<u8>>>;

/// An in-memory [`Transport`] endpoint.
pub struct MemoryTransport {
    incoming: FramePipe,
    outgoing: FramePipe,
}

/// Creates a connected pair of in-memory transports: frames sent on one
/// arrive on the other, in order.
#[must_use]
pub fn memory_pair() -> (MemoryTransport, MemoryTransport) {
    let a_to_b: FramePipe = Arc::new(Chan::new());
    let b_to_a: FramePipe = Arc::new(Chan::new());
    (
        MemoryTransport {
            incoming: Arc::clone(&b_to_a),
            outgoing: Arc::clone(&a_to_b),
        },
        MemoryTransport {
            incoming: a_to_b,
            outgoing: b_to_a,
        },
    )
}

impl Transport for MemoryTransport {
    fn split(self: Box<Self>) -> (Box<dyn RecvHalf>, Box<dyn SendHalf>) {
        let recv = MemoryRecv {
            incoming: Arc::clone(&self.incoming),
        };
        let send = MemorySend {
            incoming: self.incoming,
            outgoing: self.outgoing,
        };
        (Box::new(recv), Box::new(send))
    }
}

struct MemoryRecv {
    incoming: FramePipe,
}

impl RecvHalf for MemoryRecv {
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        Ok(self.incoming.pop_blocking())
    }
}

struct MemorySend {
    incoming: FramePipe,
    outgoing: FramePipe,
}

impl SendHalf for MemorySend {
    fn send(&mut self, frame: &[u8]) -> Result<(), WireError> {
        if self.outgoing.push(frame.to_vec()) {
            Ok(())
        } else {
            Err(WireError::Closed)
        }
    }

    fn shutdown_read(&mut self) {
        self.incoming.close();
    }

    fn close(&mut self) {
        self.incoming.close();
        self.outgoing.close();
    }
}

impl Drop for MemorySend {
    fn drop(&mut self) {
        self.outgoing.close();
    }
}

/// The connector side of an in-memory listener: each `connect` yields a
/// fresh transport whose peer lands in the listener's accept queue.
#[derive(Clone)]
pub struct MemoryConnector {
    inbox: Arc<Chan<MemoryTransport>>,
}

impl MemoryConnector {
    /// Opens a new connection; returns the client-side transport.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Closed`] once the listener has shut down.
    pub fn connect(&self) -> Result<MemoryTransport, WireError> {
        let (client, server) = memory_pair();
        if self.inbox.push(server) {
            Ok(client)
        } else {
            Err(WireError::Closed)
        }
    }
}

/// The accept side of an in-memory listener.
pub struct MemoryListener {
    inbox: Arc<Chan<MemoryTransport>>,
}

/// Creates a connected in-memory listener/connector pair.
#[must_use]
pub fn memory_listener() -> (MemoryListener, MemoryConnector) {
    let inbox = Arc::new(Chan::new());
    (
        MemoryListener {
            inbox: Arc::clone(&inbox),
        },
        MemoryConnector { inbox },
    )
}

impl Listener for MemoryListener {
    fn accept(&mut self) -> Result<Option<Box<dyn Transport>>, WireError> {
        Ok(self
            .inbox
            .pop_blocking()
            .map(|t| Box::new(t) as Box<dyn Transport>))
    }

    fn closer(&self) -> Box<dyn Fn() + Send + Sync> {
        let inbox = Arc::clone(&self.inbox);
        Box::new(move || inbox.close())
    }
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

/// A frame transport over a [`TcpStream`].
pub struct TcpTransport {
    read: TcpStream,
    write: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected stream, cloning the handle so the halves can
    /// live on different threads.
    ///
    /// # Errors
    ///
    /// Propagates the `try_clone` failure.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        let write = stream.try_clone()?;
        Ok(TcpTransport {
            read: stream,
            write,
        })
    }
}

impl Transport for TcpTransport {
    fn split(self: Box<Self>) -> (Box<dyn RecvHalf>, Box<dyn SendHalf>) {
        (
            Box::new(TcpRecv { stream: self.read }),
            Box::new(TcpSend { stream: self.write }),
        )
    }
}

struct TcpRecv {
    stream: TcpStream,
}

fn read_exact_or_eof(stream: &mut TcpStream, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(WireError::Io {
                    detail: e.to_string(),
                })
            }
        }
    }
    Ok(filled)
}

impl RecvHalf for TcpRecv {
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let mut header = [0u8; HEADER_BYTES];
        let got = read_exact_or_eof(&mut self.stream, &mut header)?;
        if got == 0 {
            return Ok(None);
        }
        if got < HEADER_BYTES {
            return Err(WireError::Truncated {
                expected: HEADER_BYTES,
                got,
            });
        }
        if header[0..2] != MAGIC {
            return Err(WireError::BadMagic {
                got: [header[0], header[1]],
            });
        }
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
        if len > MAX_PAYLOAD_BYTES {
            return Err(WireError::Oversized { len });
        }
        let total = HEADER_BYTES + len + TRAILER_BYTES;
        let mut frame = vec![0u8; total];
        frame[..HEADER_BYTES].copy_from_slice(&header);
        let got = read_exact_or_eof(&mut self.stream, &mut frame[HEADER_BYTES..])?;
        if got < total - HEADER_BYTES {
            return Err(WireError::Truncated {
                expected: total,
                got: HEADER_BYTES + got,
            });
        }
        Ok(Some(frame))
    }
}

struct TcpSend {
    stream: TcpStream,
}

impl SendHalf for TcpSend {
    fn send(&mut self, frame: &[u8]) -> Result<(), WireError> {
        self.stream
            .write_all(frame)
            .and_then(|()| self.stream.flush())
            .map_err(|e| match e.kind() {
                ErrorKind::BrokenPipe | ErrorKind::ConnectionReset => WireError::Closed,
                _ => WireError::Io {
                    detail: e.to_string(),
                },
            })
    }

    fn shutdown_read(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Read);
    }

    fn close(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// A [`Listener`] over a bound [`std::net::TcpListener`], pollable so
/// the admin shutdown path can unblock `accept`.
pub struct TcpListenerAdapter {
    listener: std::net::TcpListener,
    stop: Arc<AtomicBool>,
    backoff: Backoff,
    attempt: u32,
}

impl TcpListenerAdapter {
    /// Binds to `addr` in non-blocking mode.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the bind fails.
    pub fn bind(addr: &str) -> Result<Self, WireError> {
        let listener = std::net::TcpListener::bind(addr).map_err(|e| WireError::Io {
            detail: format!("bind {addr}: {e}"),
        })?;
        listener.set_nonblocking(true).map_err(|e| WireError::Io {
            detail: e.to_string(),
        })?;
        Ok(TcpListenerAdapter {
            listener,
            stop: Arc::new(AtomicBool::new(false)),
            backoff: Backoff::new(1, 100),
            attempt: 0,
        })
    }

    /// The address the listener actually bound (useful with port 0).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the socket address is unavailable.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, WireError> {
        self.listener.local_addr().map_err(|e| WireError::Io {
            detail: e.to_string(),
        })
    }
}

impl Listener for TcpListenerAdapter {
    fn accept(&mut self) -> Result<Option<Box<dyn Transport>>, WireError> {
        loop {
            if self.stop.load(Ordering::Acquire) {
                return Ok(None);
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.attempt = 0;
                    stream.set_nonblocking(false).map_err(|e| WireError::Io {
                        detail: e.to_string(),
                    })?;
                    let transport = TcpTransport::new(stream).map_err(|e| WireError::Io {
                        detail: e.to_string(),
                    })?;
                    return Ok(Some(Box::new(transport)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    // Transient accept failures (EMFILE, ECONNABORTED)
                    // back off instead of spinning or dying.
                    self.attempt += 1;
                    if self.attempt > 16 {
                        return Err(WireError::Io {
                            detail: e.to_string(),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(self.backoff.delay(self.attempt)));
                }
            }
        }
    }

    fn closer(&self) -> Box<dyn Fn() + Send + Sync> {
        let stop = Arc::clone(&self.stop);
        Box::new(move || stop.store(true, Ordering::Release))
    }
}

/// Dials `addr`, retrying with the engine's capped exponential backoff —
/// the load generator uses this to ride out server start-up races.
///
/// # Errors
///
/// Returns [`WireError::Io`] when every attempt fails.
pub fn connect_with_retry(addr: &str, attempts: u32) -> Result<TcpTransport, WireError> {
    let backoff = Backoff::new(10, 500);
    let mut last = String::new();
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                return TcpTransport::new(stream).map_err(|e| WireError::Io {
                    detail: e.to_string(),
                })
            }
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(backoff.delay(attempt)));
            }
        }
    }
    Err(WireError::Io {
        detail: format!("connect {addr}: {last}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pair_moves_frames_both_ways() {
        let (a, b) = memory_pair();
        let (mut a_recv, mut a_send) = Box::new(a).split();
        let (mut b_recv, mut b_send) = Box::new(b).split();
        a_send.send(&[1, 2, 3]).unwrap();
        b_send.send(&[9]).unwrap();
        assert_eq!(b_recv.recv().unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(a_recv.recv().unwrap(), Some(vec![9]));
    }

    #[test]
    fn shutdown_read_drains_buffered_frames_then_eof() {
        let (a, b) = memory_pair();
        let (_a_recv, mut a_send) = Box::new(a).split();
        let (mut b_recv, mut b_send) = Box::new(b).split();
        a_send.send(&[1]).unwrap();
        a_send.send(&[2]).unwrap();
        // Server-side half-close of its inbound direction.
        b_send.shutdown_read();
        // Peer sends now fail...
        assert_eq!(a_send.send(&[3]), Err(WireError::Closed));
        // ...but in-flight frames still drain, then clean EOF.
        assert_eq!(b_recv.recv().unwrap(), Some(vec![1]));
        assert_eq!(b_recv.recv().unwrap(), Some(vec![2]));
        assert_eq!(b_recv.recv().unwrap(), None);
    }

    #[test]
    fn listener_close_unblocks_accept() {
        let (listener, connector) = memory_listener();
        let closer = listener.closer();
        let handle = std::thread::spawn(move || {
            let mut listener = listener;
            let first = listener.accept().unwrap();
            assert!(first.is_some());
            let second = listener.accept().unwrap();
            assert!(second.is_none());
        });
        connector.connect().unwrap();
        // Give the accept loop a moment to take the first connection.
        std::thread::sleep(Duration::from_millis(10));
        closer();
        handle.join().unwrap();
        assert!(connector.connect().is_err());
    }

    #[test]
    fn tcp_round_trip_and_header_validation() {
        let adapter = TcpListenerAdapter::bind("127.0.0.1:0").unwrap();
        let addr = adapter.local_addr().unwrap().to_string();
        let mut adapter = adapter;
        let server = std::thread::spawn(move || {
            let transport = adapter.accept().unwrap().unwrap();
            let (mut recv, mut send) = transport.split();
            let frame = recv.recv().unwrap().unwrap();
            send.send(&frame).unwrap();
            // Garbage header → typed error on the client side after we
            // write raw non-magic bytes.
            send.send(&frame).unwrap();
        });
        let transport = connect_with_retry(&addr, 10).unwrap();
        let frame = crate::wire::Message::Close.encode();
        let (mut recv, mut send) = (Box::new(transport) as Box<dyn Transport>).split();
        send.send(&frame).unwrap();
        assert_eq!(recv.recv().unwrap(), Some(frame));
        server.join().unwrap();
    }
}
