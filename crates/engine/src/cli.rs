//! The unified command-line surface for every buscode binary.
//!
//! All workspace tools (`paper_tables`, `buslint`, `faultrun`,
//! `pipeline`, `asmrun`, `engine_bench`) share:
//!
//! - one common flag set — `--format text|json`, `--seed S`, `--jobs N`,
//!   `--quiet`, `--metrics text|json|csv` — extracted by
//!   [`CommonArgs::extract`] before the tool parses its own flags;
//! - one JSON envelope — tool name, version, elapsed milliseconds, exit
//!   status, reason, and a tool-specific `data` object — emitted by
//!   [`ToolRun::finish`];
//! - one reporting surface — tool reports implement [`Report`]
//!   (`render_text`/`render_json`/`metrics`), the `data` payload is
//!   assembled with [`JsonPayload`], and the metric snapshot attached to
//!   an [`Outcome`] is rendered by `--metrics` in the unified
//!   [`buscode_telemetry`] schema;
//! - one exit-code convention: `0` success, `1` a gate or check failed,
//!   `2` usage error or the tool itself could not run.
//!
//! A binary's `main` is reduced to: collect args, [`CommonArgs::extract`],
//! parse the leftover tool flags with the shared helpers, compute an
//! [`Outcome`], and hand it to [`ToolRun::finish`].

use std::process::ExitCode;
use std::time::Instant;

use buscode_telemetry::MetricSet;

use crate::sweep::SweepEngine;

/// Output format selected by `--format`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Format {
    /// Human-readable text on stdout (the default).
    #[default]
    Text,
    /// The shared JSON envelope on stdout.
    Json,
}

impl Format {
    /// Parses a `--format` value.
    fn parse(value: &str) -> Result<Format, String> {
        match value {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format '{other}' (expected text|json)")),
        }
    }
}

/// Rendering selected by `--metrics` for the attached metric snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetricsFormat {
    /// Human-readable metric lines.
    Text,
    /// The versioned JSON snapshot.
    Json,
    /// One `name,kind,value` row per metric.
    Csv,
}

impl MetricsFormat {
    /// Parses a `--metrics` value.
    fn parse(value: &str) -> Result<MetricsFormat, String> {
        match value {
            "text" => Ok(MetricsFormat::Text),
            "json" => Ok(MetricsFormat::Json),
            "csv" => Ok(MetricsFormat::Csv),
            other => Err(format!(
                "unknown metrics format '{other}' (expected text|json|csv)"
            )),
        }
    }

    /// Renders a snapshot in this format.
    #[must_use]
    pub fn render(&self, metrics: &MetricSet) -> String {
        match self {
            MetricsFormat::Text => metrics.render_text(),
            MetricsFormat::Json => {
                let mut out = metrics.render_json();
                out.push('\n');
                out
            }
            MetricsFormat::Csv => metrics.render_csv(),
        }
    }
}

/// The flags every buscode tool accepts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CommonArgs {
    /// Output format (`--format`).
    pub format: Format,
    /// Seed override (`--seed`); `None` keeps the tool's default.
    pub seed: Option<u64>,
    /// Worker threads for sweeps (`--jobs`); `0` means auto-detect,
    /// the default `1` is serial.
    pub jobs: usize,
    /// Suppress the text body (`--quiet`); failures still reach stderr
    /// and JSON envelopes are always complete.
    pub quiet: bool,
    /// `--help`/`-h` was given.
    pub help: bool,
    /// Metric-snapshot rendering (`--metrics`); `None` emits no metrics.
    ///
    /// In text mode the snapshot prints after the body, *unsuppressed*
    /// by `--quiet` — `--quiet --metrics json` isolates the snapshot on
    /// stdout. In JSON mode the envelope gains a `metrics` field
    /// carrying the JSON snapshot regardless of the chosen rendering.
    pub metrics: Option<MetricsFormat>,
}

/// The usage fragment describing the common flags, for tool usage strings.
pub const COMMON_USAGE: &str =
    "[--format text|json] [--metrics text|json|csv] [--seed S] [--jobs N] [--quiet]";

impl CommonArgs {
    /// Extracts the common flags from `args`, leaving tool-specific
    /// arguments (in their original order) behind.
    ///
    /// # Errors
    ///
    /// Returns a usage message when a common flag is malformed (missing
    /// or non-numeric value, unknown format).
    pub fn extract(args: &mut Vec<String>) -> Result<CommonArgs, String> {
        let mut common = CommonArgs {
            jobs: 1,
            ..CommonArgs::default()
        };
        let mut rest = Vec::with_capacity(args.len());
        let mut it = std::mem::take(args).into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--format" => {
                    let value = it.next().ok_or("--format needs a value")?;
                    common.format = Format::parse(&value)?;
                }
                "--seed" => {
                    let value = it.next().ok_or("--seed needs a value")?;
                    common.seed = Some(parse_u64("--seed", &value)?);
                }
                "--jobs" => {
                    let value = it.next().ok_or("--jobs needs a value")?;
                    common.jobs = usize::try_from(parse_u64("--jobs", &value)?)
                        .map_err(|_| "--jobs out of range".to_string())?;
                }
                "--metrics" => {
                    let value = it.next().ok_or("--metrics needs a value")?;
                    common.metrics = Some(MetricsFormat::parse(&value)?);
                }
                "--quiet" | "-q" => common.quiet = true,
                "--help" | "-h" => common.help = true,
                _ => rest.push(arg),
            }
        }
        *args = rest;
        Ok(common)
    }

    /// The sweep engine matching `--jobs` (`0` = auto-detect).
    #[must_use]
    pub fn engine(&self) -> SweepEngine {
        SweepEngine::new(self.jobs)
    }

    /// The effective seed: the `--seed` override or the tool default.
    #[must_use]
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// True when JSON output was requested.
    #[must_use]
    pub fn json(&self) -> bool {
        self.format == Format::Json
    }
}

/// Parses a nonnegative integer flag value.
///
/// # Errors
///
/// Returns a usage message naming the flag on parse failure.
pub fn parse_u64(flag: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("{flag}: '{value}' is not a nonnegative integer"))
}

/// How a tool run ended; maps onto the process exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RunStatus {
    /// Everything passed — exit 0.
    Success,
    /// The tool ran but a gate or check failed — exit 1.
    Failure,
    /// The tool could not run (bad input, broken environment) — exit 2.
    Error,
}

impl RunStatus {
    /// The status label used in the JSON envelope.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RunStatus::Success => "success",
            RunStatus::Failure => "failure",
            RunStatus::Error => "error",
        }
    }

    /// The process exit code for this status.
    #[must_use]
    pub fn exit_code(&self) -> ExitCode {
        match self {
            RunStatus::Success => ExitCode::SUCCESS,
            RunStatus::Failure => ExitCode::FAILURE,
            RunStatus::Error => ExitCode::from(2),
        }
    }
}

/// What a tool produced: status, reason, a text body, a JSON body, and
/// an optional metric snapshot for `--metrics`.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// How the run ended.
    pub status: RunStatus,
    /// One-line explanation of the status (goes into the envelope and,
    /// on failure, to stderr).
    pub reason: String,
    /// Human-readable body for `--format text`.
    pub text: String,
    /// Tool-specific JSON value for the envelope's `data` field.
    pub data: String,
    /// The run's aggregated metrics, rendered when `--metrics` is given.
    pub metrics: Option<MetricSet>,
}

impl Outcome {
    /// A successful run.
    #[must_use]
    pub fn success(text: String, data: String) -> Self {
        Outcome {
            status: RunStatus::Success,
            reason: "ok".to_string(),
            text,
            data,
            metrics: None,
        }
    }

    /// A completed run whose gate failed.
    #[must_use]
    pub fn failure(reason: String, text: String, data: String) -> Self {
        Outcome {
            status: RunStatus::Failure,
            reason,
            text,
            data,
            metrics: None,
        }
    }

    /// A run that could not complete.
    #[must_use]
    pub fn error(reason: String) -> Self {
        Outcome {
            status: RunStatus::Error,
            reason,
            text: String::new(),
            data: "{}".to_string(),
            metrics: None,
        }
    }

    /// Attaches the run's metric snapshot (rendered under `--metrics`).
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricSet) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

/// The one reporting interface every tool report implements.
///
/// `render_text` is the human body, `render_json` the machine payload
/// embedded in the envelope's `data` field, and `metrics` the report's
/// aggregated snapshot in the unified [`buscode_telemetry`] schema —
/// what the tool's `--metrics` flag emits.
pub trait Report {
    /// Human-readable rendering for `--format text`.
    fn render_text(&self) -> String;
    /// JSON rendering for the envelope's `data` payload.
    fn render_json(&self) -> String;
    /// The report collapsed onto the unified metric schema.
    fn metrics(&self) -> MetricSet {
        MetricSet::new()
    }
}

/// Incremental builder for a tool's JSON `data` payload — replaces the
/// per-binary hand-rolled `format!` envelopes.
#[derive(Debug, Default)]
pub struct JsonPayload {
    buf: String,
}

impl JsonPayload {
    /// An empty `{}` payload.
    #[must_use]
    pub fn new() -> Self {
        JsonPayload::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&json_escape(key));
        self.buf.push_str("\":");
    }

    /// Adds a pre-rendered JSON value under `key`.
    #[must_use]
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Adds an unsigned integer under `key`.
    #[must_use]
    pub fn u64(self, key: &str, value: u64) -> Self {
        let rendered = value.to_string();
        self.raw(key, &rendered)
    }

    /// Adds a report's JSON rendering under `key`.
    #[must_use]
    pub fn report(self, key: &str, report: &dyn Report) -> Self {
        let rendered = report.render_json();
        self.raw(key, &rendered)
    }

    /// Adds an array of escaped strings under `key`.
    #[must_use]
    pub fn strings(mut self, key: &str, items: &[String]) -> Self {
        self.key(key);
        self.buf.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push('"');
            self.buf.push_str(&json_escape(item));
            self.buf.push('"');
        }
        self.buf.push(']');
        self
    }

    /// Closes the object.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Folds a smoke/gate check into an [`Outcome`]: the failure list lands
/// in the payload as `smoke_failures`, the text body gains either
/// `pass_note` or one `SMOKE FAILURE:` line per finding, and the status
/// follows. `fail_reason` is the envelope reason when the gate fails
/// (callers format it with the failure count up front).
#[must_use]
pub fn gate_outcome(
    mut text: String,
    payload: JsonPayload,
    failures: &[String],
    pass_note: &str,
    fail_reason: String,
) -> Outcome {
    let data = payload.strings("smoke_failures", failures).finish();
    if failures.is_empty() {
        text.push_str(pass_note);
        if !pass_note.ends_with('\n') {
            text.push('\n');
        }
        Outcome::success(text, data)
    } else {
        for failure in failures {
            text.push_str(&format!("SMOKE FAILURE: {failure}\n"));
        }
        Outcome::failure(fail_reason, text, data)
    }
}

/// One tool invocation: identity, wall clock, and the common flags.
#[derive(Debug)]
pub struct ToolRun {
    tool: &'static str,
    version: &'static str,
    common: CommonArgs,
    start: Instant,
}

impl ToolRun {
    /// Starts the clock for one invocation. Pass
    /// `env!("CARGO_PKG_VERSION")` from the binary crate as `version`.
    #[must_use]
    pub fn new(tool: &'static str, version: &'static str, common: CommonArgs) -> Self {
        ToolRun {
            tool,
            version,
            common,
            start: Instant::now(),
        }
    }

    /// The common flags this run was started with.
    #[must_use]
    pub fn common(&self) -> &CommonArgs {
        &self.common
    }

    /// Renders the shared JSON envelope around `outcome`.
    ///
    /// When `--metrics` was given and the outcome carries a snapshot,
    /// the envelope gains a `metrics` field with the JSON rendering.
    #[must_use]
    pub fn envelope(&self, outcome: &Outcome) -> String {
        let elapsed_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let metrics = match (&self.common.metrics, &outcome.metrics) {
            (Some(_), Some(set)) => format!(",\"metrics\":{}", set.render_json()),
            _ => String::new(),
        };
        format!(
            "{{\"tool\":\"{}\",\"version\":\"{}\",\"elapsed_ms\":{:.3},\
             \"status\":\"{}\",\"reason\":\"{}\",\"data\":{}{}}}",
            json_escape(self.tool),
            json_escape(self.version),
            elapsed_ms,
            outcome.status.label(),
            json_escape(&outcome.reason),
            if outcome.data.is_empty() {
                "{}"
            } else {
                &outcome.data
            },
            metrics,
        )
    }

    /// Prints the outcome in the selected format and converts its status
    /// into the process exit code.
    ///
    /// Text mode prints the body to stdout (suppressed by `--quiet`) and
    /// failure reasons to stderr; JSON mode always prints the complete
    /// envelope to stdout. A `--metrics` snapshot prints after the text
    /// body in the chosen rendering, deliberately *not* suppressed by
    /// `--quiet`, so `--quiet --metrics json` leaves exactly the
    /// versioned snapshot on stdout.
    pub fn finish(self, outcome: &Outcome) -> ExitCode {
        match self.common.format {
            Format::Json => println!("{}", self.envelope(outcome)),
            Format::Text => {
                if !self.common.quiet && !outcome.text.is_empty() {
                    if outcome.text.ends_with('\n') {
                        print!("{}", outcome.text);
                    } else {
                        println!("{}", outcome.text);
                    }
                }
                if let (Some(format), Some(metrics)) = (&self.common.metrics, &outcome.metrics) {
                    print!("{}", format.render(metrics));
                }
                if outcome.status != RunStatus::Success {
                    eprintln!("{}: {}", self.tool, outcome.reason);
                }
            }
        }
        outcome.status.exit_code()
    }
}

/// Prints a usage error to stderr and returns the usage exit code.
pub fn usage_error(tool: &str, usage: &str, message: &str) -> ExitCode {
    eprintln!("{tool}: {message}");
    eprintln!("{usage}");
    ExitCode::from(2)
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn extract_splits_common_from_tool_flags() {
        let mut args = argv(&[
            "--table", "2", "--format", "json", "--seed", "7", "--jobs", "4", "--len", "100",
            "--quiet",
        ]);
        let common = CommonArgs::extract(&mut args).unwrap();
        assert_eq!(common.format, Format::Json);
        assert_eq!(common.seed, Some(7));
        assert_eq!(common.jobs, 4);
        assert!(common.quiet);
        assert!(!common.help);
        assert_eq!(args, argv(&["--table", "2", "--len", "100"]));
    }

    #[test]
    fn defaults_are_text_serial_no_seed() {
        let mut args = Vec::new();
        let common = CommonArgs::extract(&mut args).unwrap();
        assert_eq!(common.format, Format::Text);
        assert_eq!(common.seed, None);
        assert_eq!(common.jobs, 1);
        assert!(!common.quiet);
        assert_eq!(common.seed_or(42), 42);
    }

    #[test]
    fn bad_common_values_are_usage_errors() {
        assert!(CommonArgs::extract(&mut argv(&["--format"])).is_err());
        assert!(CommonArgs::extract(&mut argv(&["--format", "xml"])).is_err());
        assert!(CommonArgs::extract(&mut argv(&["--seed", "many"])).is_err());
        assert!(CommonArgs::extract(&mut argv(&["--jobs", "-1"])).is_err());
    }

    #[test]
    fn envelope_has_the_shared_shape() {
        let mut args = argv(&["--format", "json"]);
        let common = CommonArgs::extract(&mut args).unwrap();
        let run = ToolRun::new("testtool", "0.1.0", common);
        let outcome = Outcome::success(String::new(), "{\"x\":1}".to_string());
        let envelope = run.envelope(&outcome);
        assert!(envelope.starts_with("{\"tool\":\"testtool\",\"version\":\"0.1.0\","));
        assert!(envelope.contains("\"status\":\"success\""));
        assert!(envelope.contains("\"reason\":\"ok\""));
        assert!(envelope.ends_with("\"data\":{\"x\":1}}"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn status_labels_and_exit_codes() {
        assert_eq!(RunStatus::Success.label(), "success");
        assert_eq!(RunStatus::Failure.label(), "failure");
        assert_eq!(RunStatus::Error.label(), "error");
    }
}
