//! The throughput harness behind `BENCH_engine.json`.
//!
//! Measures, on one fixed-seed synthetic address stream:
//!
//! 1. the **kernel speedup** — the batched transition-count kernel
//!    ([`buscode_core::metrics::line_activity_slice`], which produces the
//!    total *and* the per-line transition profile in one packed
//!    carry-save pass) against the per-word seed path it replaced
//!    ([`buscode_core::metrics::line_activity_per_word`]: one virtual
//!    encode and a per-line flip scan per bus cycle), for the binary and
//!    Gray codes. The total-only pair
//!    ([`buscode_core::metrics::count_transitions_slice`] vs
//!    [`buscode_core::metrics::count_transitions_per_word`]) is recorded
//!    alongside for reference.
//! 2. the **sweep speedup** — a full all-codes transition sweep sharded
//!    through [`SweepEngine`] with `--jobs N` against the serial engine,
//!    including a bit-exactness check between the two runs.
//!
//! Both measurements are pure functions of `(words, seed)`, so the
//! transition totals they report are stable across machines; only the
//! timing fields vary.

use std::fmt::Write as _;
use std::time::Instant;

use buscode_core::metrics::{
    count_transitions_per_word, count_transitions_slice, line_activity_per_word,
    line_activity_slice,
};
use buscode_core::rng::Rng64;
use buscode_core::{Access, CodeKind, CodeParams};
use buscode_telemetry::{CounterId, HistogramId, MetricSet, Registry, SpanId};

use crate::cli::Report;
use crate::sweep::SweepEngine;

/// One code's block-vs-per-word kernel measurement.
#[derive(Clone, Debug)]
pub struct KernelRecord {
    /// Code name.
    pub code: &'static str,
    /// Transition total (identical for every measured path by
    /// construction; the harness errors out otherwise).
    pub transitions: u64,
    /// Words/sec of the per-word seed path computing the transition
    /// profile (total + per-line counts).
    pub per_word_words_per_sec: f64,
    /// Words/sec of the batched kernel computing the same profile.
    pub block_words_per_sec: f64,
    /// `block / per_word` throughput ratio of the profile kernel — the
    /// gated speedup.
    pub speedup: f64,
    /// Words/sec of the per-word seed path computing the total only.
    pub count_per_word_words_per_sec: f64,
    /// Words/sec of the batched total-only kernel.
    pub count_block_words_per_sec: f64,
    /// `block / per_word` ratio of the total-only kernel (reference).
    pub count_speedup: f64,
}

/// The multi-thread sweep measurement.
#[derive(Clone, Debug)]
pub struct SweepRecord {
    /// Number of (code) cells swept.
    pub cells: usize,
    /// Worker threads used for the parallel run.
    pub jobs: usize,
    /// Serial wall time, milliseconds.
    pub serial_ms: f64,
    /// Parallel wall time, milliseconds.
    pub parallel_ms: f64,
    /// `serial / parallel` wall-time ratio.
    pub speedup: f64,
    /// Whether the parallel run's results were bit-identical to serial.
    pub identical: bool,
}

/// The telemetry overhead measurement: the same instrumented chunked
/// counting loop timed against a no-op registry and a live one. This is
/// what the `engine_bench --max-overhead` gate (<5% in CI) enforces.
#[derive(Clone, Debug)]
pub struct OverheadRecord {
    /// Instrumented blocks per pass (one span + three record calls each).
    pub blocks: u64,
    /// Words/sec with the no-op registry (telemetry compiled in, off).
    pub noop_words_per_sec: f64,
    /// Words/sec with the live registry (every record call hitting
    /// atomic slots).
    pub live_words_per_sec: f64,
    /// Throughput lost to live telemetry, percent of the no-op rate.
    pub overhead_percent: f64,
}

/// The full throughput record written to `BENCH_engine.json`.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Stream length in words.
    pub words: usize,
    /// Stream seed.
    pub seed: u64,
    /// Per-code kernel measurements (binary, gray).
    pub kernels: Vec<KernelRecord>,
    /// The sharded sweep measurement.
    pub sweep: SweepRecord,
    /// The telemetry overhead measurement.
    pub telemetry: OverheadRecord,
}

impl ThroughputReport {
    /// The smallest gated kernel speedup across the measured codes.
    #[must_use]
    pub fn min_kernel_speedup(&self) -> f64 {
        self.kernels
            .iter()
            .map(|k| k.speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the record as a JSON object (the `BENCH_engine.json`
    /// payload and the `data` field of the `engine_bench` envelope).
    #[must_use]
    pub fn render_json(&self) -> String {
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|k| {
                format!(
                    "{{\"code\":\"{}\",\"transitions\":{},\
                     \"per_word_words_per_sec\":{:.0},\
                     \"block_words_per_sec\":{:.0},\"speedup\":{:.3},\
                     \"count_per_word_words_per_sec\":{:.0},\
                     \"count_block_words_per_sec\":{:.0},\
                     \"count_speedup\":{:.3}}}",
                    k.code,
                    k.transitions,
                    k.per_word_words_per_sec,
                    k.block_words_per_sec,
                    k.speedup,
                    k.count_per_word_words_per_sec,
                    k.count_block_words_per_sec,
                    k.count_speedup
                )
            })
            .collect();
        format!(
            "{{\"words\":{},\"seed\":{},\"kernels\":[{}],\
             \"sweep\":{{\"cells\":{},\"jobs\":{},\"serial_ms\":{:.3},\
             \"parallel_ms\":{:.3},\"speedup\":{:.3},\"identical\":{}}},\
             \"telemetry\":{{\"blocks\":{},\"noop_words_per_sec\":{:.0},\
             \"live_words_per_sec\":{:.0},\"overhead_percent\":{:.3}}}}}",
            self.words,
            self.seed,
            kernels.join(","),
            self.sweep.cells,
            self.sweep.jobs,
            self.sweep.serial_ms,
            self.sweep.parallel_ms,
            self.sweep.speedup,
            self.sweep.identical,
            self.telemetry.blocks,
            self.telemetry.noop_words_per_sec,
            self.telemetry.live_words_per_sec,
            self.telemetry.overhead_percent,
        )
    }
}

impl Report for ThroughputReport {
    fn render_text(&self) -> String {
        let mut text = format!("throughput: {} words, seed {}\n", self.words, self.seed);
        for k in &self.kernels {
            let _ = writeln!(
                text,
                "  {:<8} profile  per-word {:>8.2} Mw/s, block {:>8.2} Mw/s, speedup {:.2}x \
                 ({} transitions)",
                k.code,
                k.per_word_words_per_sec / 1e6,
                k.block_words_per_sec / 1e6,
                k.speedup,
                k.transitions
            );
            let _ = writeln!(
                text,
                "  {:<8} total    per-word {:>8.2} Mw/s, block {:>8.2} Mw/s, speedup {:.2}x",
                "", // align under the code name
                k.count_per_word_words_per_sec / 1e6,
                k.count_block_words_per_sec / 1e6,
                k.count_speedup
            );
        }
        let _ = writeln!(
            text,
            "sweep: {} cells, jobs {}: serial {:.1} ms, parallel {:.1} ms, \
             speedup {:.2}x, {}",
            self.sweep.cells,
            self.sweep.jobs,
            self.sweep.serial_ms,
            self.sweep.parallel_ms,
            self.sweep.speedup,
            if self.sweep.identical {
                "bit-identical"
            } else {
                "DIVERGED"
            }
        );
        let _ = writeln!(
            text,
            "telemetry: {} blocks: no-op {:.2} Mw/s, live {:.2} Mw/s, overhead {:.2}%",
            self.telemetry.blocks,
            self.telemetry.noop_words_per_sec / 1e6,
            self.telemetry.live_words_per_sec / 1e6,
            self.telemetry.overhead_percent
        );
        text
    }

    fn render_json(&self) -> String {
        ThroughputReport::render_json(self)
    }

    /// Only the deterministic fields (counts, totals) enter the
    /// snapshot; every words/sec and wall-time figure stays out so the
    /// snapshot is stable across machines and worker counts.
    fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("engine.stream_words", self.words as u64);
        set.set_gauge("engine.seed", self.seed);
        set.set_gauge("engine.sweep_cells", self.sweep.cells as u64);
        set.add_counter("engine.sweep_identical", u64::from(self.sweep.identical));
        for k in &self.kernels {
            set.add_counter(&format!("engine.transitions.{}", k.code), k.transitions);
        }
        set.add_counter("engine.telemetry_blocks", self.telemetry.blocks);
        set
    }
}

/// Generates the fixed-seed benchmark stream: instruction-style traffic,
/// ~70% in-sequence word-stride fetches with random jumps, the mix the
/// paper's instruction benchmarks average out to.
#[must_use]
pub fn benchmark_stream(words: usize, seed: u64) -> Vec<Access> {
    let params = CodeParams::default();
    let mask = params.width.mask();
    let stride = params.stride.get();
    let mut rng = Rng64::seed_from_u64(seed);
    let mut addr = 0x0040_0000u64 & mask;
    let mut stream = Vec::with_capacity(words);
    for _ in 0..words {
        if rng.gen_bool(0.7) {
            addr = params.width.wrapping_add(addr, stride);
        } else {
            addr = rng.gen::<u64>() & mask;
        }
        stream.push(Access::instruction(addr));
    }
    stream
}

/// Runs the full throughput harness.
///
/// # Errors
///
/// Returns a message when a codec cannot be built or when any measured
/// path disagrees with another (which would make the timing numbers
/// meaningless).
pub fn run_throughput(words: usize, seed: u64, jobs: usize) -> Result<ThroughputReport, String> {
    let params = CodeParams::default();
    let stream = benchmark_stream(words, seed);

    // Each path is timed several times and the best run kept — the
    // standard way to strip scheduler and frequency-scaling noise from a
    // ratio of two throughputs. Both paths get the identical protocol.
    const TIMING_RUNS: usize = 7;
    let timed = |f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..TIMING_RUNS {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    let mut kernels = Vec::new();
    // The kind list goes through `black_box` so the loop cannot be
    // unrolled into per-code specializations: each measured path must
    // dispatch on a code picked at run time, like production sweeps do.
    for kind in std::hint::black_box(vec![CodeKind::Binary, CodeKind::Gray]) {
        let mut enc = kind
            .encoder(params)
            .map_err(|e| format!("cannot build {} encoder: {e}", kind.name()))?;
        // `black_box` pins every path to genuine dynamic dispatch — the
        // production situation, where the code is picked at run time.

        // The gated pair: the transition profile (total + per-line).
        let mut profile_pw = Default::default();
        let per_word_secs = timed(&mut || {
            enc.reset();
            profile_pw =
                line_activity_per_word(std::hint::black_box(enc.as_mut()), stream.iter().copied());
        });
        let mut profile_blk = Default::default();
        let block_secs = timed(&mut || {
            enc.reset();
            profile_blk = line_activity_slice(std::hint::black_box(enc.as_mut()), &stream);
        });
        if profile_pw != profile_blk {
            return Err(format!(
                "{}: block profile kernel disagrees with the per-word path",
                kind.name()
            ));
        }

        // The reference pair: total-only transition count.
        let mut count_pw = Default::default();
        let count_per_word_secs = timed(&mut || {
            enc.reset();
            count_pw = count_transitions_per_word(
                std::hint::black_box(enc.as_mut()),
                stream.iter().copied(),
            );
        });
        let mut count_blk = Default::default();
        let count_block_secs = timed(&mut || {
            enc.reset();
            count_blk = count_transitions_slice(std::hint::black_box(enc.as_mut()), &stream);
        });
        if count_pw.total() != count_blk.total() || count_blk.total() != profile_blk.total() {
            return Err(format!(
                "{}: count paths disagree ({} per-word, {} block, {} profile)",
                kind.name(),
                count_pw.total(),
                count_blk.total(),
                profile_blk.total()
            ));
        }

        kernels.push(KernelRecord {
            code: kind.name(),
            transitions: count_blk.total(),
            per_word_words_per_sec: words as f64 / per_word_secs.max(1e-9),
            block_words_per_sec: words as f64 / block_secs.max(1e-9),
            speedup: per_word_secs / block_secs.max(1e-9),
            count_per_word_words_per_sec: words as f64 / count_per_word_secs.max(1e-9),
            count_block_words_per_sec: words as f64 / count_block_secs.max(1e-9),
            count_speedup: count_per_word_secs / count_block_secs.max(1e-9),
        });
    }

    // Telemetry overhead: drive the identical instrumented counting
    // loop with every record call dead-ended by the no-op registry and
    // again live — and compare throughput. Block-granular
    // instrumentation (one span plus three record calls per block) is
    // the pattern the runtime layers use on their hot paths. The two
    // arms are *finely interleaved* — one stream walk per arm per
    // round, order flipped every round (noop/live, live/noop, ...) —
    // and each round contributes one live/noop time ratio; the gate
    // reads the **median** ratio. Shared-host noise has two shapes and
    // this kills both: clock frequency wanders by double-digit percent
    // on a seconds timescale (cancelled inside a ~2 ms paired round),
    // and preemption spikes add milliseconds to single walks (isolated
    // to a few rounds' ratios, which the median discards).
    const BLOCK_WORDS: usize = 4096;
    const OVERHEAD_SAMPLE_WORDS: usize = 64_000_000;
    let rounds = OVERHEAD_SAMPLE_WORDS
        .div_ceil(words.max(1))
        .max(TIMING_RUNS);
    let mut enc = CodeKind::Binary
        .encoder(params)
        .map_err(|e| format!("cannot build binary encoder: {e}"))?;
    let mut measure = |registry: &Registry,
                       words_id: CounterId,
                       transitions_id: CounterId,
                       dist_id: HistogramId,
                       span_id: SpanId|
     -> f64 {
        let start = Instant::now();
        enc.reset();
        for chunk in stream.chunks(BLOCK_WORDS) {
            let _block = registry.span(span_id);
            let stats = count_transitions_slice(std::hint::black_box(enc.as_mut()), chunk);
            registry.add(words_id, chunk.len() as u64);
            registry.add(transitions_id, stats.total());
            registry.observe(dist_id, stats.total());
        }
        start.elapsed().as_secs_f64()
    };
    let build_registry = |enabled: bool| {
        let mut spec = Registry::builder();
        let words_id = spec.counter("engine.block_words");
        let transitions_id = spec.counter("engine.block_transitions");
        let dist_id = spec.histogram("engine.block_transition_dist");
        let span_id = spec.span("engine.block");
        let registry = if enabled {
            spec.build()
        } else {
            spec.build_noop()
        };
        (registry, words_id, transitions_id, dist_id, span_id)
    };
    let (noop, nw, nt, nd, ns) = build_registry(false);
    let (live, lw, lt, ld, ls) = build_registry(true);
    let mut noop_best = f64::INFINITY;
    let mut live_best = f64::INFINITY;
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let (n, l) = if round % 2 == 0 {
            let n = measure(&noop, nw, nt, nd, ns);
            let l = measure(&live, lw, lt, ld, ls);
            (n, l)
        } else {
            let l = measure(&live, lw, lt, ld, ls);
            let n = measure(&noop, nw, nt, nd, ns);
            (n, l)
        };
        noop_best = noop_best.min(n);
        live_best = live_best.min(l);
        ratios.push(l / n.max(1e-12));
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median_ratio = ratios[ratios.len() / 2];
    let noop_wps = words as f64 / noop_best.max(1e-9);
    let live_wps = words as f64 / live_best.max(1e-9);
    // Sanity-check the live pass actually recorded (each round walks
    // the whole stream once, so totals are exact multiples of it).
    if live.snapshot().counter("engine.block_words") != (words * rounds) as u64 {
        return Err("telemetry overhead pass lost block records".to_string());
    }
    let telemetry = OverheadRecord {
        blocks: words.div_ceil(BLOCK_WORDS) as u64,
        noop_words_per_sec: noop_wps,
        live_words_per_sec: live_wps,
        overhead_percent: (median_ratio - 1.0) * 100.0,
    };

    // The sweep: every code over the same stream, serial vs sharded.
    let cells: Vec<CodeKind> = CodeKind::all().to_vec();
    let sweep_cell = |kind: CodeKind| -> u64 {
        let mut enc = kind.encoder(params).expect("valid default params");
        count_transitions_slice(enc.as_mut(), &stream).total()
    };

    let start = Instant::now();
    let serial = SweepEngine::serial().run(cells.clone(), sweep_cell);
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let engine = SweepEngine::new(jobs);
    let start = Instant::now();
    let parallel = engine.run(cells.clone(), sweep_cell);
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    Ok(ThroughputReport {
        words,
        seed,
        kernels,
        sweep: SweepRecord {
            cells: cells.len(),
            jobs: engine.jobs(),
            serial_ms,
            parallel_ms,
            speedup: serial_ms / parallel_ms.max(1e-9),
            identical: serial == parallel,
        },
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        assert_eq!(benchmark_stream(1000, 42), benchmark_stream(1000, 42));
        assert_ne!(benchmark_stream(1000, 42), benchmark_stream(1000, 43));
    }

    #[test]
    fn report_is_consistent_and_identical_across_jobs() {
        let report = run_throughput(20_000, 42, 4).expect("harness runs");
        assert_eq!(report.kernels.len(), 2);
        assert_eq!(report.kernels[0].code, "binary");
        assert_eq!(report.kernels[1].code, "gray");
        assert!(report.sweep.identical, "jobs 4 diverged from serial");
        assert_eq!(report.sweep.cells, CodeKind::all().len());
        let json = report.render_json();
        assert!(json.contains("\"kernels\":["));
        assert!(json.contains("\"count_speedup\":"));
        assert!(json.contains("\"identical\":true"));
    }
}
