//! # buscode-engine
//!
//! The batch execution layer of the buscode workspace.
//!
//! The paper's Tables 2–9 — and every campaign built on top of them — are
//! bulk sweeps: many independent `(code, stream kind, width)` cells, each
//! of which is a pure function of its inputs. This crate provides the
//! machinery to run such sweeps at full machine speed without giving up
//! the bit-exact reproducibility the rest of the workspace is built on:
//!
//! - [`sweep`] — [`SweepEngine`], a `std::thread::scope`-based sharder
//!   that fans a job list across worker threads and returns results in
//!   input order, so a `--jobs 8` run is byte-identical to `--jobs 1`;
//! - [`cli`] — the unified command-line surface shared by every binary
//!   in the workspace (`paper_tables`, `buslint`, `faultrun`, `pipeline`,
//!   `asmrun`, `engine_bench`): common `--format`/`--metrics`/`--seed`/
//!   `--jobs`/`--quiet` flags, one JSON envelope, one [`cli::Report`]
//!   trait, one exit-code convention;
//! - [`throughput`] — the words/sec harness behind `BENCH_engine.json`,
//!   measuring the block-API kernels against the per-word seed path;
//! - [`backoff`] — the deterministic capped-exponential [`Backoff`]
//!   schedule shared by the pipeline supervisor's retry loop and the
//!   link layer's ARQ timers.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod backoff;
pub mod cli;
pub mod sweep;
pub mod throughput;

pub use backoff::Backoff;
pub use cli::{CommonArgs, Format, MetricsFormat, Outcome, Report, RunStatus, ToolRun};
pub use sweep::SweepEngine;
pub use throughput::{run_throughput, ThroughputReport};
