//! Capped exponential backoff, shared by every retry loop in the
//! workspace.
//!
//! Two retry surfaces grew the same arithmetic independently: the
//! pipeline supervisor's retransmission loop
//! (`buscode-pipeline::RecoveryPolicy`) and the link layer's ARQ timers
//! (`buscode-link`). Both charge `base << attempt` cycles per retry,
//! saturating at a cap. [`Backoff`] is that arithmetic extracted once:
//! deterministic (no jitter — a seeded campaign must replay bit for bit),
//! overflow-safe (attempt counts past 63 saturate instead of wrapping),
//! and cheap enough to construct per call site.
//!
//! # Examples
//!
//! ```
//! use buscode_engine::Backoff;
//!
//! let b = Backoff::new(2, 16);
//! assert_eq!(b.delay(0), 2);
//! assert_eq!(b.delay(1), 4);
//! assert_eq!(b.delay(3), 16);
//! assert_eq!(b.delay(1000), 16); // capped forever after
//! assert_eq!(b.total(4), 2 + 4 + 8 + 16);
//! ```

/// A deterministic capped exponential backoff schedule.
///
/// Attempt `n` (zero-based) is charged `min(base << n, cap)` cycles.
/// There is no jitter by design: every retry schedule in the workspace
/// must be a pure function of its inputs so sharded and serial campaign
/// runs stay byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Backoff {
    base: u64,
    cap: u64,
}

impl Backoff {
    /// Creates a schedule charging `base` cycles for the first retry,
    /// doubling per attempt, saturating at `cap`.
    #[must_use]
    pub const fn new(base: u64, cap: u64) -> Self {
        Backoff { base, cap }
    }

    /// The first-retry charge, in cycles.
    #[must_use]
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// The per-retry saturation cap, in cycles.
    #[must_use]
    pub const fn cap(&self) -> u64 {
        self.cap
    }

    /// The backoff charged for retry number `attempt` (zero-based), in
    /// cycles: `min(base << attempt, cap)`, saturating on shift overflow.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> u64 {
        if self.base == 0 {
            return 0;
        }
        // `checked_shl` only rejects shifts >= 64; a smaller shift can
        // still push every set bit off the top. The shift overflows
        // exactly when `attempt` exceeds the base's leading zeros.
        if attempt > self.base.leading_zeros() {
            self.cap
        } else {
            (self.base << attempt).min(self.cap)
        }
    }

    /// Total cycles charged across retries `0..attempts`, saturating.
    #[must_use]
    pub fn total(&self, attempts: u32) -> u64 {
        (0..attempts).fold(0u64, |sum, a| sum.saturating_add(self.delay(a)))
    }
}

impl Default for Backoff {
    /// The pipeline supervisor's historical schedule: base 1, cap 64.
    fn default() -> Self {
        Backoff::new(1, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_the_cap() {
        let b = Backoff::new(1, 64);
        let delays: Vec<u64> = (0..8).map(|a| b.delay(a)).collect();
        assert_eq!(delays, [1, 2, 4, 8, 16, 32, 64, 64]);
    }

    #[test]
    fn base_zero_never_charges() {
        let b = Backoff::new(0, 64);
        for attempt in 0..100 {
            assert_eq!(b.delay(attempt), 0);
        }
        assert_eq!(b.total(100), 0);
    }

    #[test]
    fn huge_attempt_counts_saturate_at_the_cap() {
        let b = Backoff::new(3, 1000);
        // A shift past 63 bits must saturate, not wrap or panic.
        assert_eq!(b.delay(63), 1000);
        assert_eq!(b.delay(64), 1000);
        assert_eq!(b.delay(u32::MAX), 1000);
        // A shift that pushes every set bit off the top (4 << 62 wraps
        // to zero in plain u64 arithmetic) must also hit the cap, never
        // drop back to a free retry.
        let wide = Backoff::new(4, 1000);
        assert_eq!(wide.delay(61), 1000);
        assert_eq!(wide.delay(62), 1000);
        assert_eq!(wide.delay(63), 1000);
    }

    #[test]
    fn is_jitter_free_and_deterministic() {
        // The same schedule queried twice (or from a copy) is identical:
        // no hidden state, no randomness.
        let a = Backoff::new(2, 32);
        let b = a;
        for attempt in 0..64 {
            assert_eq!(a.delay(attempt), b.delay(attempt));
            assert_eq!(a.delay(attempt), Backoff::new(2, 32).delay(attempt));
        }
    }

    #[test]
    fn total_sums_the_schedule() {
        let b = Backoff::new(1, 8);
        assert_eq!(b.total(0), 0);
        assert_eq!(b.total(1), 1);
        assert_eq!(b.total(5), 1 + 2 + 4 + 8 + 8);
    }

    #[test]
    fn default_matches_the_recovery_policy_schedule() {
        let b = Backoff::default();
        assert_eq!(b.base(), 1);
        assert_eq!(b.cap(), 64);
        assert_eq!(b.delay(0), 1);
        assert_eq!(b.delay(6), 64);
        assert_eq!(b.delay(7), 64);
    }
}
