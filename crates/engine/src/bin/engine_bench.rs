//! `engine_bench` — the batch-engine throughput smoke harness.
//!
//! Runs the block-API transition kernels and the sharded all-codes sweep
//! on a fixed-seed synthetic stream, writes the `BENCH_engine.json`
//! throughput record, and gates on correctness: the multi-thread sweep
//! must be bit-identical to the serial run, (with `--min-speedup`) the
//! batched transition-profile kernels (total + per-line counts, the
//! `speedup` field) must beat the per-word seed path by the given
//! factor, and (with `--max-overhead`) live telemetry must cost less
//! than the given percent of block-kernel throughput versus the no-op
//! registry. Total-only kernel throughput is reported alongside as the
//! `count_speedup` reference.
//!
//! ```text
//! engine_bench [--words N] [--out FILE] [--min-speedup X] [--max-overhead PCT]
//!              [--format text|json] [--metrics text|json|csv]
//!              [--seed S] [--jobs N] [--quiet]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use buscode_engine::cli::{self, CommonArgs, Outcome, Report, ToolRun, COMMON_USAGE};
use buscode_engine::throughput::run_throughput;

const TOOL: &str = "engine_bench";

fn usage() -> String {
    format!(
        "usage: engine_bench [--words N] [--out FILE] [--min-speedup X] \
         [--max-overhead PCT] {COMMON_USAGE}"
    )
}

struct Options {
    words: usize,
    out: Option<String>,
    min_speedup: f64,
    max_overhead: Option<f64>,
}

fn parse_tool_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        words: 1_000_000,
        out: Some("BENCH_engine.json".to_string()),
        min_speedup: 0.0,
        max_overhead: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--words" => {
                let value = it.next().ok_or("--words needs a value")?;
                opts.words = usize::try_from(cli::parse_u64("--words", value)?)
                    .map_err(|_| "--words out of range".to_string())?;
                if opts.words == 0 {
                    return Err("--words must be at least 1".to_string());
                }
            }
            "--out" => {
                let value = it.next().ok_or("--out needs a value")?;
                opts.out = if value == "-" {
                    None
                } else {
                    Some(value.clone())
                };
            }
            "--min-speedup" => {
                let value = it.next().ok_or("--min-speedup needs a value")?;
                opts.min_speedup = value
                    .parse::<f64>()
                    .map_err(|_| format!("--min-speedup: '{value}' is not a number"))?;
            }
            "--max-overhead" => {
                let value = it.next().ok_or("--max-overhead needs a value")?;
                let pct = value
                    .parse::<f64>()
                    .map_err(|_| format!("--max-overhead: '{value}' is not a number"))?;
                if pct <= 0.0 {
                    return Err("--max-overhead must be positive".to_string());
                }
                opts.max_overhead = Some(pct);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonArgs::extract(&mut args) {
        Ok(common) => common,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    if common.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_tool_args(&args) {
        Ok(opts) => opts,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    let run = ToolRun::new(TOOL, env!("CARGO_PKG_VERSION"), common);
    let seed = common.seed_or(42);

    let report = match run_throughput(opts.words, seed, common.jobs) {
        Ok(report) => report,
        Err(msg) => return run.finish(&Outcome::error(msg)),
    };

    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, Report::render_json(&report)) {
            return run.finish(&Outcome::error(format!("cannot write {path}: {e}")));
        }
    }

    let mut text = report.render_text();
    if let Some(path) = &opts.out {
        text.push_str(&format!("record written to {path}\n"));
    }

    let mut failures = Vec::new();
    if !report.sweep.identical {
        failures.push("multi-thread sweep diverged from the serial run".to_string());
    }
    let min_kernel = report.min_kernel_speedup();
    if min_kernel < opts.min_speedup {
        failures.push(format!(
            "kernel speedup {min_kernel:.2}x below the --min-speedup {:.2}x gate",
            opts.min_speedup
        ));
    }
    if let Some(max_overhead) = opts.max_overhead {
        let overhead = report.telemetry.overhead_percent;
        if overhead > max_overhead {
            failures.push(format!(
                "telemetry overhead {overhead:.2}% above the --max-overhead {max_overhead:.2}% gate"
            ));
        }
    }

    let data = Report::render_json(&report);
    let outcome = if failures.is_empty() {
        Outcome::success(text, data)
    } else {
        Outcome::failure(failures.join("; "), text, data)
    };
    run.finish(&outcome.with_metrics(report.metrics()))
}
