//! The sharded sweep engine.
//!
//! A sweep is a list of independent jobs — table rows, campaign cells,
//! soak configurations — mapped through a pure worker function. The
//! engine claims jobs with an atomic cursor, runs them on scoped threads,
//! and writes each result into the slot matching its input index, so the
//! output order (and therefore every rendered report) is independent of
//! scheduling. `--jobs 8` must be byte-identical to `--jobs 1`; the only
//! thing parallelism is allowed to change is wall-clock time.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use buscode_telemetry::MetricSet;

/// Shards independent jobs across worker threads with deterministic
/// result ordering.
///
/// # Examples
///
/// ```
/// use buscode_engine::SweepEngine;
///
/// let engine = SweepEngine::new(4);
/// let squares = engine.run((0u64..100).collect(), |n| n * n);
/// assert_eq!(squares[7], 49); // input order, regardless of scheduling
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SweepEngine {
    jobs: NonZeroUsize,
}

impl SweepEngine {
    /// Creates an engine with the given worker count.
    ///
    /// `0` asks the OS for the available parallelism (falling back to 1
    /// when that cannot be determined); any other value is used as-is.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        let jobs = match NonZeroUsize::new(jobs) {
            Some(n) => n,
            None => std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        };
        SweepEngine { jobs }
    }

    /// The single-threaded engine: runs every job inline on the caller's
    /// thread. This is the reference behavior every parallel run must
    /// reproduce byte-for-byte.
    #[must_use]
    pub fn serial() -> Self {
        SweepEngine {
            jobs: NonZeroUsize::MIN,
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs.get()
    }

    /// Runs `worker` over every input, returning outputs in input order.
    ///
    /// With one worker (or at most one input) everything runs inline on
    /// the calling thread — no threads are spawned, so the serial path
    /// has zero scheduling overhead. A panic in any worker propagates to
    /// the caller once the scope joins.
    pub fn run<In, Out, F>(&self, inputs: Vec<In>, worker: F) -> Vec<Out>
    where
        In: Send,
        Out: Send,
        F: Fn(In) -> Out + Sync,
    {
        let workers = self.jobs.get().min(inputs.len());
        if workers <= 1 {
            return inputs.into_iter().map(worker).collect();
        }

        let slots: Vec<Mutex<JobSlot<In, Out>>> = inputs
            .into_iter()
            .map(|input| Mutex::new(JobSlot::Pending(input)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let worker = &worker;
        let slots_ref = &slots;
        let cursor_ref = &cursor;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let index = cursor_ref.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots_ref.get(index) else {
                        break;
                    };
                    let input = {
                        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
                        match std::mem::replace(&mut *guard, JobSlot::Running) {
                            JobSlot::Pending(input) => input,
                            other => {
                                *guard = other;
                                continue;
                            }
                        }
                    };
                    let output = worker(input);
                    let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
                    *guard = JobSlot::Done(output);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                let inner = slot.into_inner().unwrap_or_else(|e| e.into_inner());
                match inner {
                    JobSlot::Done(output) => output,
                    // Unreachable unless a worker panicked, in which case
                    // the scope join above has already propagated it.
                    JobSlot::Pending(_) | JobSlot::Running => {
                        unreachable!("sweep job not completed")
                    }
                }
            })
            .collect()
    }

    /// [`SweepEngine::run`] with per-shard telemetry: each job records
    /// into its own fresh [`MetricSet`], and the shard sets are merged
    /// in *input order* after the sweep joins.
    ///
    /// Because every per-shard set starts empty and the merge walks the
    /// deterministic input order with commutative combine rules, the
    /// aggregated snapshot — like the outputs — is byte-identical for
    /// any worker count.
    pub fn run_metered<In, Out, F>(&self, inputs: Vec<In>, worker: F) -> (Vec<Out>, MetricSet)
    where
        In: Send,
        Out: Send,
        F: Fn(In, &mut MetricSet) -> Out + Sync,
    {
        let results = self.run(inputs, |input| {
            let mut shard = MetricSet::new();
            let output = worker(input, &mut shard);
            (output, shard)
        });
        let mut merged = MetricSet::new();
        let outputs = results
            .into_iter()
            .map(|(output, shard)| {
                merged.merge(&shard);
                output
            })
            .collect();
        (outputs, merged)
    }
}

impl Default for SweepEngine {
    /// Defaults to the serial engine: parallelism is always opt-in.
    fn default() -> Self {
        SweepEngine::serial()
    }
}

/// Lifecycle of one job inside [`SweepEngine::run`].
enum JobSlot<In, Out> {
    Pending(In),
    Running,
    Done(Out),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let inputs: Vec<u64> = (0..1000).collect();
        let serial = SweepEngine::serial().run(inputs.clone(), |n| n.wrapping_mul(0x9e37));
        let parallel = SweepEngine::new(8).run(inputs, |n| n.wrapping_mul(0x9e37));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn results_are_in_input_order() {
        // Make early jobs slow so late jobs finish first.
        let inputs: Vec<usize> = (0..32).collect();
        let outputs = SweepEngine::new(8).run(inputs, |n| {
            if n < 8 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            n * 10
        });
        assert_eq!(outputs, (0..32).map(|n| n * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let outputs: Vec<u32> = SweepEngine::new(4).run(Vec::<u32>::new(), |n| n);
        assert!(outputs.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        let outputs = SweepEngine::new(16).run(vec![41u32], |n| n + 1);
        assert_eq!(outputs, vec![42]);
    }

    #[test]
    fn zero_means_auto() {
        assert!(SweepEngine::new(0).jobs() >= 1);
        assert_eq!(SweepEngine::new(3).jobs(), 3);
    }

    #[test]
    fn metered_run_merges_shards_deterministically() {
        let inputs: Vec<u64> = (0..200).collect();
        let worker = |n: u64, metrics: &mut MetricSet| {
            metrics.add_counter("cells", 1);
            metrics.observe("value", n);
            n * 2
        };
        let (serial_out, serial_metrics) =
            SweepEngine::serial().run_metered(inputs.clone(), worker);
        let (parallel_out, parallel_metrics) = SweepEngine::new(8).run_metered(inputs, worker);
        assert_eq!(serial_out, parallel_out);
        assert_eq!(serial_metrics, parallel_metrics);
        assert_eq!(serial_metrics.render_json(), parallel_metrics.render_json());
        assert_eq!(serial_metrics.counter("cells"), 200);
    }

    #[test]
    fn non_copy_inputs_and_outputs() {
        let inputs: Vec<String> = (0..64).map(|i| format!("job-{i}")).collect();
        let expected: Vec<String> = inputs.iter().map(|s| s.to_uppercase()).collect();
        let outputs = SweepEngine::new(4).run(inputs, |s| s.to_uppercase());
        assert_eq!(outputs, expected);
    }
}
