//! System-on-chip evaluation: the end-to-end scenario the paper's
//! conclusions point at.
//!
//! A processor drives two address buses: a short on-chip bus to the L1
//! caches and — for the misses — a long off-chip bus through pads to the
//! L2/memory controller. The two buses see entirely different streams
//! (raw vs. miss-filtered, word stride vs. block stride) and carry very
//! different capacitance, so the best code can differ per level; this
//! module prices any code assignment across both levels at once.

use buscode_core::metrics::count_transitions;
use buscode_core::{Access, BusWidth, CodeKind, CodeParams, CodecError, Stride};
use buscode_logic::{milliwatts, Technology};
use buscode_trace::{filter_through_l1, CacheConfig};

use crate::pads::PadModel;

/// Electrical and architectural parameters of the two-level system.
#[derive(Clone, Copy, Debug)]
pub struct SocConfig {
    /// Bus width (both levels).
    pub width: BusWidth,
    /// L1 (processor-side) per-line bus capacitance, farads.
    pub l1_line_cap: f64,
    /// L2 (off-chip) per-line external load, farads.
    pub l2_line_cap: f64,
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Technology operating point.
    pub tech: Technology,
    /// Output pad model for the off-chip bus.
    pub pad: PadModel,
}

impl SocConfig {
    /// A representative 1998-class system: 0.5 pF on-chip bus, 50 pF
    /// off-chip bus, 8 KiB split caches with 16-byte blocks.
    pub fn date98() -> Self {
        SocConfig {
            width: BusWidth::MIPS,
            l1_line_cap: 0.5e-12,
            l2_line_cap: 50.0e-12,
            icache: CacheConfig::small_icache(),
            dcache: CacheConfig::small_dcache(),
            tech: Technology::date98(),
            pad: PadModel::date98(),
        }
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig::date98()
    }
}

/// The power picture of one code at one bus level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelEstimate {
    /// The code evaluated.
    pub code: CodeKind,
    /// Average bus transitions per cycle (all lines).
    pub transitions_per_cycle: f64,
    /// Bus (or pad-driven) power in milliwatts.
    pub bus_mw: f64,
}

/// A full two-level evaluation.
#[derive(Clone, Debug)]
pub struct SocReport {
    /// Transactions on the L1 (processor-side) bus.
    pub l1_transactions: u64,
    /// Transactions on the L2 (miss) bus.
    pub l2_transactions: u64,
    /// Instruction-cache hit rate.
    pub icache_hit_rate: f64,
    /// Data-cache hit rate.
    pub dcache_hit_rate: f64,
    /// Per code: the L1-bus estimate.
    pub l1: Vec<LevelEstimate>,
    /// Per code: the L2-bus estimate (pads driving the external load).
    pub l2: Vec<LevelEstimate>,
}

impl SocReport {
    /// The code with the lowest power at the L1 bus.
    pub fn best_l1(&self) -> Option<&LevelEstimate> {
        self.l1.iter().min_by(|a, b| a.bus_mw.total_cmp(&b.bus_mw))
    }

    /// The code with the lowest power at the L2 bus.
    pub fn best_l2(&self) -> Option<&LevelEstimate> {
        self.l2.iter().min_by(|a, b| a.bus_mw.total_cmp(&b.bus_mw))
    }
}

fn level_estimates(
    codes: &[CodeKind],
    params: CodeParams,
    stream: &[Access],
    line_cap: f64,
    tech: Technology,
) -> Result<Vec<LevelEstimate>, CodecError> {
    codes
        .iter()
        .map(|&code| {
            let mut enc = code.encoder(params)?;
            let stats = count_transitions(enc.as_mut(), stream.iter().copied());
            let watts = 0.5 * tech.vdd * tech.vdd * tech.frequency * stats.per_cycle() * line_cap;
            Ok(LevelEstimate {
                code,
                transitions_per_cycle: stats.per_cycle(),
                bus_mw: milliwatts(watts),
            })
        })
        .collect()
}

/// Prices every given code on both bus levels of the system for one
/// processor-side stream.
///
/// The L1 bus carries the raw stream at the machine stride; the L2 bus
/// carries the cache-miss stream at the *block* stride (sequential codes
/// are re-configured accordingly), with each line's switching charged at
/// the pad-driven external capacitance.
///
/// # Errors
///
/// Propagates construction errors from any code's encoder factory, or an
/// invalid block-size stride.
pub fn evaluate_soc(
    stream: &[Access],
    config: SocConfig,
    codes: &[CodeKind],
) -> Result<SocReport, CodecError> {
    let l1_params = CodeParams {
        width: config.width,
        stride: Stride::WORD,
    };
    let filtered = filter_through_l1(stream, config.icache, config.dcache);
    let l2_params = CodeParams {
        width: config.width,
        stride: Stride::new(config.icache.block_bytes, config.width)?,
    };
    let l1 = level_estimates(codes, l1_params, stream, config.l1_line_cap, config.tech)?;
    let l2 = level_estimates(
        codes,
        l2_params,
        &filtered.misses,
        config.pad.driven_cap(config.l2_line_cap),
        config.tech,
    )?;
    Ok(SocReport {
        l1_transactions: stream.len() as u64,
        l2_transactions: filtered.misses.len() as u64,
        icache_hit_rate: filtered.icache_hit_rate,
        dcache_hit_rate: filtered.dcache_hit_rate,
        l1,
        l2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use buscode_trace::MuxedModel;

    fn stream() -> Vec<Access> {
        MuxedModel::with_targets(0.6304, 0.1139, 0.5762).generate(30_000, 21)
    }

    #[test]
    fn report_covers_both_levels() {
        let codes = CodeKind::paper_codes();
        let report = evaluate_soc(&stream(), SocConfig::date98(), codes).unwrap();
        assert_eq!(report.l1.len(), codes.len());
        assert_eq!(report.l2.len(), codes.len());
        assert!(report.l2_transactions < report.l1_transactions);
        assert!(report.icache_hit_rate > 0.2);
    }

    #[test]
    fn l1_prefers_a_sequential_code() {
        let report = evaluate_soc(&stream(), SocConfig::date98(), CodeKind::paper_codes()).unwrap();
        let best = report.best_l1().unwrap();
        assert!(
            matches!(
                best.code,
                CodeKind::DualT0Bi | CodeKind::T0Bi | CodeKind::DualT0 | CodeKind::T0
            ),
            "{:?}",
            best.code
        );
    }

    #[test]
    fn l2_winner_may_differ_from_l1() {
        // Not asserted to differ (it depends on the stream), but both
        // must be real entries and binary must not win the L1 bus.
        let report = evaluate_soc(&stream(), SocConfig::date98(), CodeKind::paper_codes()).unwrap();
        assert_ne!(report.best_l1().unwrap().code, CodeKind::Binary);
        let l2_best = report.best_l2().unwrap();
        assert!(l2_best.bus_mw > 0.0);
    }

    #[test]
    fn l2_power_scales_with_external_load() {
        let mut config = SocConfig::date98();
        let small = evaluate_soc(&stream(), config, &[CodeKind::Binary]).unwrap();
        config.l2_line_cap *= 4.0;
        let large = evaluate_soc(&stream(), config, &[CodeKind::Binary]).unwrap();
        assert!(large.l2[0].bus_mw > 3.0 * small.l2[0].bus_mw);
    }

    #[test]
    fn empty_stream_is_harmless() {
        let report = evaluate_soc(&[], SocConfig::date98(), &[CodeKind::T0]).unwrap();
        assert_eq!(report.l1_transactions, 0);
        assert_eq!(report.l2_transactions, 0);
        assert_eq!(report.l1[0].bus_mw, 0.0);
    }
}
