//! System-level bus power: the end-to-end quantity the paper optimizes.
//!
//! For any behavioural code from `buscode-core`, this module combines the
//! code's measured bus-line transition counts with a line-capacitance
//! model — `P_bus = 1/2 Vdd^2 f * (transitions/cycle averaged in switched
//! capacitance)` — so every code (not just the three with gate-level
//! circuits) can be placed on the power axis of the trade-off the paper
//! explores.

use buscode_core::metrics::count_transitions;
use buscode_core::{Access, CodeKind, CodeParams, CodecError, TransitionStats};
use buscode_logic::{milliwatts, Technology};

/// A bus power estimate for one code on one stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BusPowerEstimate {
    /// The code.
    pub code: CodeKind,
    /// The transition statistics the estimate derives from.
    pub stats: TransitionStats,
    /// Average switched bus capacitance per cycle, farads.
    pub switched_cap_per_cycle: f64,
    /// Average bus power, milliwatts.
    pub bus_mw: f64,
}

/// Estimates the bus power of `code` driving `line_cap_pf` picofarads per
/// line on the given stream.
///
/// # Errors
///
/// Propagates construction errors from the code's encoder factory.
///
/// # Examples
///
/// ```
/// use buscode_core::{Access, CodeKind, CodeParams};
/// use buscode_logic::Technology;
/// use buscode_power::bus_power;
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let stream: Vec<Access> = (0..512u64).map(|i| Access::instruction(4 * i)).collect();
/// let params = CodeParams::default();
/// let tech = Technology::date98();
/// let t0 = bus_power(CodeKind::T0, params, &stream, 50.0, tech)?;
/// let binary = bus_power(CodeKind::Binary, params, &stream, 50.0, tech)?;
/// assert!(t0.bus_mw < binary.bus_mw);
/// # Ok(())
/// # }
/// ```
pub fn bus_power(
    code: CodeKind,
    params: CodeParams,
    stream: &[Access],
    line_cap_pf: f64,
    tech: Technology,
) -> Result<BusPowerEstimate, CodecError> {
    let mut encoder = code.encoder(params)?;
    let stats = count_transitions(encoder.as_mut(), stream.iter().copied());
    let line_cap = line_cap_pf * 1e-12;
    let switched_cap_per_cycle = stats.per_cycle() * line_cap;
    let bus_w = 0.5 * tech.vdd * tech.vdd * tech.frequency * switched_cap_per_cycle;
    Ok(BusPowerEstimate {
        code,
        stats,
        switched_cap_per_cycle,
        bus_mw: milliwatts(bus_w),
    })
}

/// A power-vs-reliability point: the same code bare and under
/// [`Hardened`][buscode_core::codes::Hardened], with the overhead the
/// parity line and refresh words cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardeningCost {
    /// The code.
    pub code: CodeKind,
    /// The refresh interval the hardened estimate used.
    pub refresh: u64,
    /// Bus power of the bare codec, milliwatts.
    pub bare_mw: f64,
    /// Bus power under the hardened wrapper, milliwatts.
    pub hardened_mw: f64,
}

impl HardeningCost {
    /// Power overhead of hardening, in percent of the bare power.
    pub fn overhead_percent(&self) -> f64 {
        if self.bare_mw == 0.0 {
            0.0
        } else {
            100.0 * (self.hardened_mw - self.bare_mw) / self.bare_mw
        }
    }
}

/// Estimates the bus power of `code` under the
/// [`Hardened`][buscode_core::codes::Hardened] wrapper: the same
/// transition-count model as [`bus_power`], but the counted lines include
/// the parity line and the refresh cycles' forced plain words. This is
/// the power side of the power-vs-reliability trade-off the fault
/// campaigns quantify the reliability side of.
///
/// # Errors
///
/// Propagates construction errors from the code's encoder factory and the
/// wrapper (`refresh == 0`).
pub fn hardened_bus_power(
    code: CodeKind,
    params: CodeParams,
    refresh: u64,
    stream: &[Access],
    line_cap_pf: f64,
    tech: Technology,
) -> Result<BusPowerEstimate, CodecError> {
    let mut encoder = code.hardened_encoder(params, refresh)?;
    let stats = count_transitions(&mut encoder, stream.iter().copied());
    let line_cap = line_cap_pf * 1e-12;
    let switched_cap_per_cycle = stats.per_cycle() * line_cap;
    let bus_w = 0.5 * tech.vdd * tech.vdd * tech.frequency * switched_cap_per_cycle;
    Ok(BusPowerEstimate {
        code,
        stats,
        switched_cap_per_cycle,
        bus_mw: milliwatts(bus_w),
    })
}

/// The bare-vs-hardened cost point for one code on one stream.
///
/// # Errors
///
/// Propagates [`bus_power`] and [`hardened_bus_power`] errors.
pub fn hardening_cost(
    code: CodeKind,
    params: CodeParams,
    refresh: u64,
    stream: &[Access],
    line_cap_pf: f64,
    tech: Technology,
) -> Result<HardeningCost, CodecError> {
    let bare = bus_power(code, params, stream, line_cap_pf, tech)?;
    let hardened = hardened_bus_power(code, params, refresh, stream, line_cap_pf, tech)?;
    Ok(HardeningCost {
        code,
        refresh,
        bare_mw: bare.bus_mw,
        hardened_mw: hardened.bus_mw,
    })
}

/// Estimates the bus power of `code` under the
/// [`EccHardened`][buscode_core::codes::EccHardened] wrapper: the counted
/// lines include the inner code's aux lines, the SEC-DED check lines, the
/// overall parity line, and the refresh cycles' forced plain words.
///
/// # Errors
///
/// Propagates construction errors from the code's encoder factory and the
/// wrapper (`refresh == 0`).
pub fn ecc_bus_power(
    code: CodeKind,
    params: CodeParams,
    refresh: u64,
    stream: &[Access],
    line_cap_pf: f64,
    tech: Technology,
) -> Result<BusPowerEstimate, CodecError> {
    let mut encoder = code.ecc_encoder(params, refresh)?;
    let stats = count_transitions(&mut encoder, stream.iter().copied());
    let line_cap = line_cap_pf * 1e-12;
    let switched_cap_per_cycle = stats.per_cycle() * line_cap;
    let bus_w = 0.5 * tech.vdd * tech.vdd * tech.frequency * switched_cap_per_cycle;
    Ok(BusPowerEstimate {
        code,
        stats,
        switched_cap_per_cycle,
        bus_mw: milliwatts(bus_w),
    })
}

/// The full redundancy ladder priced on one stream: the same code bare,
/// under parity detection ([`Hardened`][buscode_core::codes::Hardened]),
/// and under SEC-DED correction
/// ([`EccHardened`][buscode_core::codes::EccHardened]). This is the table
/// the adaptive redundancy manager consults when deciding what a tier
/// escalation costs in milliwatts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EccCost {
    /// The code.
    pub code: CodeKind,
    /// The refresh interval both hardened estimates used.
    pub refresh: u64,
    /// Bus power of the bare codec, milliwatts.
    pub bare_mw: f64,
    /// Bus power under parity detection, milliwatts.
    pub parity_mw: f64,
    /// Bus power under SEC-DED correction, milliwatts.
    pub ecc_mw: f64,
}

impl EccCost {
    /// Power overhead of parity detection, in percent of the bare power.
    pub fn parity_overhead_percent(&self) -> f64 {
        if self.bare_mw == 0.0 {
            0.0
        } else {
            100.0 * (self.parity_mw - self.bare_mw) / self.bare_mw
        }
    }

    /// Power overhead of SEC-DED correction, in percent of the bare power.
    pub fn ecc_overhead_percent(&self) -> f64 {
        if self.bare_mw == 0.0 {
            0.0
        } else {
            100.0 * (self.ecc_mw - self.bare_mw) / self.bare_mw
        }
    }

    /// What stepping up from parity to ECC costs, milliwatts.
    pub fn escalation_mw(&self) -> f64 {
        self.ecc_mw - self.parity_mw
    }
}

/// Prices the bare/parity/ECC redundancy ladder for one code on one
/// stream.
///
/// # Errors
///
/// Propagates [`bus_power`], [`hardened_bus_power`], and
/// [`ecc_bus_power`] errors.
pub fn ecc_cost(
    code: CodeKind,
    params: CodeParams,
    refresh: u64,
    stream: &[Access],
    line_cap_pf: f64,
    tech: Technology,
) -> Result<EccCost, CodecError> {
    let bare = bus_power(code, params, stream, line_cap_pf, tech)?;
    let parity = hardened_bus_power(code, params, refresh, stream, line_cap_pf, tech)?;
    let ecc = ecc_bus_power(code, params, refresh, stream, line_cap_pf, tech)?;
    Ok(EccCost {
        code,
        refresh,
        bare_mw: bare.bus_mw,
        parity_mw: parity.bus_mw,
        ecc_mw: ecc.bus_mw,
    })
}

/// What running demoted costs: the power savings of the configured code
/// that a degraded streaming pipeline forfeits while it drives plain
/// binary instead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradationCost {
    /// The configured code.
    pub code: CodeKind,
    /// Bus power of the configured code, milliwatts.
    pub code_mw: f64,
    /// Bus power of plain binary (the demotion target), milliwatts.
    pub binary_mw: f64,
    /// Fraction of words spent demoted, in `[0, 1]`.
    pub degraded_fraction: f64,
    /// Average milliwatts lost to demotion over the whole run:
    /// `degraded_fraction * (binary_mw - code_mw)`.
    pub penalty_mw: f64,
}

impl DegradationCost {
    /// The effective average bus power of the mixed run, milliwatts.
    pub fn effective_mw(&self) -> f64 {
        self.code_mw + self.penalty_mw
    }
}

/// Prices a streaming runtime's graceful degradation: estimates the bus
/// power of `code` and of plain binary on the same stream, then charges
/// the difference for the fraction of words the runtime spent demoted
/// (`buscode-pipeline` reports that fraction as `degraded_words / words`).
///
/// The penalty is zero when the code never demoted, and grows linearly to
/// the code's full savings over binary when it ran demoted throughout.
///
/// # Errors
///
/// Propagates [`bus_power`] errors; returns
/// [`CodecError::InvalidParameter`] when `degraded_fraction` is not a
/// proportion in `[0, 1]`.
pub fn degradation_cost(
    code: CodeKind,
    params: CodeParams,
    stream: &[Access],
    degraded_fraction: f64,
    line_cap_pf: f64,
    tech: Technology,
) -> Result<DegradationCost, CodecError> {
    if !(0.0..=1.0).contains(&degraded_fraction) {
        return Err(CodecError::InvalidParameter {
            name: "degraded_fraction",
            reason: format!("must be a proportion in [0, 1], got {degraded_fraction}"),
        });
    }
    let code_est = bus_power(code, params, stream, line_cap_pf, tech)?;
    let binary_est = bus_power(CodeKind::Binary, params, stream, line_cap_pf, tech)?;
    Ok(DegradationCost {
        code,
        code_mw: code_est.bus_mw,
        binary_mw: binary_est.bus_mw,
        degraded_fraction,
        penalty_mw: degraded_fraction * (binary_est.bus_mw - code_est.bus_mw),
    })
}

/// ARQ-vs-ECC energy per *delivered* word: what a retransmitting link
/// layer actually pays, next to what the always-on SEC-DED tier pays.
///
/// The two reliability strategies spend energy in opposite places. ARQ
/// keeps the steady-state bus lean (no check lines) but pays again for
/// every retransmitted frame plus the per-frame seq/CRC overhead lines;
/// ECC pays a fixed per-word premium for the check lines and never
/// retransmits a single flip. Which is cheaper depends on the channel:
/// below some loss rate ARQ wins, above it ECC wins — the crossover
/// EXPERIMENTS.md reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetransmissionCost {
    /// The code.
    pub code: CodeKind,
    /// The refresh interval the ECC estimate used.
    pub refresh: u64,
    /// Words the ARQ session delivered (the energy denominator).
    pub delivered_words: u64,
    /// Bus power of the bare codec on the clean stream, milliwatts — the
    /// floor both strategies pay their premium over.
    pub bare_mw: f64,
    /// Effective ARQ link power per delivered word, milliwatts:
    /// every transmitted frame's payload/aux transitions (retransmissions
    /// included) plus the seq/ctrl/CRC overhead-line transitions, divided
    /// by the words that actually got through.
    pub arq_mw: f64,
    /// Bus power of the SEC-DED tier per delivered word, milliwatts
    /// (every ECC cycle delivers, so per-cycle == per-delivered-word).
    pub ecc_mw: f64,
}

impl RetransmissionCost {
    /// ARQ premium over the bare bus, in percent.
    pub fn arq_overhead_percent(&self) -> f64 {
        if self.bare_mw == 0.0 {
            0.0
        } else {
            100.0 * (self.arq_mw - self.bare_mw) / self.bare_mw
        }
    }

    /// Positive when the ECC tier delivers words cheaper than the ARQ
    /// link does, milliwatts per delivered word.
    pub fn ecc_advantage_mw(&self) -> f64 {
        self.arq_mw - self.ecc_mw
    }

    /// True past the crossover: the channel is lossy enough that paying
    /// for check lines beats paying for retransmissions.
    pub fn ecc_wins(&self) -> bool {
        self.ecc_mw < self.arq_mw
    }
}

/// Prices an ARQ session against the ECC tier, per delivered word.
///
/// The ARQ side is measured, not modeled: `link_transitions` is the
/// payload+aux transition count over every frame the link actually drove
/// (retransmissions included) and `overhead_transitions` the transitions
/// on the frame-overhead lines (sequence, control, CRC) — both straight
/// from `buscode-link`'s session stats. The ECC side reuses
/// [`ecc_bus_power`] on the clean stream: SEC-DED absorbs single flips
/// in-flight, so its per-cycle power *is* its per-delivered-word power.
///
/// # Errors
///
/// Propagates codec construction errors; returns
/// [`CodecError::InvalidParameter`] when `delivered_words` is zero.
#[allow(clippy::too_many_arguments)]
pub fn retransmission_cost(
    code: CodeKind,
    params: CodeParams,
    refresh: u64,
    stream: &[Access],
    delivered_words: u64,
    link_transitions: u64,
    overhead_transitions: u64,
    line_cap_pf: f64,
    tech: Technology,
) -> Result<RetransmissionCost, CodecError> {
    if delivered_words == 0 {
        return Err(CodecError::InvalidParameter {
            name: "delivered_words",
            reason: "an ARQ session that delivered nothing has no per-word cost".to_string(),
        });
    }
    let bare = bus_power(code, params, stream, line_cap_pf, tech)?;
    let ecc = ecc_bus_power(code, params, refresh, stream, line_cap_pf, tech)?;
    let line_cap = line_cap_pf * 1e-12;
    let per_delivered = (link_transitions + overhead_transitions) as f64 / delivered_words as f64;
    let arq_w = 0.5 * tech.vdd * tech.vdd * tech.frequency * per_delivered * line_cap;
    Ok(RetransmissionCost {
        code,
        refresh,
        delivered_words,
        bare_mw: bare.bus_mw,
        arq_mw: milliwatts(arq_w),
        ecc_mw: ecc.bus_mw,
    })
}

/// Ranks every paper code by bus power on one stream (ascending).
///
/// # Errors
///
/// Propagates construction errors from any code's encoder factory.
pub fn rank_codes(
    params: CodeParams,
    stream: &[Access],
    line_cap_pf: f64,
    tech: Technology,
) -> Result<Vec<BusPowerEstimate>, CodecError> {
    let mut out = Vec::new();
    for &code in CodeKind::paper_codes() {
        out.push(bus_power(code, params, stream, line_cap_pf, tech)?);
    }
    out.sort_by(|a, b| a.bus_mw.total_cmp(&b.bus_mw));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use buscode_trace::{InstructionModel, MuxedModel};

    #[test]
    fn power_is_proportional_to_line_cap() {
        let stream: Vec<Access> = (0..256u64).map(|i| Access::instruction(4 * i)).collect();
        let params = CodeParams::default();
        let tech = Technology::date98();
        let a = bus_power(CodeKind::Binary, params, &stream, 10.0, tech).unwrap();
        let b = bus_power(CodeKind::Binary, params, &stream, 20.0, tech).unwrap();
        assert!((b.bus_mw - 2.0 * a.bus_mw).abs() / b.bus_mw < 1e-9);
    }

    #[test]
    fn t0_minimizes_power_on_instruction_streams() {
        let stream = InstructionModel::new(0.63).generate(20_000, 5);
        let ranking =
            rank_codes(CodeParams::default(), &stream, 50.0, Technology::date98()).unwrap();
        let first = ranking.first().unwrap().code;
        assert!(
            matches!(
                first,
                CodeKind::T0 | CodeKind::DualT0 | CodeKind::T0Bi | CodeKind::DualT0Bi
            ),
            "{first:?}"
        );
        // Binary is never the best code on a sequential stream.
        assert_ne!(first, CodeKind::Binary);
    }

    #[test]
    fn dual_t0bi_wins_on_muxed_streams() {
        // The paper's headline: dual T0_BI is the best code for the
        // multiplexed MIPS bus.
        let stream = MuxedModel::with_targets(0.6304, 0.1139, 0.5762).generate(40_000, 9);
        let ranking =
            rank_codes(CodeParams::default(), &stream, 50.0, Technology::date98()).unwrap();
        let names: Vec<&str> = ranking.iter().map(|e| e.code.name()).collect();
        let pos = |n: &str| names.iter().position(|&x| x == n).unwrap();
        assert!(pos("dual-t0-bi") < pos("t0"), "{names:?}");
        assert!(pos("dual-t0-bi") < pos("bus-invert"), "{names:?}");
        assert!(pos("dual-t0-bi") < pos("binary"), "{names:?}");
    }

    #[test]
    fn hardening_costs_power_and_shrinks_with_refresh() {
        let stream = InstructionModel::new(0.63).generate(8_000, 11);
        let params = CodeParams::default();
        let tech = Technology::date98();
        let tight = hardening_cost(CodeKind::T0, params, 8, &stream, 50.0, tech).unwrap();
        let loose = hardening_cost(CodeKind::T0, params, 128, &stream, 50.0, tech).unwrap();
        // The parity line and refresh words always cost something…
        assert!(tight.hardened_mw > tight.bare_mw);
        assert!(tight.overhead_percent() > 0.0);
        // …and refreshing less often costs less.
        assert!(loose.hardened_mw < tight.hardened_mw);
        assert_eq!(tight.bare_mw, loose.bare_mw);
    }

    #[test]
    fn the_redundancy_ladder_prices_monotonically() {
        let stream = InstructionModel::new(0.63).generate(8_000, 11);
        let params = CodeParams::default();
        let tech = Technology::date98();
        let ladder = ecc_cost(CodeKind::T0, params, 32, &stream, 50.0, tech).unwrap();
        // More redundant lines always switch more: bare < parity < ecc.
        assert!(ladder.parity_mw > ladder.bare_mw, "{ladder:?}");
        assert!(ladder.ecc_mw > ladder.parity_mw, "{ladder:?}");
        assert!(ladder.ecc_overhead_percent() > ladder.parity_overhead_percent());
        assert!(ladder.escalation_mw() > 0.0);
        // The bare and parity legs agree with the existing estimators.
        let parity = hardening_cost(CodeKind::T0, params, 32, &stream, 50.0, tech).unwrap();
        assert_eq!(ladder.bare_mw, parity.bare_mw);
        assert_eq!(ladder.parity_mw, parity.hardened_mw);
    }

    #[test]
    fn degradation_penalty_scales_with_demoted_fraction() {
        let stream = InstructionModel::new(0.63).generate(10_000, 3);
        let params = CodeParams::default();
        let tech = Technology::date98();
        let never = degradation_cost(CodeKind::T0, params, &stream, 0.0, 50.0, tech).unwrap();
        let half = degradation_cost(CodeKind::T0, params, &stream, 0.5, 50.0, tech).unwrap();
        let always = degradation_cost(CodeKind::T0, params, &stream, 1.0, 50.0, tech).unwrap();
        assert_eq!(never.penalty_mw, 0.0);
        // T0 beats binary on sequential streams, so demotion costs power…
        assert!(half.penalty_mw > 0.0);
        // …linearly in the time spent demoted.
        assert!((always.penalty_mw - 2.0 * half.penalty_mw).abs() < 1e-12);
        assert!((half.effective_mw() - (half.code_mw + half.penalty_mw)).abs() < 1e-12);
        // Fully demoted, the effective power is binary's.
        assert!((always.effective_mw() - always.binary_mw).abs() < 1e-9);
        // Out-of-domain fractions are rejected.
        assert!(degradation_cost(CodeKind::T0, params, &stream, 1.5, 50.0, tech).is_err());
    }

    #[test]
    fn retransmission_cost_prices_measured_transitions_per_delivered_word() {
        let stream = InstructionModel::new(0.63).generate(4_000, 17);
        let params = CodeParams::default();
        let tech = Technology::date98();
        // A clean link: transitions equal the bare stream's, everything
        // delivered, no overhead — the ARQ power must equal bare power.
        let bare = bus_power(CodeKind::T0, params, &stream, 50.0, tech).unwrap();
        let clean = retransmission_cost(
            CodeKind::T0,
            params,
            32,
            &stream,
            bare.stats.cycles,
            bare.stats.total(),
            0,
            50.0,
            tech,
        )
        .unwrap();
        assert!((clean.arq_mw - clean.bare_mw).abs() < 1e-12);
        assert!((clean.arq_overhead_percent()).abs() < 1e-9);
        // The ECC leg agrees with the direct estimator.
        let ecc = ecc_bus_power(CodeKind::T0, params, 32, &stream, 50.0, tech).unwrap();
        assert_eq!(clean.ecc_mw, ecc.bus_mw);
        // A clean channel is ARQ territory: no retransmissions, so ECC's
        // always-on check lines lose.
        assert!(!clean.ecc_wins());
        assert!(clean.ecc_advantage_mw() < 0.0);

        // Doubling the measured transitions doubles the per-word power;
        // past some point the crossover flips to ECC.
        let lossy = retransmission_cost(
            CodeKind::T0,
            params,
            32,
            &stream,
            bare.stats.cycles,
            4 * bare.stats.total(),
            bare.stats.total(),
            50.0,
            tech,
        )
        .unwrap();
        assert!((lossy.arq_mw - 5.0 * clean.arq_mw).abs() / lossy.arq_mw < 1e-9);
        assert!(lossy.ecc_wins());

        // A session that delivered nothing has no per-word cost.
        assert!(
            retransmission_cost(CodeKind::T0, params, 32, &stream, 0, 100, 0, 50.0, tech).is_err()
        );
    }

    #[test]
    fn stats_are_carried_through() {
        let stream: Vec<Access> = (0..64u64).map(|i| Access::instruction(4 * i)).collect();
        let est = bus_power(
            CodeKind::T0,
            CodeParams::default(),
            &stream,
            10.0,
            Technology::date98(),
        )
        .unwrap();
        assert_eq!(est.stats.cycles, 64);
        assert!(est.switched_cap_per_cycle >= 0.0);
    }
}
