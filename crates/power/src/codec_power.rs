//! Codec power sweeps: the machinery behind the paper's Tables 8 and 9.
//!
//! For each of the three codecs the paper compares (binary, T0, dual
//! T0_BI) the encoder and decoder circuits are simulated once over a
//! reference address stream — the per-net switching activities do not
//! depend on the attached load — and the dynamic power is then integrated
//! under a sweep of bus-load capacitances:
//!
//! - **on-chip** (Table 8): the encoder outputs drive an on-chip bus wire
//!   of `load` farads per line; the decoder outputs drive the same class
//!   of load into the receiving block;
//! - **off-chip** (Table 9): the encoder outputs drive output pads (input
//!   capacitance only), the pads drive `load` farads of external bus per
//!   line, and the decoder sees only on-chip capacitance. Pad power is
//!   reported separately, as in the paper.
//!
//! As the paper observes, the decoders of redundant codes must be driven
//! with the *encoded* streams, whose activities are reduced.

use buscode_core::{Access, AccessKind, BusState, BusWidth, Stride};
use buscode_logic::codecs::{
    binary_decoder, binary_encoder, bus_invert_decoder, bus_invert_encoder, dual_t0_decoder,
    dual_t0_encoder, dual_t0bi_decoder, dual_t0bi_encoder, gray_decoder, gray_encoder, t0_decoder,
    t0_encoder, t0bi_decoder, t0bi_encoder,
};
use buscode_logic::{milliwatts, CapacitanceModel, LogicError, NetId, Simulator, Technology};

use crate::pads::PadModel;

/// Power of one codec at one load point, in milliwatts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CodecPower {
    /// Codec name (`binary`, `t0`, `dual-t0-bi`).
    pub codec: &'static str,
    /// Encoder power (logic plus any directly attached load).
    pub encoder_mw: f64,
    /// Decoder power.
    pub decoder_mw: f64,
    /// Pad power (off-chip sweeps only).
    pub pads_mw: Option<f64>,
    /// Total: encoder + decoder + pads.
    pub global_mw: f64,
}

/// One load point of a sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadRow {
    /// Per-line load, picofarads.
    pub load_pf: f64,
    /// Codec entries, in `[binary, t0, dual-t0-bi]` order.
    pub entries: Vec<CodecPower>,
}

/// A completed sweep (one table of the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct CodecPowerTable {
    /// The sweep rows in ascending load order.
    pub rows: Vec<LoadRow>,
}

impl CodecPowerTable {
    /// The entry for `codec` at each load, as `(load_pf, global_mw)`.
    pub fn series(&self, codec: &str) -> Vec<(f64, f64)> {
        self.rows
            .iter()
            .filter_map(|row| {
                row.entries
                    .iter()
                    .find(|e| e.codec == codec)
                    .map(|e| (row.load_pf, e.global_mw))
            })
            .collect()
    }

    /// The smallest swept load at which `challenger`'s global power drops
    /// below `incumbent`'s, if any — the paper's "convenient for loads
    /// between X and Y" analysis.
    pub fn crossover(&self, incumbent: &str, challenger: &str) -> Option<f64> {
        let a = self.series(incumbent);
        let b = self.series(challenger);
        a.iter()
            .zip(&b)
            .find(|((_, pa), (_, pb))| pb < pa)
            .map(|((load, _), _)| *load)
    }

    /// The exact load (picofarads) at which `challenger` becomes cheaper
    /// than `incumbent`, solved from linear fits of both series.
    ///
    /// Dynamic power is affine in the per-line load capacitance
    /// (`P = P_codec + slope * C`), so a least-squares line through the
    /// sweep is exact up to measurement noise and the intersection can be
    /// solved in closed form. Returns `None` when the challenger never
    /// wins at any positive load (its line is above with equal-or-steeper
    /// slope), and `Some(0.0)` when it wins everywhere.
    pub fn crossover_exact(&self, incumbent: &str, challenger: &str) -> Option<f64> {
        fn fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
            let n = points.len() as f64;
            if points.len() < 2 {
                return None;
            }
            let sx: f64 = points.iter().map(|(x, _)| x).sum();
            let sy: f64 = points.iter().map(|(_, y)| y).sum();
            let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
            let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
            let denom = n * sxx - sx * sx;
            if denom.abs() < f64::EPSILON {
                return None;
            }
            let slope = (n * sxy - sx * sy) / denom;
            let intercept = (sy - slope * sx) / n;
            Some((intercept, slope))
        }
        let (ia, sa) = fit(&self.series(incumbent))?;
        let (ib, sb) = fit(&self.series(challenger))?;
        if sb >= sa {
            // The challenger does not gain on the incumbent as the load
            // grows, so there is no load beyond which it wins.
            return None;
        }
        // Below the intersection the incumbent wins (codec overhead),
        // above it the challenger's activity savings dominate.
        Some(((ib - ia) / (sa - sb)).max(0.0))
    }
}

/// The state needed to price one codec at any load: finished encoder and
/// decoder simulations plus the interface nets that receive the load.
struct CodecSims {
    name: &'static str,
    enc_sim: Simulator,
    enc_outputs: Vec<NetId>,
    dec_sim: Simulator,
    dec_outputs: Vec<NetId>,
    /// Bus-line activities (payload + redundant), for pad power.
    line_activity: Vec<f64>,
}

fn run_codec(
    name: &'static str,
    width: BusWidth,
    stride: Stride,
    stream: &[Access],
) -> Result<CodecSims, LogicError> {
    let (enc, dec) = match name {
        "binary" => (binary_encoder(width)?, binary_decoder(width)?),
        "gray" => (gray_encoder(width, stride)?, gray_decoder(width, stride)?),
        "bus-invert" => (bus_invert_encoder(width)?, bus_invert_decoder(width)?),
        "t0" => (t0_encoder(width, stride)?, t0_decoder(width, stride)?),
        "t0-bi" => (t0bi_encoder(width, stride)?, t0bi_decoder(width, stride)?),
        "dual-t0" => (
            dual_t0_encoder(width, stride)?,
            dual_t0_decoder(width, stride)?,
        ),
        "dual-t0-bi" => (
            dual_t0bi_encoder(width, stride)?,
            dual_t0bi_decoder(width, stride)?,
        ),
        name => return Err(LogicError::UnknownCodec { name }),
    };
    let (words, enc_sim) = enc.run(stream);
    let pairs: Vec<(BusState, AccessKind)> = words
        .iter()
        .zip(stream)
        .map(|(&w, a)| (w, a.kind))
        .collect();
    let (_, dec_sim) = dec.run(&pairs);

    let mut enc_outputs = enc.bus_out.clone();
    enc_outputs.extend_from_slice(&enc.aux_out);
    let line_activity = enc_outputs
        .iter()
        .map(|&net| enc_sim.activity(net))
        .collect();
    Ok(CodecSims {
        name,
        enc_sim,
        enc_outputs,
        dec_sim,
        dec_outputs: dec.address_out.clone(),
        line_activity,
    })
}

/// The codecs compared by Tables 8 and 9, in table order.
pub const TABLE_CODECS: [&str; 3] = ["binary", "t0", "dual-t0-bi"];

/// Every codec with a gate-level implementation, for extended ablations.
pub const ALL_CODECS: [&str; 7] = [
    "binary",
    "gray",
    "bus-invert",
    "t0",
    "t0-bi",
    "dual-t0",
    "dual-t0-bi",
];

/// Computes the on-chip codec power sweep (paper Table 8).
///
/// `loads_pf` are per-line on-chip bus capacitances in picofarads; the
/// paper sweeps fractions of a picofarad up to a few picofarads.
///
/// # Errors
///
/// Propagates circuit-construction errors from the gate-level builders.
pub fn onchip_table(
    stream: &[Access],
    loads_pf: &[f64],
    width: BusWidth,
    stride: Stride,
    tech: Technology,
) -> Result<CodecPowerTable, LogicError> {
    onchip_table_for(&TABLE_CODECS, stream, loads_pf, width, stride, tech)
}

/// [`onchip_table`] over an explicit codec list (any of [`ALL_CODECS`]).
///
/// # Errors
///
/// Propagates circuit-construction errors, and rejects codec names with
/// no gate-level implementation.
pub fn onchip_table_for(
    codecs: &[&'static str],
    stream: &[Access],
    loads_pf: &[f64],
    width: BusWidth,
    stride: Stride,
    tech: Technology,
) -> Result<CodecPowerTable, LogicError> {
    let sims: Vec<CodecSims> = codecs
        .iter()
        .map(|name| run_codec(name, width, stride, stream))
        .collect::<Result<_, _>>()?;
    let rows = loads_pf
        .iter()
        .map(|&load_pf| {
            let load = load_pf * 1e-12;
            let entries = sims
                .iter()
                .map(|codec| {
                    let mut enc_cap = CapacitanceModel::new(codec.enc_sim.netlist(), tech);
                    enc_cap.add_word_load(&codec.enc_outputs, load);
                    let encoder_mw = milliwatts(enc_cap.power(&codec.enc_sim));

                    let mut dec_cap = CapacitanceModel::new(codec.dec_sim.netlist(), tech);
                    dec_cap.add_word_load(&codec.dec_outputs, load);
                    let decoder_mw = milliwatts(dec_cap.power(&codec.dec_sim));

                    CodecPower {
                        codec: codec.name,
                        encoder_mw,
                        decoder_mw,
                        pads_mw: None,
                        global_mw: encoder_mw + decoder_mw,
                    }
                })
                .collect();
            LoadRow { load_pf, entries }
        })
        .collect();
    Ok(CodecPowerTable { rows })
}

/// Computes the off-chip codec power sweep (paper Table 9).
///
/// `loads_pf` are per-line *external* bus capacitances in picofarads (the
/// paper sweeps 20-100+ pF). Encoder outputs see only the pad input
/// capacitance; the pads switch `intrinsic + external` at the encoded
/// line activities; input-pad power at the decoder is neglected, as in
/// the paper.
///
/// # Errors
///
/// Propagates circuit-construction errors from the gate-level builders.
pub fn offchip_table(
    stream: &[Access],
    loads_pf: &[f64],
    width: BusWidth,
    stride: Stride,
    tech: Technology,
    pad: PadModel,
) -> Result<CodecPowerTable, LogicError> {
    offchip_table_for(&TABLE_CODECS, stream, loads_pf, width, stride, tech, pad)
}

/// [`offchip_table`] over an explicit codec list (any of [`ALL_CODECS`]).
///
/// # Errors
///
/// Propagates circuit-construction errors, and rejects codec names with
/// no gate-level implementation.
#[allow(clippy::too_many_arguments)] // a sweep is inherently a config bundle
pub fn offchip_table_for(
    codecs: &[&'static str],
    stream: &[Access],
    loads_pf: &[f64],
    width: BusWidth,
    stride: Stride,
    tech: Technology,
    pad: PadModel,
) -> Result<CodecPowerTable, LogicError> {
    let sims: Vec<CodecSims> = codecs
        .iter()
        .map(|name| run_codec(name, width, stride, stream))
        .collect::<Result<_, _>>()?;
    let rows = loads_pf
        .iter()
        .map(|&load_pf| {
            let load = load_pf * 1e-12;
            let entries = sims
                .iter()
                .map(|codec| {
                    let mut enc_cap = CapacitanceModel::new(codec.enc_sim.netlist(), tech);
                    enc_cap.add_word_load(&codec.enc_outputs, pad.input_cap);
                    let encoder_mw = milliwatts(enc_cap.power(&codec.enc_sim));

                    let pads_w: f64 = codec
                        .line_activity
                        .iter()
                        .map(|&alpha| pad.power(alpha, load, tech.vdd, tech.frequency))
                        .sum();
                    let pads_mw = milliwatts(pads_w);

                    let dec_cap = CapacitanceModel::new(codec.dec_sim.netlist(), tech);
                    let decoder_mw = milliwatts(dec_cap.power(&codec.dec_sim));

                    CodecPower {
                        codec: codec.name,
                        encoder_mw,
                        decoder_mw,
                        pads_mw: Some(pads_mw),
                        global_mw: encoder_mw + decoder_mw + pads_mw,
                    }
                })
                .collect();
            LoadRow { load_pf, entries }
        })
        .collect();
    Ok(CodecPowerTable { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use buscode_trace::MuxedModel;

    fn reference_stream() -> Vec<Access> {
        MuxedModel::with_targets(0.6304, 0.1139, 0.5762).generate(3000, 42)
    }

    #[test]
    fn onchip_codec_overhead_ordering_at_low_load() {
        // Paper Table 8: binary encoder is cheapest, the dual T0_BI
        // encoder is the most expensive at small on-chip loads.
        let table = onchip_table(
            &reference_stream(),
            &[0.1],
            BusWidth::MIPS,
            Stride::WORD,
            Technology::date98(),
        )
        .unwrap();
        let e = &table.rows[0].entries;
        assert!(e[0].encoder_mw < e[1].encoder_mw, "binary < t0");
        assert!(e[1].encoder_mw < e[2].encoder_mw, "t0 < dual t0-bi");
    }

    #[test]
    fn onchip_decoder_costs_are_comparable_for_t0_and_dual() {
        // Paper: "the power values of the decoders for the T0 and dual
        // T0_BI codes are comparable, due to the similarity in their
        // architectures."
        let table = onchip_table(
            &reference_stream(),
            &[0.4],
            BusWidth::MIPS,
            Stride::WORD,
            Technology::date98(),
        )
        .unwrap();
        let e = &table.rows[0].entries;
        let ratio = e[2].decoder_mw / e[1].decoder_mw;
        assert!(ratio > 0.5 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn onchip_gap_shrinks_with_load() {
        // Paper: the dual encoder overhead dominates at <= 0.4 pF, "while
        // for higher values the difference is reduced" (relatively).
        let table = onchip_table(
            &reference_stream(),
            &[0.1, 3.2],
            BusWidth::MIPS,
            Stride::WORD,
            Technology::date98(),
        )
        .unwrap();
        let rel_gap = |row: &LoadRow| {
            let e = &row.entries;
            (e[2].encoder_mw - e[1].encoder_mw) / e[1].encoder_mw
        };
        assert!(rel_gap(&table.rows[1]) < rel_gap(&table.rows[0]));
    }

    #[test]
    fn offchip_pads_dominate_at_large_loads() {
        let table = offchip_table(
            &reference_stream(),
            &[100.0],
            BusWidth::MIPS,
            Stride::WORD,
            Technology::date98(),
            PadModel::date98(),
        )
        .unwrap();
        for entry in &table.rows[0].entries {
            let pads = entry.pads_mw.unwrap();
            assert!(pads > entry.encoder_mw + entry.decoder_mw, "{entry:?}");
        }
    }

    #[test]
    fn offchip_encoded_codecs_win_at_large_loads() {
        // The headline of Table 9: activity reduction at the pads pays for
        // the codec; dual T0_BI is the recommendation for large loads.
        let table = offchip_table(
            &reference_stream(),
            &[200.0],
            BusWidth::MIPS,
            Stride::WORD,
            Technology::date98(),
            PadModel::date98(),
        )
        .unwrap();
        let e = &table.rows[0].entries;
        assert!(e[1].global_mw < e[0].global_mw, "t0 beats binary");
        assert!(e[2].global_mw < e[1].global_mw, "dual t0-bi beats t0");
    }

    #[test]
    fn crossover_analysis_finds_a_threshold() {
        let table = offchip_table(
            &reference_stream(),
            &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0],
            BusWidth::MIPS,
            Stride::WORD,
            Technology::date98(),
            PadModel::date98(),
        )
        .unwrap();
        // dual T0_BI eventually overtakes binary somewhere in the sweep.
        let cross = table.crossover("binary", "dual-t0-bi");
        assert!(cross.is_some());
        // And once it wins it keeps winning (monotone gap growth).
        let binary = table.series("binary");
        let dual = table.series("dual-t0-bi");
        let gaps: Vec<f64> = binary
            .iter()
            .zip(&dual)
            .map(|((_, pb), (_, pd))| pb - pd)
            .collect();
        for pair in gaps.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "gap shrank: {gaps:?}");
        }
    }

    #[test]
    fn exact_crossover_agrees_with_sweep() {
        let table = offchip_table(
            &reference_stream(),
            &[1.0, 5.0, 20.0, 50.0, 100.0],
            BusWidth::MIPS,
            Stride::WORD,
            Technology::date98(),
            PadModel::date98(),
        )
        .unwrap();
        let exact = table.crossover_exact("binary", "dual-t0-bi").unwrap();
        // The swept crossover is the first grid point past the exact one.
        let swept = table.crossover("binary", "dual-t0-bi").unwrap();
        assert!(exact <= swept, "exact {exact} vs swept {swept}");
        assert!(exact >= 0.0);
    }

    #[test]
    fn exact_crossover_none_when_never_winning() {
        // dual T0_BI never becomes *more* expensive than binary at large
        // loads, so the reverse query reports no crossover (or zero if it
        // is already cheaper with no load).
        let table = offchip_table(
            &reference_stream(),
            &[1.0, 50.0, 200.0],
            BusWidth::MIPS,
            Stride::WORD,
            Technology::date98(),
            PadModel::date98(),
        )
        .unwrap();
        assert_eq!(table.crossover_exact("dual-t0-bi", "binary"), None);
    }

    #[test]
    fn extended_codec_list_sweeps() {
        let table = onchip_table_for(
            &ALL_CODECS,
            &reference_stream(),
            &[0.5],
            BusWidth::MIPS,
            Stride::WORD,
            Technology::date98(),
        )
        .unwrap();
        assert_eq!(table.rows[0].entries.len(), 7);
        for e in &table.rows[0].entries {
            assert!(e.global_mw > 0.0, "{e:?}");
        }
        // Gray's combinational codec is cheaper than T0's registered one
        // (fewer gates *and* lower output activity on a correlated stream).
        let by = |n: &str| {
            table.rows[0]
                .entries
                .iter()
                .find(|e| e.codec == n)
                .unwrap()
                .encoder_mw
        };
        assert!(by("gray") < by("t0"));
        assert!(by("t0") < by("t0-bi"));
    }

    #[test]
    fn series_lookup() {
        let table = onchip_table(
            &reference_stream(),
            &[0.1, 0.2],
            BusWidth::MIPS,
            Stride::WORD,
            Technology::date98(),
        )
        .unwrap();
        assert_eq!(table.series("t0").len(), 2);
        assert!(table.series("nonexistent").is_empty());
    }
}
