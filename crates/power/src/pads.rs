//! I/O pad model for off-chip buses.
//!
//! "Pads usually represent the most power consuming part of the entire
//! chip" (paper Section 4.3). An output pad presents a small input
//! capacitance to the core logic driving it (the paper quotes 0.01 pF for
//! an 8 mA pad) and itself drives its intrinsic capacitance plus the
//! external bus load — tens to hundreds of picofarads — at the switching
//! activity of the encoded line. That reduction in pad-driven activity is
//! exactly where the codes' power gains come from.

/// Electrical model of one output pad.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PadModel {
    /// Capacitance the pad presents to the core driver, farads
    /// (paper: 0.01 pF for an 8 mA output pad).
    pub input_cap: f64,
    /// The pad's own output-stage capacitance, farads.
    pub intrinsic_cap: f64,
}

impl PadModel {
    /// The paper's 8 mA output pad in the 0.35 µm library.
    pub fn date98() -> Self {
        PadModel {
            input_cap: 0.01e-12,
            intrinsic_cap: 3.0e-12,
        }
    }

    /// Total capacitance the pad's output stage switches for a given
    /// external load (farads).
    pub fn driven_cap(&self, external_load: f64) -> f64 {
        self.intrinsic_cap + external_load
    }

    /// Average power (watts) of one pad toggling with activity `alpha`
    /// into `external_load` farads at `vdd` volts and `frequency` hertz.
    pub fn power(&self, alpha: f64, external_load: f64, vdd: f64, frequency: f64) -> f64 {
        0.5 * vdd * vdd * frequency * alpha * self.driven_cap(external_load)
    }
}

impl Default for PadModel {
    fn default() -> Self {
        PadModel::date98()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_power_scales_with_load_and_activity() {
        let pad = PadModel::date98();
        let p1 = pad.power(0.5, 50.0e-12, 3.3, 100.0e6);
        let p2 = pad.power(0.5, 100.0e-12, 3.3, 100.0e6);
        let p3 = pad.power(0.25, 100.0e-12, 3.3, 100.0e6);
        assert!(p2 > p1);
        assert!((p3 - p2 / 2.0).abs() / p2 < 1e-9);
    }

    #[test]
    fn pad_power_known_value() {
        // 0.5 * 3.3^2 * 100 MHz * 1.0 * (3 pF + 97 pF) = 54.45 mW.
        let pad = PadModel::date98();
        let p = pad.power(1.0, 97.0e-12, 3.3, 100.0e6);
        assert!((p - 54.45e-3).abs() < 1e-6, "{p}");
    }

    #[test]
    fn input_cap_is_tiny_versus_driven_cap() {
        let pad = PadModel::date98();
        assert!(pad.input_cap < pad.driven_cap(20.0e-12) / 1000.0);
    }
}
