//! # buscode-power
//!
//! System-level bus power models for the DATE'98 experiments: the I/O pad
//! model, the on-chip and off-chip codec power sweeps behind the paper's
//! Tables 8 and 9 (including the crossover analysis of which code is the
//! net winner at which load), and per-code bus power estimates for every
//! behavioural code.
//!
//! ## Example
//!
//! ```
//! use buscode_core::{BusWidth, Stride};
//! use buscode_logic::Technology;
//! use buscode_power::{offchip_table, PadModel};
//! use buscode_trace::MuxedModel;
//!
//! let stream = MuxedModel::with_targets(0.63, 0.11, 0.576).generate(2000, 1);
//! let table = offchip_table(
//!     &stream,
//!     &[20.0, 100.0],
//!     BusWidth::MIPS,
//!     Stride::WORD,
//!     Technology::date98(),
//!     PadModel::date98(),
//! )?;
//! assert_eq!(table.rows.len(), 2);
//! # Ok::<(), buscode_logic::LogicError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod codec_power;
mod pads;
mod soc;
mod system;

pub use codec_power::{
    offchip_table, offchip_table_for, onchip_table, onchip_table_for, CodecPower, CodecPowerTable,
    LoadRow, ALL_CODECS, TABLE_CODECS,
};
pub use pads::PadModel;
pub use soc::{evaluate_soc, LevelEstimate, SocConfig, SocReport};
pub use system::{
    bus_power, degradation_cost, ecc_bus_power, ecc_cost, hardened_bus_power, hardening_cost,
    rank_codes, retransmission_cost, BusPowerEstimate, DegradationCost, EccCost, HardeningCost,
    RetransmissionCost,
};
