//! The supervised streaming pipeline itself.

use buscode_core::{
    Access, BusState, CodeKind, CodeParams, CodecError, RecoveryClass, Snapshot, SnapshotDecoder,
    SnapshotEncoder, Tier,
};
use buscode_telemetry::MetricSet;

use crate::clock::{Clock, SystemClock};
use crate::policy::{DegradeMachine, DegradePolicy, Mode, RecoveryPolicy, Transition};
use crate::redundancy::{RedundancyManager, RedundancyPolicy, TierShift};

/// Errors that abort the pipeline (everything recoverable is handled by
/// policy and reported through [`PipelineMetrics`] instead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// A codec could not be constructed from the configuration.
    Config(CodecError),
    /// A fatal (non-recoverable) codec error surfaced at stream position
    /// `word`.
    Fatal {
        /// Zero-based index of the word being processed.
        word: u64,
        /// The underlying codec error.
        error: CodecError,
    },
    /// A checkpoint could not be parsed or does not match the
    /// configuration it is being restored under.
    Checkpoint {
        /// What went wrong.
        reason: String,
    },
}

impl core::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PipelineError::Config(e) => write!(f, "pipeline configuration error: {e}"),
            PipelineError::Fatal { word, error } => {
                write!(f, "fatal codec error at word {word}: {error}")
            }
            PipelineError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CodecError> for PipelineError {
    fn from(e: CodecError) -> Self {
        PipelineError::Config(e)
    }
}

/// The bus between encoder and decoder: given the absolute word index
/// and the word the encoder drove, returns the word the decoder sees.
///
/// An identity channel models a clean bus; the soak harness injects
/// faults here. Retransmissions call the channel again for the same word
/// index, drawing fresh faults — exactly like a real retried bus cycle.
pub trait Channel {
    /// Transmits one word.
    fn transmit(&mut self, word_index: u64, word: BusState) -> BusState;
}

impl<F: FnMut(u64, BusState) -> BusState> Channel for F {
    fn transmit(&mut self, word_index: u64, word: BusState) -> BusState {
        self(word_index, word)
    }
}

/// A clean (identity) channel.
pub fn clean_channel() -> impl Channel {
    |_: u64, word: BusState| word
}

/// Counters the supervisor accumulates over a run; the observable outcome
/// of every policy decision.
///
/// [`PipelineMetrics::metrics`] projects these counters onto the shared
/// `buscode-metrics/1` schema, so every tool reports pipeline health
/// through the same names.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineMetrics {
    /// Words fully processed (each input access counts once).
    pub words: u64,
    /// Words that decoded correctly on the first transmission.
    pub clean_words: u64,
    /// Words that saw at least one fault (any class).
    pub faulted_words: u64,
    /// Transient-class decode errors observed.
    pub transient_faults: u64,
    /// Retransmissions performed for transient faults.
    pub retries: u64,
    /// Total backoff charged across all retries, in bus cycles.
    pub backoff_cycles: u64,
    /// Desync events (inner protocol violations, verify mismatches, and
    /// transient retries that exhausted their budget).
    pub desyncs: u64,
    /// Forced plain-word resyncs performed.
    pub forced_resyncs: u64,
    /// Largest number of transmissions any single desync needed before
    /// the stream decoded correctly again.
    pub max_resync_gap: u64,
    /// Words abandoned with no correct decode (zero on a healthy run).
    pub unrecovered: u64,
    /// Demotions to plain binary.
    pub demotions: u64,
    /// Re-promotions back to the configured code.
    pub repromotions: u64,
    /// Words processed while demoted.
    pub degraded_words: u64,
    /// Chunks cut short by the watchdog.
    pub watchdog_fires: u64,
    /// Single-line flips the ECC tier corrected in-flight (no retry, no
    /// resync — observable only through this counter).
    pub corrected_faults: u64,
    /// Redundancy-tier escalations (one rung up the ladder each).
    pub escalations: u64,
    /// Redundancy-tier de-escalations (one rung down each).
    pub deescalations: u64,
    /// Words processed while the redundancy tier was ECC.
    pub ecc_words: u64,
}

impl PipelineMetrics {
    /// Projects every counter onto the shared telemetry schema under the
    /// `pipeline.` prefix. All values are deterministic counters, so the
    /// snapshot is byte-identical across `--jobs` settings.
    #[must_use]
    pub fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("pipeline.words", self.words);
        set.add_counter("pipeline.clean_words", self.clean_words);
        set.add_counter("pipeline.faulted_words", self.faulted_words);
        set.add_counter("pipeline.transient_faults", self.transient_faults);
        set.add_counter("pipeline.retries", self.retries);
        set.add_counter("pipeline.backoff_cycles", self.backoff_cycles);
        set.add_counter("pipeline.desyncs", self.desyncs);
        set.add_counter("pipeline.forced_resyncs", self.forced_resyncs);
        set.set_gauge("pipeline.max_resync_gap", self.max_resync_gap);
        set.add_counter("pipeline.unrecovered", self.unrecovered);
        set.add_counter("pipeline.demotions", self.demotions);
        set.add_counter("pipeline.repromotions", self.repromotions);
        set.add_counter("pipeline.degraded_words", self.degraded_words);
        set.add_counter("pipeline.watchdog_fires", self.watchdog_fires);
        set.add_counter("pipeline.corrected_faults", self.corrected_faults);
        set.add_counter("pipeline.escalations", self.escalations);
        set.add_counter("pipeline.deescalations", self.deescalations);
        set.add_counter("pipeline.ecc_words", self.ecc_words);
        set
    }
}

/// Configuration of a [`Pipeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// The configured (primary) code.
    pub kind: CodeKind,
    /// Bus width and stride.
    pub params: CodeParams,
    /// `Some(r)`: run the code under the `Hardened` wrapper with refresh
    /// interval `r`; `None`: run it bare.
    pub refresh: Option<u64>,
    /// Words per chunk (the bounded-memory unit of work).
    pub chunk_words: usize,
    /// Recovery policy.
    pub policy: RecoveryPolicy,
    /// Degradation policy.
    pub degrade: DegradePolicy,
    /// Adaptive-redundancy policy (disabled by default: the tier is
    /// pinned by [`PipelineConfig::refresh`]).
    pub redundancy: RedundancyPolicy,
    /// Per-chunk watchdog deadline in microseconds (`None`: no deadline).
    pub deadline_micros: Option<u64>,
}

impl PipelineConfig {
    /// A default configuration for `kind`: hardened with refresh 16,
    /// 4096-word chunks, default policies, no deadline.
    pub fn new(kind: CodeKind, params: CodeParams) -> Self {
        PipelineConfig {
            kind,
            params,
            refresh: Some(16),
            chunk_words: 4096,
            policy: RecoveryPolicy::default(),
            degrade: DegradePolicy::default(),
            redundancy: RedundancyPolicy::default(),
            deadline_micros: None,
        }
    }

    /// A configuration pinned to one protection tier — what a network
    /// session negotiates at open: bare runs the code alone, parity runs
    /// it hardened with refresh interval `refresh`, and ECC pins the
    /// redundancy ladder at its top rung (the manager never escalates
    /// above or de-escalates below it).
    pub fn fixed_tier(kind: CodeKind, params: CodeParams, tier: Tier, refresh: u64) -> Self {
        let mut config = PipelineConfig::new(kind, params);
        match tier {
            Tier::Bare => config.refresh = None,
            Tier::Parity => config.refresh = Some(refresh.max(1)),
            Tier::Ecc => {
                config.refresh = Some(refresh.max(1));
                config.redundancy = RedundancyPolicy {
                    enabled: true,
                    start: Tier::Ecc,
                    floor: Tier::Ecc,
                    stable_window: u64::MAX,
                    ..RedundancyPolicy::default()
                };
            }
        }
        config
    }

    /// The redundancy tier the pipeline starts at: the policy's start
    /// tier when adaptive, otherwise pinned by [`PipelineConfig::refresh`]
    /// (`None` → bare, `Some(_)` → parity).
    pub fn initial_tier(&self) -> Tier {
        if self.redundancy.enabled {
            self.redundancy.start
        } else if self.refresh.is_some() {
            Tier::Parity
        } else {
            Tier::Bare
        }
    }
}

/// The outcome of one [`Pipeline::run_chunk`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkReport {
    /// Words processed before the chunk ended.
    pub processed: usize,
    /// True when the watchdog cut the chunk short.
    pub truncated: bool,
}

/// The supervised streaming runtime; see the [crate docs](crate).
pub struct Pipeline {
    config: PipelineConfig,
    enc: Box<dyn SnapshotEncoder>,
    dec: Box<dyn SnapshotDecoder>,
    plain_enc: Box<dyn SnapshotEncoder>,
    plain_dec: Box<dyn SnapshotDecoder>,
    degrade: DegradeMachine,
    redundancy: RedundancyManager,
    stats: PipelineMetrics,
    position: u64,
    clock: Box<dyn Clock>,
}

type CodecPair = (Box<dyn SnapshotEncoder>, Box<dyn SnapshotDecoder>);

/// Refresh interval used for the parity and ECC tiers when the
/// configuration runs bare (`refresh: None`) but the adaptive manager
/// escalates anyway.
const DEFAULT_TIER_REFRESH: u64 = 16;

fn build_tier_pair(config: &PipelineConfig, tier: Tier) -> Result<CodecPair, CodecError> {
    let refresh = config.refresh.unwrap_or(DEFAULT_TIER_REFRESH);
    config
        .kind
        .build_snapshot_codec(config.params, tier, refresh)
}

impl Pipeline {
    /// Builds a pipeline with the real system clock.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Config`] when the codec construction
    /// rejects the parameters.
    pub fn new(config: PipelineConfig) -> Result<Self, PipelineError> {
        Self::with_clock(config, Box::new(SystemClock::new()))
    }

    /// Builds a pipeline with an explicit clock (tests use
    /// [`ManualClock`][crate::ManualClock]).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Config`] when the codec construction
    /// rejects the parameters.
    pub fn with_clock(
        config: PipelineConfig,
        clock: Box<dyn Clock>,
    ) -> Result<Self, PipelineError> {
        let tier = config.initial_tier();
        let (enc, dec) = build_tier_pair(&config, tier)?;
        let plain = CodeParams {
            width: config.params.width,
            stride: config.params.stride,
        };
        // Seed the manager at the effective tier so fixed-mode pipelines
        // report the tier they actually run at.
        let policy = RedundancyPolicy {
            start: tier,
            ..config.redundancy
        };
        Ok(Pipeline {
            enc,
            dec,
            plain_enc: CodeKind::Binary.snapshot_encoder(plain)?,
            plain_dec: CodeKind::Binary.snapshot_decoder(plain)?,
            degrade: DegradeMachine::new(config.degrade),
            redundancy: RedundancyManager::new(policy),
            stats: PipelineMetrics::default(),
            position: 0,
            clock,
            config,
        })
    }

    /// The configuration this pipeline runs.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> PipelineMetrics {
        self.stats
    }

    /// Words fully processed so far.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Whether the runtime is currently demoted to plain binary.
    pub fn mode(&self) -> Mode {
        self.degrade.mode()
    }

    /// The redundancy tier the primary codec pair currently runs at.
    pub fn tier(&self) -> Tier {
        self.redundancy.tier()
    }

    fn active_halves(&mut self) -> (&mut Box<dyn SnapshotEncoder>, &mut Box<dyn SnapshotDecoder>) {
        match self.degrade.mode() {
            Mode::Normal => (&mut self.enc, &mut self.dec),
            Mode::Degraded => (&mut self.plain_enc, &mut self.plain_dec),
        }
    }

    /// Drives one access through encode → channel → decode under the
    /// supervisor, applying the recovery and degradation policies.
    ///
    /// Returns the decoded address (equal to the masked input address on
    /// every recovered word).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Fatal`] only for
    /// [`RecoveryClass::Fatal`] codec errors; everything else is handled
    /// by policy and recorded in the statistics.
    pub fn process(
        &mut self,
        access: Access,
        channel: &mut dyn Channel,
    ) -> Result<u64, PipelineError> {
        let expected = access.address & self.config.params.width.mask();
        let position = self.position;
        let recovery = self.config.policy;
        let mut had_error = false;
        // In-flight ECC corrections are invisible to the decode result;
        // the counter delta is the only trace they leave.
        let corrected_before = self.dec.corrected_count();

        let (enc, dec) = self.active_halves();
        let wire_word = enc.encode(access);
        let pre_decode = dec.snapshot();
        let mut outcome = decode_once(dec.as_mut(), channel, position, wire_word, access, expected);

        // Transient faults: roll the decoder back and retransmit, with
        // capped exponential backoff (the shared schedule the link-layer
        // ARQ timers also run on), until the retry budget runs out.
        if recovery.enabled {
            let backoff = recovery.backoff();
            let mut attempt = 0u32;
            while let DecodeOutcome::Transient = outcome {
                had_error = true;
                self.stats.transient_faults += 1;
                if attempt >= recovery.max_retries {
                    // Escalate: treat the word as a desync.
                    outcome = DecodeOutcome::Desync;
                    break;
                }
                self.stats.retries += 1;
                self.stats.backoff_cycles += backoff.delay(attempt);
                attempt += 1;
                let (_, dec) = self.active_halves();
                dec.restore(&pre_decode)
                    .map_err(|error| PipelineError::Fatal {
                        word: position,
                        error,
                    })?;
                outcome = decode_once(dec.as_mut(), channel, position, wire_word, access, expected);
            }
        } else if !matches!(outcome, DecodeOutcome::Ok(_)) {
            had_error = true;
        }

        // Desync (or verify mismatch, or exhausted retries): force a
        // plain-word resync — reset both halves so the freshly reset
        // encoder emits a self-contained word — bounded by the policy's
        // resync budget.
        let decoded = match outcome {
            DecodeOutcome::Ok(addr) => {
                if had_error {
                    // Recovered through retries alone: gap of one word.
                    self.stats.max_resync_gap = self.stats.max_resync_gap.max(1);
                }
                addr
            }
            DecodeOutcome::Fatal(error) => {
                return Err(PipelineError::Fatal {
                    word: position,
                    error,
                });
            }
            DecodeOutcome::Transient | DecodeOutcome::Desync => {
                had_error = true;
                if recovery.enabled {
                    self.stats.desyncs += 1;
                    let mut recovered = None;
                    let mut gap = 0u64;
                    for _ in 0..recovery.resync_bound.max(1) {
                        gap += 1;
                        self.stats.forced_resyncs += 1;
                        let (enc, dec) = self.active_halves();
                        enc.reset();
                        dec.reset();
                        let plain_word = enc.encode(access);
                        match decode_once(
                            dec.as_mut(),
                            channel,
                            position,
                            plain_word,
                            access,
                            expected,
                        ) {
                            DecodeOutcome::Ok(addr) => {
                                recovered = Some(addr);
                                break;
                            }
                            DecodeOutcome::Fatal(error) => {
                                return Err(PipelineError::Fatal {
                                    word: position,
                                    error,
                                });
                            }
                            // Faulted again: resync once more.
                            DecodeOutcome::Transient | DecodeOutcome::Desync => {}
                        }
                    }
                    self.stats.max_resync_gap = self.stats.max_resync_gap.max(gap);
                    match recovered {
                        Some(addr) => addr,
                        None => {
                            self.stats.unrecovered += 1;
                            expected // the word is lost; carry on with the stream
                        }
                    }
                } else {
                    self.stats.unrecovered += 1;
                    expected
                }
            }
        };

        let corrected_delta = self.dec.corrected_count().saturating_sub(corrected_before);
        self.stats.corrected_faults += corrected_delta;
        self.stats.words += 1;
        if had_error {
            self.stats.faulted_words += 1;
        } else {
            self.stats.clean_words += 1;
        }
        if self.degrade.mode() == Mode::Degraded {
            self.stats.degraded_words += 1;
        }
        if self.redundancy.tier() == Tier::Ecc {
            self.stats.ecc_words += 1;
        }
        match self.degrade.on_word(position, had_error) {
            Some(Transition::Demote) => {
                self.stats.demotions += 1;
                // The plain pair starts from reset: stateless and synced.
                self.plain_enc.reset();
                self.plain_dec.reset();
            }
            Some(Transition::Repromote) => {
                self.stats.repromotions += 1;
                // Re-promote through a reset: both halves re-enter the
                // configured code from its self-contained initial state.
                self.enc.reset();
                self.dec.reset();
            }
            None => {}
        }
        // The redundancy estimator must see the faults the current tier
        // absorbed silently, or a fully-correcting ECC rung would look
        // clean and flap straight back into the noise.
        let had_fault = had_error || corrected_delta > 0;
        if let Some(shift) = self.redundancy.on_word(position, had_fault) {
            match shift {
                TierShift::Escalate => self.stats.escalations += 1,
                TierShift::Deescalate => self.stats.deescalations += 1,
            }
            // Rebuild both primary halves at the new tier from reset:
            // the freshly reset encoder's next word is self-contained,
            // so the tier switch doubles as a resync.
            let (enc, dec) =
                build_tier_pair(&self.config, self.redundancy.tier()).map_err(|error| {
                    PipelineError::Fatal {
                        word: position,
                        error,
                    }
                })?;
            self.enc = enc;
            self.dec = dec;
        }
        self.position += 1;
        Ok(decoded)
    }

    /// Processes up to one chunk of accesses, stopping early when the
    /// watchdog deadline expires.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError::Fatal`] from [`Pipeline::process`].
    pub fn run_chunk(
        &mut self,
        accesses: &[Access],
        channel: &mut dyn Channel,
    ) -> Result<ChunkReport, PipelineError> {
        let start = self.clock.now_micros();
        let mut processed = 0usize;
        for &access in accesses {
            if let Some(deadline) = self.config.deadline_micros {
                if self.clock.now_micros().saturating_sub(start) > deadline {
                    self.stats.watchdog_fires += 1;
                    return Ok(ChunkReport {
                        processed,
                        truncated: true,
                    });
                }
            }
            self.process(access, channel)?;
            processed += 1;
        }
        Ok(ChunkReport {
            processed,
            truncated: false,
        })
    }

    /// Runs an entire access stream through fixed-size chunks: memory use
    /// is bounded by [`PipelineConfig::chunk_words`] regardless of stream
    /// length. Chunks the watchdog cuts short are re-chunked and resumed,
    /// so every word is eventually processed.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError::Fatal`] from [`Pipeline::process`].
    pub fn run(
        &mut self,
        accesses: impl IntoIterator<Item = Access>,
        channel: &mut dyn Channel,
    ) -> Result<PipelineMetrics, PipelineError> {
        let chunk = self.config.chunk_words.max(1);
        let mut buf: Vec<Access> = Vec::with_capacity(chunk);
        for access in accesses {
            buf.push(access);
            if buf.len() == chunk {
                self.drain(&buf, channel)?;
                buf.clear();
            }
        }
        self.drain(&buf, channel)?;
        Ok(self.stats)
    }

    fn drain(
        &mut self,
        accesses: &[Access],
        channel: &mut dyn Channel,
    ) -> Result<(), PipelineError> {
        let mut rest = accesses;
        while !rest.is_empty() {
            let report = self.run_chunk(rest, channel)?;
            rest = &rest[report.processed..];
            if report.truncated && report.processed == 0 {
                // Deadline shorter than a single word: process one word
                // unconditionally so the stream always makes progress.
                if let Some((&first, tail)) = rest.split_first() {
                    self.process(first, channel)?;
                    rest = tail;
                }
            }
        }
        Ok(())
    }

    /// Captures the full runtime state — both primary codec snapshots,
    /// the degradation machine, the redundancy manager, the statistics,
    /// and the stream position.
    pub fn checkpoint(&self) -> crate::Checkpoint {
        crate::Checkpoint {
            code: self.config.kind,
            params: self.config.params,
            refresh: self.config.refresh,
            position: self.position,
            encoder: self.enc.snapshot(),
            decoder: self.dec.snapshot(),
            degrade: self.degrade.snapshot(),
            redundancy: self.redundancy.snapshot(),
            stats: self.stats,
        }
    }

    /// Rebuilds a pipeline from a checkpoint, resuming exactly where
    /// [`Pipeline::checkpoint`] captured it (with the real system clock).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Checkpoint`] when the checkpoint's codec
    /// header does not match `config` or a state image fails validation,
    /// and [`PipelineError::Config`] when the codecs cannot be built.
    pub fn from_checkpoint(
        config: PipelineConfig,
        checkpoint: &crate::Checkpoint,
    ) -> Result<Self, PipelineError> {
        Self::from_checkpoint_with_clock(config, checkpoint, Box::new(SystemClock::new()))
    }

    /// [`Pipeline::from_checkpoint`] with an explicit clock.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pipeline::from_checkpoint`].
    pub fn from_checkpoint_with_clock(
        config: PipelineConfig,
        checkpoint: &crate::Checkpoint,
        clock: Box<dyn Clock>,
    ) -> Result<Self, PipelineError> {
        if checkpoint.code != config.kind
            || checkpoint.params != config.params
            || checkpoint.refresh != config.refresh
        {
            return Err(PipelineError::Checkpoint {
                reason: format!(
                    "checkpoint was taken for {} (width {}, refresh {:?}), not the configured codec",
                    checkpoint.code,
                    checkpoint.params.width.bits(),
                    checkpoint.refresh
                ),
            });
        }
        let mut pipe = Self::with_clock(config, clock)?;
        if checkpoint.redundancy.tier != pipe.redundancy.tier() {
            if !config.redundancy.enabled {
                return Err(PipelineError::Checkpoint {
                    reason: format!(
                        "checkpoint was taken at redundancy tier '{}' but the pipeline runs a fixed '{}' tier",
                        checkpoint.redundancy.tier,
                        pipe.redundancy.tier()
                    ),
                });
            }
            // An adaptive run may checkpoint anywhere on the ladder:
            // rebuild the primary pair at the checkpointed tier before
            // restoring the state images into it.
            let (enc, dec) = build_tier_pair(&config, checkpoint.redundancy.tier)
                .map_err(PipelineError::Config)?;
            pipe.enc = enc;
            pipe.dec = dec;
        }
        pipe.redundancy.restore(checkpoint.redundancy);
        pipe.enc
            .restore(&checkpoint.encoder)
            .map_err(|e| PipelineError::Checkpoint {
                reason: format!("encoder state: {e}"),
            })?;
        pipe.dec
            .restore(&checkpoint.decoder)
            .map_err(|e| PipelineError::Checkpoint {
                reason: format!("decoder state: {e}"),
            })?;
        pipe.degrade.restore(checkpoint.degrade);
        pipe.stats = checkpoint.stats;
        pipe.position = checkpoint.position;
        Ok(pipe)
    }
}

/// What one transmission attempt produced, after end-to-end verification.
enum DecodeOutcome {
    /// Decoded and matched the transmitted address.
    Ok(u64),
    /// A transient-class decode error (retryable).
    Transient,
    /// A desync-class error or a verified wrong address.
    Desync,
    /// A fatal-class error.
    Fatal(CodecError),
}

fn decode_once(
    dec: &mut dyn SnapshotDecoder,
    channel: &mut dyn Channel,
    position: u64,
    word: BusState,
    access: Access,
    expected: u64,
) -> DecodeOutcome {
    let received = channel.transmit(position, word);
    match dec.decode(received, access.kind) {
        Ok(addr) if addr == expected => DecodeOutcome::Ok(addr),
        // The word decoded but to the wrong address: a silent corruption
        // caught by end-to-end verification — decoder state is suspect.
        Ok(_) => DecodeOutcome::Desync,
        Err(e) => match e.recovery_class() {
            RecoveryClass::Transient => DecodeOutcome::Transient,
            RecoveryClass::Desync => DecodeOutcome::Desync,
            RecoveryClass::Fatal => DecodeOutcome::Fatal(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use buscode_core::rng::Rng64;
    use buscode_fault::models::{flip_line, BusGeometry};

    fn stream(n: u64) -> impl Iterator<Item = Access> {
        (0..n).map(|i| {
            if i % 5 == 4 {
                Access::data(0x2_0000 + 16 * (i % 64))
            } else {
                Access::instruction(0x400 + 4 * i)
            }
        })
    }

    #[test]
    fn clean_run_over_every_code() {
        for kind in CodeKind::all() {
            for refresh in [None, Some(8)] {
                let mut config = PipelineConfig::new(kind, CodeParams::default());
                config.refresh = refresh;
                config.chunk_words = 64;
                let mut pipe = Pipeline::new(config).unwrap();
                let stats = pipe.run(stream(1000), &mut clean_channel()).unwrap();
                assert_eq!(stats.words, 1000, "{kind}");
                assert_eq!(stats.clean_words, 1000, "{kind}");
                assert_eq!(stats.unrecovered, 0, "{kind}");
                assert_eq!(stats.desyncs, 0, "{kind}");
            }
        }
    }

    #[test]
    fn decoded_addresses_match_inputs() {
        let config = PipelineConfig::new(CodeKind::DualT0Bi, CodeParams::default());
        let mut pipe = Pipeline::new(config).unwrap();
        let mut channel = clean_channel();
        for access in stream(500) {
            let decoded = pipe.process(access, &mut channel).unwrap();
            assert_eq!(decoded, access.address);
        }
    }

    #[test]
    fn transient_flip_is_retried_and_recovered() {
        // Hardened T0: a single flipped line is caught by parity
        // (transient) and the retransmission succeeds.
        let mut config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        config.degrade.enabled = false;
        let mut pipe = Pipeline::new(config).unwrap();
        let geometry = BusGeometry::new(32, 2);
        let mut hits = 0u64;
        let mut channel = |i: u64, mut w: BusState| {
            if i == 100 && hits == 0 {
                hits += 1;
                flip_line(&mut w, geometry, 7);
            }
            w
        };
        let stats = pipe.run(stream(300), &mut channel).unwrap();
        assert_eq!(stats.words, 300);
        assert_eq!(stats.transient_faults, 1);
        assert_eq!(stats.retries, 1);
        assert!(stats.backoff_cycles >= 1);
        assert_eq!(stats.unrecovered, 0);
        assert_eq!(stats.desyncs, 0);
    }

    #[test]
    fn silent_corruption_forces_a_resync() {
        // Bare T0 has no parity: a double flip decodes to a wrong
        // address, which verification catches as a desync.
        let mut config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        config.refresh = None;
        config.degrade.enabled = false;
        let mut pipe = Pipeline::new(config).unwrap();
        let geometry = BusGeometry::new(32, 1);
        let mut hits = 0u64;
        let mut channel = |i: u64, mut w: BusState| {
            if i == 50 && hits == 0 {
                hits += 1;
                flip_line(&mut w, geometry, 3);
            }
            w
        };
        let stats = pipe.run(stream(200), &mut channel).unwrap();
        assert_eq!(stats.words, 200);
        assert!(stats.desyncs >= 1);
        assert!(stats.forced_resyncs >= 1);
        assert!(stats.max_resync_gap >= 1);
        assert_eq!(stats.unrecovered, 0);
    }

    #[test]
    fn recovery_disabled_leaves_corruption_unrecovered() {
        let mut config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        config.refresh = None;
        config.policy.enabled = false;
        config.degrade.enabled = false;
        let mut pipe = Pipeline::new(config).unwrap();
        let geometry = BusGeometry::new(32, 1);
        let mut channel = |i: u64, mut w: BusState| {
            if i == 50 {
                flip_line(&mut w, geometry, 3);
            }
            w
        };
        let stats = pipe.run(stream(200), &mut channel).unwrap();
        assert!(stats.unrecovered >= 1);
    }

    #[test]
    fn burst_demotes_then_repromotes() {
        let mut config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        config.degrade = DegradePolicy {
            enabled: true,
            window: 64,
            demote_errors: 4,
            stable_window: 64,
        };
        let mut pipe = Pipeline::new(config).unwrap();
        let geometry = BusGeometry::new(32, 2);
        let mut rng = Rng64::seed_from_u64(7);
        let mut channel = move |i: u64, mut w: BusState| {
            // Heavy fault burst between words 200 and 280.
            if (200..280).contains(&i) && rng.gen_bool(0.5) {
                let line = rng.gen_range(0..34u32);
                flip_line(&mut w, geometry, line);
            }
            w
        };
        let stats = pipe.run(stream(1000), &mut channel).unwrap();
        assert!(stats.demotions >= 1, "{stats:?}");
        assert!(stats.repromotions >= 1, "{stats:?}");
        assert!(stats.degraded_words > 0);
        assert_eq!(stats.unrecovered, 0, "{stats:?}");
        assert_eq!(pipe.mode(), Mode::Normal);
    }

    #[test]
    fn adaptive_redundancy_walks_up_and_back_down() {
        let mut config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        config.degrade.enabled = false;
        config.redundancy = RedundancyPolicy {
            enabled: true,
            window: 64,
            escalate_faults: 4,
            stable_window: 256,
            start: Tier::Bare,
            floor: Tier::Bare,
        };
        let mut pipe = Pipeline::new(config).unwrap();
        assert_eq!(pipe.tier(), Tier::Bare);
        let geometry = BusGeometry::new(32, 0);
        let mut rng = Rng64::seed_from_u64(11);
        let mut channel = move |i: u64, mut w: BusState| {
            // A noisy stretch between words 100 and 400, payload lines
            // only so every tier sees the same fault surface.
            if (100..400).contains(&i) && rng.gen_bool(0.3) {
                let line = rng.gen_range(0..32u32);
                flip_line(&mut w, geometry, line);
            }
            w
        };
        let stats = pipe.run(stream(2000), &mut channel).unwrap();
        assert!(stats.escalations >= 2, "{stats:?}");
        assert!(stats.deescalations >= 1, "{stats:?}");
        assert!(stats.corrected_faults > 0, "{stats:?}");
        assert!(stats.ecc_words > 0, "{stats:?}");
        assert_eq!(stats.unrecovered, 0, "{stats:?}");
        assert_eq!(pipe.tier(), Tier::Bare, "{stats:?}");
    }

    #[test]
    fn fixed_tier_pins_every_rung() {
        let params = CodeParams::default();
        for &tier in Tier::all() {
            let config = PipelineConfig::fixed_tier(CodeKind::T0, params, tier, 16);
            assert_eq!(config.initial_tier(), tier);
            let mut pipe = Pipeline::new(config).unwrap();
            assert_eq!(pipe.tier(), tier);
            let stats = pipe.run(stream(300), &mut clean_channel()).unwrap();
            assert_eq!(stats.words, 300, "{tier}");
            assert_eq!(stats.unrecovered, 0, "{tier}");
            assert_eq!(stats.escalations, 0, "{tier}");
            assert_eq!(stats.deescalations, 0, "{tier}");
            assert_eq!(pipe.tier(), tier);
        }
        // The ECC rung stays pinned even under sustained faults.
        let config = PipelineConfig::fixed_tier(CodeKind::T0, params, Tier::Ecc, 16);
        let mut pipe = Pipeline::new(config).unwrap();
        let geometry = BusGeometry::new(32, 0);
        let mut channel = move |_: u64, mut w: BusState| {
            flip_line(&mut w, geometry, 4);
            w
        };
        let stats = pipe.run(stream(200), &mut channel).unwrap();
        assert_eq!(stats.corrected_faults, 200);
        assert_eq!(pipe.tier(), Tier::Ecc);
    }

    #[test]
    fn fixed_mode_pins_the_tier() {
        let mut config = PipelineConfig::new(CodeKind::Gray, CodeParams::default());
        config.refresh = Some(8);
        assert_eq!(config.initial_tier(), Tier::Parity);
        let pipe = Pipeline::new(config).unwrap();
        assert_eq!(pipe.tier(), Tier::Parity);
        config.refresh = None;
        let mut pipe = Pipeline::new(config).unwrap();
        assert_eq!(pipe.tier(), Tier::Bare);
        // Faults never move a fixed-mode pipeline off its tier.
        let geometry = BusGeometry::new(32, 0);
        let mut channel = move |i: u64, mut w: BusState| {
            if i.is_multiple_of(3) {
                flip_line(&mut w, geometry, 2);
            }
            w
        };
        let stats = pipe.run(stream(500), &mut channel).unwrap();
        assert_eq!(stats.escalations, 0);
        assert_eq!(stats.ecc_words, 0);
        assert_eq!(pipe.tier(), Tier::Bare);
    }

    #[test]
    fn silent_corrections_hold_the_ecc_tier() {
        // Every word arrives with one flipped line; ECC corrects them all
        // in-flight, so no decode ever errors — yet the estimator must
        // not read the stream as clean and de-escalate into the noise.
        let mut config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        config.degrade.enabled = false;
        config.redundancy = RedundancyPolicy {
            enabled: true,
            window: 32,
            escalate_faults: 4,
            stable_window: 16,
            start: Tier::Ecc,
            floor: Tier::Bare,
        };
        let mut pipe = Pipeline::new(config).unwrap();
        let geometry = BusGeometry::new(32, 0);
        let mut channel = move |_: u64, mut w: BusState| {
            flip_line(&mut w, geometry, 5);
            w
        };
        let stats = pipe.run(stream(200), &mut channel).unwrap();
        assert_eq!(stats.corrected_faults, 200, "{stats:?}");
        assert_eq!(stats.clean_words, 200, "{stats:?}");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.deescalations, 0, "{stats:?}");
        assert_eq!(pipe.tier(), Tier::Ecc);
    }

    #[test]
    fn checkpoint_restores_an_escalated_tier() {
        let mut config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        config.degrade.enabled = false;
        config.redundancy = RedundancyPolicy {
            enabled: true,
            window: 64,
            escalate_faults: 2,
            stable_window: u64::MAX,
            start: Tier::Bare,
            floor: Tier::Bare,
        };
        let mut pipe = Pipeline::new(config).unwrap();
        let geometry = BusGeometry::new(32, 0);
        let mut channel = move |i: u64, mut w: BusState| {
            if i < 8 {
                flip_line(&mut w, geometry, (i % 32) as u32);
            }
            w
        };
        let accesses: Vec<Access> = stream(300).collect();
        for &a in &accesses[..150] {
            pipe.process(a, &mut channel).unwrap();
        }
        assert_eq!(pipe.tier(), Tier::Ecc);
        let checkpoint = pipe.checkpoint();
        let mut resumed = Pipeline::from_checkpoint(config, &checkpoint).unwrap();
        assert_eq!(resumed.tier(), Tier::Ecc);
        for &a in &accesses[150..] {
            let x = pipe.process(a, &mut clean_channel()).unwrap();
            let y = resumed.process(a, &mut clean_channel()).unwrap();
            assert_eq!(x, y);
        }
        assert_eq!(pipe.stats(), resumed.stats());
        assert_eq!(pipe.checkpoint().encoder, resumed.checkpoint().encoder);
    }

    #[test]
    fn fixed_mode_rejects_a_checkpoint_from_another_tier() {
        let mut adaptive = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        adaptive.degrade.enabled = false;
        adaptive.redundancy = RedundancyPolicy {
            enabled: true,
            window: 64,
            escalate_faults: 2,
            stable_window: u64::MAX,
            start: Tier::Ecc,
            floor: Tier::Bare,
        };
        let pipe = Pipeline::new(adaptive).unwrap();
        let checkpoint = pipe.checkpoint();
        let mut fixed = adaptive;
        fixed.redundancy = RedundancyPolicy::default();
        match Pipeline::from_checkpoint(fixed, &checkpoint) {
            Err(PipelineError::Checkpoint { reason }) => {
                assert!(reason.contains("fixed"), "{reason}");
            }
            Err(other) => panic!("expected a checkpoint error, got {other:?}"),
            Ok(_) => panic!("a fixed-tier pipeline accepted a mismatched-tier checkpoint"),
        }
    }

    #[test]
    fn watchdog_cuts_chunks_short_but_the_stream_completes() {
        let mut config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        config.chunk_words = 100;
        config.deadline_micros = Some(50);
        // Each clock read advances 10us: ~5 words fit in a deadline.
        let clock = ManualClock::advancing(10);
        let mut pipe = Pipeline::with_clock(config, Box::new(clock)).unwrap();
        let stats = pipe.run(stream(500), &mut clean_channel()).unwrap();
        assert_eq!(stats.words, 500);
        assert!(stats.watchdog_fires > 0);
        assert_eq!(stats.unrecovered, 0);
    }

    #[test]
    fn fatal_errors_abort() {
        let config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        let mut pipe = Pipeline::new(config).unwrap();
        // Corrupt the decoder image on purpose to force a Fatal error
        // path through restore during a retry: simplest is a direct
        // restore with a wrong image.
        let bad = buscode_core::StateImage::new("gray", vec![]);
        assert!(pipe.dec.restore(&bad).is_err());
    }
}
