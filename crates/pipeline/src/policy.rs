//! Recovery and degradation policies, and the degradation state machine.

use buscode_engine::Backoff;

/// How the supervisor reacts to recoverable decode errors.
///
/// Transient faults are retried (retransmitted) with capped exponential
/// backoff; desyncs force a plain-word resync of both codec halves. With
/// `enabled == false` the supervisor only *counts* — nothing is repaired,
/// which is the baseline the `--soak` CI gate proves is unacceptable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Master switch; `false` turns every recovery action off.
    pub enabled: bool,
    /// Retransmission attempts for one transient fault before escalating
    /// to the desync path.
    pub max_retries: u32,
    /// Backoff charged for the first retry, in bus cycles.
    pub backoff_base: u64,
    /// Cap on the per-retry backoff, in bus cycles.
    pub backoff_cap: u64,
    /// Forced-resync attempts for one desync before the word is declared
    /// unrecovered. This is the "refresh bound" the soak gate checks
    /// resync gaps against.
    pub resync_bound: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            max_retries: 3,
            backoff_base: 1,
            backoff_cap: 64,
            resync_bound: 16,
        }
    }
}

impl RecoveryPolicy {
    /// The backoff schedule this policy charges retries against.
    pub fn backoff(&self) -> Backoff {
        Backoff::new(self.backoff_base, self.backoff_cap)
    }

    /// The capped exponential backoff charged for retry number `attempt`
    /// (zero-based), in bus cycles.
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        self.backoff().delay(attempt)
    }
}

/// When to demote the configured code to plain binary, and when to
/// re-promote it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Master switch for the degradation machine.
    pub enabled: bool,
    /// Length of the error-rate observation window, in words.
    pub window: u64,
    /// Number of faulted words within one window that triggers demotion.
    pub demote_errors: u32,
    /// Consecutive clean words required (while demoted) before the
    /// configured code is re-promoted.
    pub stable_window: u64,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            enabled: true,
            window: 256,
            demote_errors: 8,
            stable_window: 512,
        }
    }
}

/// Which codec pair is currently on the bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The configured code is active.
    Normal,
    /// The runtime has demoted to plain binary.
    Degraded,
}

impl core::fmt::Display for Mode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Mode::Normal => "normal",
            Mode::Degraded => "degraded",
        })
    }
}

/// A demote/re-promote decision emitted by the machine for one word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Transition {
    Demote,
    Repromote,
}

/// The mutable registers of the degradation machine, exposed so
/// checkpoints can carry them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradeSnapshot {
    /// Current mode.
    pub mode: Mode,
    /// Word index where the current observation window started.
    pub window_start: u64,
    /// Faulted words observed in the current window.
    pub window_errors: u32,
    /// Consecutive clean words observed while demoted.
    pub clean_run: u64,
}

/// The error-rate-driven demote/re-promote state machine.
///
/// Word-indexed and fully deterministic: feed it one `(word_index,
/// had_error)` observation per word and apply the transitions it returns.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DegradeMachine {
    policy: DegradePolicy,
    mode: Mode,
    window_start: u64,
    window_errors: u32,
    clean_run: u64,
}

impl DegradeMachine {
    pub(crate) fn new(policy: DegradePolicy) -> Self {
        DegradeMachine {
            policy,
            mode: Mode::Normal,
            window_start: 0,
            window_errors: 0,
            clean_run: 0,
        }
    }

    pub(crate) fn mode(&self) -> Mode {
        self.mode
    }

    pub(crate) fn snapshot(&self) -> DegradeSnapshot {
        DegradeSnapshot {
            mode: self.mode,
            window_start: self.window_start,
            window_errors: self.window_errors,
            clean_run: self.clean_run,
        }
    }

    pub(crate) fn restore(&mut self, snap: DegradeSnapshot) {
        self.mode = snap.mode;
        self.window_start = snap.window_start;
        self.window_errors = snap.window_errors;
        self.clean_run = snap.clean_run;
    }

    /// Observes one word; returns a transition the runtime must apply.
    pub(crate) fn on_word(&mut self, word_index: u64, had_error: bool) -> Option<Transition> {
        if !self.policy.enabled {
            return None;
        }
        match self.mode {
            Mode::Normal => {
                if word_index.saturating_sub(self.window_start) >= self.policy.window {
                    self.window_start = word_index;
                    self.window_errors = 0;
                }
                if had_error {
                    self.window_errors += 1;
                    if self.window_errors >= self.policy.demote_errors {
                        self.mode = Mode::Degraded;
                        self.clean_run = 0;
                        return Some(Transition::Demote);
                    }
                }
                None
            }
            Mode::Degraded => {
                if had_error {
                    self.clean_run = 0;
                } else {
                    self.clean_run += 1;
                    if self.clean_run >= self.policy.stable_window {
                        self.mode = Mode::Normal;
                        self.window_start = word_index;
                        self.window_errors = 0;
                        return Some(Transition::Repromote);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RecoveryPolicy {
            backoff_base: 2,
            backoff_cap: 16,
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff_cycles(0), 2);
        assert_eq!(p.backoff_cycles(1), 4);
        assert_eq!(p.backoff_cycles(2), 8);
        assert_eq!(p.backoff_cycles(3), 16);
        assert_eq!(p.backoff_cycles(10), 16);
        assert_eq!(p.backoff_cycles(200), 16);
    }

    #[test]
    fn demotes_at_threshold_and_repromotes_after_stable_window() {
        let policy = DegradePolicy {
            enabled: true,
            window: 16,
            demote_errors: 3,
            stable_window: 8,
        };
        let mut m = DegradeMachine::new(policy);
        let mut word = 0u64;
        // Two errors: still normal.
        assert_eq!(m.on_word(word, true), None);
        word += 1;
        assert_eq!(m.on_word(word, true), None);
        word += 1;
        // Third error in the window: demote.
        assert_eq!(m.on_word(word, true), Some(Transition::Demote));
        assert_eq!(m.mode(), Mode::Degraded);
        // Seven clean words: still degraded.
        for _ in 0..7 {
            word += 1;
            assert_eq!(m.on_word(word, false), None);
        }
        // Eighth clean word: re-promote.
        word += 1;
        assert_eq!(m.on_word(word, false), Some(Transition::Repromote));
        assert_eq!(m.mode(), Mode::Normal);
    }

    #[test]
    fn window_roll_forgets_old_errors() {
        let policy = DegradePolicy {
            enabled: true,
            window: 4,
            demote_errors: 2,
            stable_window: 8,
        };
        let mut m = DegradeMachine::new(policy);
        assert_eq!(m.on_word(0, true), None);
        // The next error lands in a fresh window: no demotion.
        assert_eq!(m.on_word(10, true), None);
        assert_eq!(m.mode(), Mode::Normal);
        // Two errors in the same window demote.
        assert_eq!(m.on_word(11, true), Some(Transition::Demote));
    }

    #[test]
    fn error_while_degraded_resets_the_clean_run() {
        let policy = DegradePolicy {
            enabled: true,
            window: 4,
            demote_errors: 1,
            stable_window: 3,
        };
        let mut m = DegradeMachine::new(policy);
        assert_eq!(m.on_word(0, true), Some(Transition::Demote));
        assert_eq!(m.on_word(1, false), None);
        assert_eq!(m.on_word(2, false), None);
        assert_eq!(m.on_word(3, true), None); // resets the run
        assert_eq!(m.on_word(4, false), None);
        assert_eq!(m.on_word(5, false), None);
        assert_eq!(m.on_word(6, false), Some(Transition::Repromote));
    }

    #[test]
    fn disabled_machine_never_transitions() {
        let policy = DegradePolicy {
            enabled: false,
            window: 1,
            demote_errors: 1,
            stable_window: 1,
        };
        let mut m = DegradeMachine::new(policy);
        for i in 0..100 {
            assert_eq!(m.on_word(i, true), None);
        }
        assert_eq!(m.mode(), Mode::Normal);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut m = DegradeMachine::new(DegradePolicy::default());
        m.on_word(0, true);
        m.on_word(1, true);
        let snap = m.snapshot();
        let mut n = DegradeMachine::new(DegradePolicy::default());
        n.restore(snap);
        assert_eq!(n.snapshot(), snap);
    }
}
