//! # buscode-pipeline
//!
//! A supervised streaming runtime for the DATE'98 bus codecs.
//!
//! The codecs in `buscode-core` are *mechanisms*: they encode and decode
//! one word at a time, and the stateful ones (T0 and its descendants)
//! silently desynchronize when a fault corrupts their shared reference
//! state. PR 2's [`Hardened`][buscode_core::codes::Hardened] wrapper adds
//! detection and a bounded resync at the codec level — this crate adds
//! the *policy* layer a production service needs above it:
//!
//! - **Bounded-memory chunked driving** ([`Pipeline::run`]): arbitrarily
//!   long access streams are processed through a fixed-size chunk buffer,
//!   so peak memory is independent of stream length.
//! - **A supervisor around every word** ([`Pipeline::process`]): decode
//!   errors are classified with the
//!   [`RecoveryClass`][buscode_core::RecoveryClass] taxonomy and handled
//!   by configurable [`RecoveryPolicy`] actions — retransmission with
//!   capped exponential backoff for transient faults (the decoder is
//!   rolled back via its [`Snapshot`][buscode_core::Snapshot] before each
//!   retry), a forced resync through a plain-word refresh for desyncs,
//!   and a clean abort for fatal errors.
//! - **Graceful degradation** ([`DegradePolicy`]): when the error rate in
//!   a sliding window crosses a threshold, the runtime demotes the
//!   configured code to plain binary (cheap, stateless, nothing left to
//!   desynchronize) and re-promotes it after a stable window of clean
//!   words. `buscode-power`'s `degradation_cost` prices the milliwatts
//!   the demotion forfeits.
//! - **A watchdog** ([`Clock`], [`PipelineConfig::deadline_micros`]):
//!   each chunk gets a deadline; a chunk that overruns is cut short and
//!   the remainder re-chunked, so a wedged stage can never stall the
//!   stream.
//! - **Adaptive redundancy** ([`RedundancyPolicy`]): a windowed
//!   fault-rate estimator ([`RedundancyManager`]) walks the bus up and
//!   down the bare → parity → ECC protection ladder — escalating
//!   immediately when faults cluster, de-escalating only after a long
//!   clean run — and the runtime rebuilds the codec pair at the new tier
//!   from reset, so every tier switch doubles as a resync. The estimator
//!   counts the flips the ECC tier corrected silently (via
//!   [`Decoder::corrected_count`][buscode_core::Decoder::corrected_count])
//!   as faults, so a fully-corrected noisy bus never reads as clean.
//!   `buscode-power`'s `ecc_cost` prices each rung in milliwatts.
//! - **Checkpoint/restore** ([`Pipeline::checkpoint`],
//!   [`Pipeline::from_checkpoint`]): the full runtime state — both codec
//!   snapshots, the degradation machine, the redundancy manager, and the
//!   statistics — serializes to a text [`Checkpoint`] whose integrity is
//!   sealed by a CRC-32 footer, enabling crash recovery and mid-stream
//!   migration with corruption and truncation detected at parse time.
//!
//! The `pipeline` binary drives all of it from the command line; its
//! `--soak` mode replays a seeded fault campaign (via `buscode-fault`'s
//! models) over a million-word stream and exits nonzero unless every
//! desync was recovered within the refresh bound and the degradation
//! machine demonstrably demoted and re-promoted.
//!
//! ## Example
//!
//! ```
//! use buscode_core::{Access, CodeKind, CodeParams};
//! use buscode_pipeline::{clean_channel, Pipeline, PipelineConfig};
//!
//! # fn main() -> Result<(), buscode_pipeline::PipelineError> {
//! let config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
//! let mut pipe = Pipeline::new(config)?;
//! let stream = (0..10_000u64).map(|i| Access::instruction(0x400 + 4 * i));
//! let stats = pipe.run(stream, &mut clean_channel())?;
//! assert_eq!(stats.words, 10_000);
//! assert_eq!(stats.unrecovered, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod checkpoint;
mod clock;
mod policy;
mod redundancy;
mod runtime;
pub mod soak;

pub use buscode_core::Tier;
pub use checkpoint::Checkpoint;
pub use clock::{Clock, ManualClock, SystemClock};
pub use policy::{DegradePolicy, DegradeSnapshot, Mode, RecoveryPolicy};
pub use redundancy::{RedundancyManager, RedundancyPolicy, RedundancySnapshot, TierShift};
pub use runtime::{
    clean_channel, Channel, ChunkReport, Pipeline, PipelineConfig, PipelineError, PipelineMetrics,
};
