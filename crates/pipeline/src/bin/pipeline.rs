//! `pipeline` — supervised streaming codec runtime driver.
//!
//! Drives one code over a seeded synthetic stream through the supervised
//! pipeline, optionally injecting faults (`--soak`), pricing demotion
//! time (`--power`), and writing/resuming text checkpoints.
//!
//! `--soak` is the CI gate: it replays a seeded fault campaign (single
//! flips, parity-evading double flips, and a demotion-inducing burst) and
//! exits nonzero unless every word was recovered, every resync stayed
//! within the policy bound, and the degradation machine both demoted and
//! re-promoted. `--no-recovery` turns the supervisor's repairs off — the
//! same soak then fails, which is the point.
//!
//! ```text
//! pipeline [--code NAME] [--width BITS] [--stride N] [--refresh R|bare]
//!          [--stream instruction|data|muxed] [--len WORDS] [--seed S]
//!          [--chunk WORDS] [--deadline-us US] [--format text|json]
//!          [--soak] [--no-recovery] [--no-degrade] [--power]
//!          [--checkpoint-out FILE] [--resume FILE]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use buscode_core::{CodeKind, CodeParams};
use buscode_fault::campaign::stream_for;
use buscode_pipeline::soak::{run_soak, SoakConfig, SoakReport};
use buscode_pipeline::{clean_channel, Checkpoint, Pipeline, PipelineConfig, PipelineStats};
use buscode_power::degradation_cost;
use buscode_trace::StreamKind;

struct Options {
    code: CodeKind,
    width: u32,
    stride: u64,
    /// `None` runs the code bare (no hardening wrapper).
    refresh: Option<u64>,
    stream: StreamKind,
    len: u64,
    seed: u64,
    chunk: usize,
    deadline_us: Option<u64>,
    json: bool,
    soak: bool,
    no_recovery: bool,
    no_degrade: bool,
    power: bool,
    checkpoint_out: Option<String>,
    resume: Option<String>,
}

enum Parsed {
    Run(Options),
    Help,
}

const USAGE: &str = "usage: pipeline [--code NAME] [--width BITS] [--stride N] \
[--refresh R|bare] [--stream instruction|data|muxed] [--len WORDS] [--seed S] \
[--chunk WORDS] [--deadline-us US] [--format text|json] [--soak] [--no-recovery] \
[--no-degrade] [--power] [--checkpoint-out FILE] [--resume FILE]\n\
codes: binary gray bus-invert t0 t0-bi dual-t0 dual-t0-bi t0-xor offset \
working-zone beach self-org";

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("'{s}' is not a nonnegative integer"))
}

impl Options {
    fn parse(args: &[String]) -> Result<Parsed, String> {
        let mut opts = Options {
            code: CodeKind::DualT0Bi,
            width: 32,
            stride: 4,
            refresh: Some(16),
            stream: StreamKind::Muxed,
            len: 100_000,
            seed: 42,
            chunk: 4096,
            deadline_us: None,
            json: false,
            soak: false,
            no_recovery: false,
            no_degrade: false,
            power: false,
            checkpoint_out: None,
            resume: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--code" => {
                    let value = it.next().ok_or("--code needs a value")?;
                    opts.code = CodeKind::all()
                        .into_iter()
                        .find(|k| k.name() == value.as_str())
                        .ok_or_else(|| format!("unknown code '{value}'\n{USAGE}"))?;
                }
                "--width" => {
                    opts.width =
                        u32::try_from(parse_num(it.next().ok_or("--width needs a value")?)?)
                            .map_err(|_| "--width out of range".to_string())?;
                }
                "--stride" => {
                    opts.stride = parse_num(it.next().ok_or("--stride needs a value")?)?;
                }
                "--refresh" => {
                    let value = it.next().ok_or("--refresh needs a value")?;
                    opts.refresh = if value == "bare" {
                        None
                    } else {
                        let r = parse_num(value)?;
                        if r == 0 {
                            return Err("--refresh must be at least 1 (or 'bare')".to_string());
                        }
                        Some(r)
                    };
                }
                "--stream" => {
                    let value = it.next().ok_or("--stream needs a value")?;
                    opts.stream = match value.as_str() {
                        "instruction" => StreamKind::Instruction,
                        "data" => StreamKind::Data,
                        "muxed" => StreamKind::Muxed,
                        other => return Err(format!("unknown stream kind '{other}'\n{USAGE}")),
                    };
                }
                "--len" => {
                    opts.len = parse_num(it.next().ok_or("--len needs a value")?)?;
                    if opts.len == 0 {
                        return Err("--len must be at least 1 word".to_string());
                    }
                }
                "--seed" => {
                    opts.seed = parse_num(it.next().ok_or("--seed needs a value")?)?;
                }
                "--chunk" => {
                    opts.chunk =
                        usize::try_from(parse_num(it.next().ok_or("--chunk needs a value")?)?)
                            .map_err(|_| "--chunk out of range".to_string())?;
                    if opts.chunk == 0 {
                        return Err("--chunk must be at least 1 word".to_string());
                    }
                }
                "--deadline-us" => {
                    opts.deadline_us =
                        Some(parse_num(it.next().ok_or("--deadline-us needs a value")?)?);
                }
                "--format" => {
                    let value = it.next().ok_or("--format needs a value")?;
                    opts.json = match value.as_str() {
                        "json" => true,
                        "text" => false,
                        other => return Err(format!("unknown format '{other}'")),
                    };
                }
                "--soak" => opts.soak = true,
                "--no-recovery" => opts.no_recovery = true,
                "--no-degrade" => opts.no_degrade = true,
                "--power" => opts.power = true,
                "--checkpoint-out" => {
                    opts.checkpoint_out =
                        Some(it.next().ok_or("--checkpoint-out needs a value")?.clone());
                }
                "--resume" => {
                    opts.resume = Some(it.next().ok_or("--resume needs a value")?.clone());
                }
                "--help" | "-h" => return Ok(Parsed::Help),
                other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
            }
        }
        Ok(Parsed::Run(opts))
    }

    fn pipeline_config(&self) -> Result<PipelineConfig, String> {
        let params = CodeParams::new(self.width, self.stride)
            .map_err(|e| format!("invalid bus parameters: {e}"))?;
        let mut config = PipelineConfig::new(self.code, params);
        config.refresh = self.refresh;
        config.chunk_words = self.chunk;
        config.deadline_micros = self.deadline_us;
        config.policy.enabled = !self.no_recovery;
        config.degrade.enabled = !self.no_degrade;
        Ok(config)
    }
}

fn render_stats_text(stats: &PipelineStats) -> String {
    format!(
        "words             {}\n\
         clean words       {}\n\
         faulted words     {}\n\
         transient faults  {}\n\
         retries           {}\n\
         backoff cycles    {}\n\
         desyncs           {}\n\
         forced resyncs    {}\n\
         max resync gap    {}\n\
         unrecovered       {}\n\
         demotions         {}\n\
         repromotions      {}\n\
         degraded words    {}\n\
         watchdog fires    {}\n",
        stats.words,
        stats.clean_words,
        stats.faulted_words,
        stats.transient_faults,
        stats.retries,
        stats.backoff_cycles,
        stats.desyncs,
        stats.forced_resyncs,
        stats.max_resync_gap,
        stats.unrecovered,
        stats.demotions,
        stats.repromotions,
        stats.degraded_words,
        stats.watchdog_fires,
    )
}

fn render_stats_json(stats: &PipelineStats) -> String {
    format!(
        "{{\"words\":{},\"clean_words\":{},\"faulted_words\":{},\"transient_faults\":{},\
         \"retries\":{},\"backoff_cycles\":{},\"desyncs\":{},\"forced_resyncs\":{},\
         \"max_resync_gap\":{},\"unrecovered\":{},\"demotions\":{},\"repromotions\":{},\
         \"degraded_words\":{},\"watchdog_fires\":{}}}",
        stats.words,
        stats.clean_words,
        stats.faulted_words,
        stats.transient_faults,
        stats.retries,
        stats.backoff_cycles,
        stats.desyncs,
        stats.forced_resyncs,
        stats.max_resync_gap,
        stats.unrecovered,
        stats.demotions,
        stats.repromotions,
        stats.degraded_words,
        stats.watchdog_fires,
    )
}

fn print_soak_report(opts: &Options, report: &SoakReport) {
    if opts.json {
        let failures: Vec<String> = report
            .failures
            .iter()
            .map(|f| format!("{{\"gate\":\"{}\",\"reason\":\"{}\"}}", f.gate, f.reason))
            .collect();
        println!(
            "{{\"mode\":\"soak\",\"code\":\"{}\",\"seed\":{},\"words\":{},\
             \"injected_single\":{},\"injected_double\":{},\"injected_burst\":{},\
             \"stats\":{},\"passed\":{},\"failures\":[{}]}}",
            opts.code.name(),
            report.soak.seed,
            report.soak.words,
            report.injected_single,
            report.injected_double,
            report.injected_burst,
            render_stats_json(&report.stats),
            report.passed(),
            failures.join(",")
        );
    } else {
        println!(
            "soak: {} over {} words (seed {}, stream {})",
            opts.code.name(),
            report.soak.words,
            report.soak.seed,
            report.soak.stream
        );
        println!(
            "injected: {} single-flip, {} double-flip, {} burst",
            report.injected_single, report.injected_double, report.injected_burst
        );
        print!("{}", render_stats_text(&report.stats));
        if report.passed() {
            println!("soak gate: PASS");
        } else {
            for f in &report.failures {
                println!("soak gate FAILURE [{}]: {}", f.gate, f.reason);
            }
        }
    }
}

fn print_power(
    opts: &Options,
    config: &PipelineConfig,
    stats: &PipelineStats,
) -> Result<(), String> {
    let stream = stream_for(
        opts.stream,
        usize::try_from(opts.len.min(100_000)).unwrap_or(100_000),
        opts.seed,
    );
    let degraded_fraction = if stats.words == 0 {
        0.0
    } else {
        stats.degraded_words as f64 / stats.words as f64
    };
    let cost = degradation_cost(
        opts.code,
        config.params,
        &stream,
        degraded_fraction,
        50.0,
        buscode_logic::Technology::date98(),
    )
    .map_err(|e| format!("power model failed: {e}"))?;
    if opts.json {
        println!(
            "{{\"mode\":\"power\",\"code\":\"{}\",\"code_mw\":{:.6},\"binary_mw\":{:.6},\
             \"degraded_fraction\":{:.6},\"penalty_mw\":{:.6},\"effective_mw\":{:.6}}}",
            opts.code.name(),
            cost.code_mw,
            cost.binary_mw,
            cost.degraded_fraction,
            cost.penalty_mw,
            cost.effective_mw()
        );
    } else {
        println!(
            "degradation cost: {} {:.4} mW, binary {:.4} mW, {:.2}% of words demoted -> \
             penalty {:.4} mW (effective {:.4} mW)",
            opts.code.name(),
            cost.code_mw,
            cost.binary_mw,
            100.0 * cost.degraded_fraction,
            cost.penalty_mw,
            cost.effective_mw()
        );
    }
    Ok(())
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    let config = opts.pipeline_config()?;

    if opts.soak {
        let soak = SoakConfig::new(opts.seed, opts.len);
        let report = run_soak(config, soak).map_err(|e| format!("soak run failed: {e}"))?;
        print_soak_report(opts, &report);
        if opts.power {
            print_power(opts, &config, &report.stats)?;
        }
        return Ok(if report.passed() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    // Plain (clean-channel) run, with optional checkpoint write/resume.
    let mut pipe = match &opts.resume {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read checkpoint '{path}': {e}"))?;
            let checkpoint = Checkpoint::parse(&text).map_err(|e| format!("cannot resume: {e}"))?;
            Pipeline::from_checkpoint(config, &checkpoint)
                .map_err(|e| format!("cannot resume: {e}"))?
        }
        None => Pipeline::new(config).map_err(|e| format!("cannot build pipeline: {e}"))?,
    };

    let already_done = pipe.position();
    if already_done >= opts.len {
        return Err(format!(
            "checkpoint is already at word {already_done}, nothing left of a {}-word stream",
            opts.len
        ));
    }
    let accesses = stream_for(
        opts.stream,
        usize::try_from(opts.len).unwrap_or(usize::MAX),
        opts.seed,
    );
    let remaining = accesses
        .into_iter()
        .skip(usize::try_from(already_done).unwrap_or(usize::MAX));
    let stats = pipe
        .run(remaining, &mut clean_channel())
        .map_err(|e| format!("pipeline failed: {e}"))?;

    if opts.json {
        println!(
            "{{\"mode\":\"run\",\"code\":\"{}\",\"resumed_at\":{},\"final_mode\":\"{}\",\"stats\":{}}}",
            opts.code.name(),
            already_done,
            pipe.mode(),
            render_stats_json(&stats)
        );
    } else {
        println!(
            "run: {} over {} words (resumed at {}, final mode {})",
            opts.code.name(),
            opts.len,
            already_done,
            pipe.mode()
        );
        print!("{}", render_stats_text(&stats));
    }
    if opts.power {
        print_power(opts, &config, &stats)?;
    }

    if let Some(path) = &opts.checkpoint_out {
        let checkpoint = pipe.checkpoint();
        std::fs::write(path, checkpoint.to_text())
            .map_err(|e| format!("cannot write checkpoint '{path}': {e}"))?;
        eprintln!("pipeline: checkpoint written to {path}");
    }

    Ok(if stats.unrecovered == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(Parsed::Run(opts)) => opts,
        Ok(Parsed::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("pipeline: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pipeline: {msg}");
            ExitCode::from(2)
        }
    }
}
