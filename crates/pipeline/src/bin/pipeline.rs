//! `pipeline` — supervised streaming codec runtime driver.
//!
//! Drives one code over a seeded synthetic stream through the supervised
//! pipeline, optionally injecting faults (`--soak`), pricing demotion
//! time (`--power`), and writing/resuming text checkpoints.
//!
//! `--soak` is the CI gate: it replays a seeded fault campaign (single
//! flips, parity-evading double flips, and a demotion-inducing burst) and
//! exits nonzero unless every word was recovered, every resync stayed
//! within the policy bound, and the degradation machine both demoted and
//! re-promoted. `--no-recovery` turns the supervisor's repairs off — the
//! same soak then fails, which is the point.
//!
//! `--redundancy adaptive` turns on the tier ladder: the runtime starts
//! the code bare and walks bare → parity → ECC as the observed fault
//! rate (including ECC's silent in-flight corrections) demands, stepping
//! back down after a long clean run. The soak gate then requires at
//! least one escalation and one de-escalation instead of the
//! demotion/repromotion cycle. The default (`fixed`) pins the tier
//! implied by `--refresh`.
//!
//! `--sweep` runs the soak over every code, sharded across `--jobs N`
//! worker threads by the batch engine; the combined gate passes only if
//! every code passes, and the report is byte-identical for any worker
//! count.
//!
//! `--link PROFILE` replaces the clean channel of a plain run with a
//! seeded Gilbert–Elliott bursty channel (`quiet`, `bursty`, or `harsh`
//! — the same profiles `linkrun` sweeps): every word, including each
//! retry the supervisor issues, takes fresh weather, and the channel's
//! own counters (bad cycles, flipped words, erasures, drops, longest
//! burst) are reported next to the pipeline stats.
//!
//! Checkpoints are written atomically (temp file + rename) and carry a
//! CRC-32 footer, so `--resume` either restores exactly the captured
//! state or fails with a precise reason — never silently resumes from a
//! torn or bit-rotted file.
//!
//! ```text
//! pipeline [--code NAME] [--width BITS] [--stride N] [--refresh R|bare]
//!          [--stream instruction|data|muxed] [--len WORDS]
//!          [--chunk WORDS] [--deadline-us US]
//!          [--soak] [--sweep] [--no-recovery] [--no-degrade] [--power]
//!          [--redundancy fixed|adaptive] [--link PROFILE]
//!          [--checkpoint-out FILE] [--resume FILE]
//!          [--format text|json] [--seed S] [--jobs N] [--quiet]
//! ```

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::process::ExitCode;

use buscode_core::{BusState, CodeKind, CodeParams};
use buscode_engine::cli::{
    self, json_escape, CommonArgs, JsonPayload, Outcome, ToolRun, COMMON_USAGE,
};
use buscode_engine::SweepEngine;
use buscode_fault::campaign::stream_for;
use buscode_fault::{BusGeometry, GeChannel, GeChannelStats, GeEvent, GilbertElliott};
use buscode_pipeline::soak::{run_soak, SoakConfig, SoakReport};
use buscode_pipeline::{
    clean_channel, Checkpoint, Pipeline, PipelineConfig, PipelineMetrics, RedundancyPolicy,
};
use buscode_power::degradation_cost;
use buscode_telemetry::MetricSet;
use buscode_trace::StreamKind;

const TOOL: &str = "pipeline";

fn usage() -> String {
    format!(
        "usage: pipeline [--code NAME] [--width BITS] [--stride N] [--refresh R|bare] \
         [--stream instruction|data|muxed] [--len WORDS] [--chunk WORDS] [--deadline-us US] \
         [--soak] [--sweep] [--no-recovery] [--no-degrade] [--power] \
         [--redundancy fixed|adaptive] [--link PROFILE] \
         [--checkpoint-out FILE] [--resume FILE] {COMMON_USAGE}\n\
         codes: binary gray bus-invert t0 t0-bi dual-t0 dual-t0-bi t0-xor offset \
         working-zone beach self-org\n\
         link profiles: quiet bursty harsh (bursty Gilbert-Elliott word channel)"
    )
}

struct Options {
    code: CodeKind,
    width: u32,
    stride: u64,
    /// `None` runs the code bare (no hardening wrapper).
    refresh: Option<u64>,
    stream: StreamKind,
    len: u64,
    seed: u64,
    chunk: usize,
    deadline_us: Option<u64>,
    soak: bool,
    sweep: bool,
    no_recovery: bool,
    no_degrade: bool,
    power: bool,
    /// `--redundancy adaptive`: let the tier ladder manage protection.
    adaptive: bool,
    /// `--link PROFILE`: feed the plain run through a seeded
    /// Gilbert–Elliott bursty word channel instead of the clean one.
    link: Option<String>,
    checkpoint_out: Option<String>,
    resume: Option<String>,
}

fn parse_tool_args(args: &[String], seed: u64) -> Result<Options, String> {
    let mut opts = Options {
        code: CodeKind::DualT0Bi,
        width: 32,
        stride: 4,
        refresh: Some(16),
        stream: StreamKind::Muxed,
        len: 100_000,
        seed,
        chunk: 4096,
        deadline_us: None,
        soak: false,
        sweep: false,
        no_recovery: false,
        no_degrade: false,
        power: false,
        adaptive: false,
        link: None,
        checkpoint_out: None,
        resume: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--code" => {
                let value = it.next().ok_or("--code needs a value")?;
                opts.code = CodeKind::all()
                    .into_iter()
                    .find(|k| k.name() == value.as_str())
                    .ok_or_else(|| format!("unknown code '{value}'"))?;
            }
            "--width" => {
                let value = it.next().ok_or("--width needs a value")?;
                opts.width = u32::try_from(cli::parse_u64("--width", value)?)
                    .map_err(|_| "--width out of range".to_string())?;
            }
            "--stride" => {
                let value = it.next().ok_or("--stride needs a value")?;
                opts.stride = cli::parse_u64("--stride", value)?;
            }
            "--refresh" => {
                let value = it.next().ok_or("--refresh needs a value")?;
                opts.refresh = if value == "bare" {
                    None
                } else {
                    let r = cli::parse_u64("--refresh", value)?;
                    if r == 0 {
                        return Err("--refresh must be at least 1 (or 'bare')".to_string());
                    }
                    Some(r)
                };
            }
            "--stream" => {
                let value = it.next().ok_or("--stream needs a value")?;
                opts.stream = match value.as_str() {
                    "instruction" => StreamKind::Instruction,
                    "data" => StreamKind::Data,
                    "muxed" => StreamKind::Muxed,
                    other => return Err(format!("unknown stream kind '{other}'")),
                };
            }
            "--len" => {
                let value = it.next().ok_or("--len needs a value")?;
                opts.len = cli::parse_u64("--len", value)?;
                if opts.len == 0 {
                    return Err("--len must be at least 1 word".to_string());
                }
            }
            "--chunk" => {
                let value = it.next().ok_or("--chunk needs a value")?;
                opts.chunk = usize::try_from(cli::parse_u64("--chunk", value)?)
                    .map_err(|_| "--chunk out of range".to_string())?;
                if opts.chunk == 0 {
                    return Err("--chunk must be at least 1 word".to_string());
                }
            }
            "--deadline-us" => {
                let value = it.next().ok_or("--deadline-us needs a value")?;
                opts.deadline_us = Some(cli::parse_u64("--deadline-us", value)?);
            }
            "--soak" => opts.soak = true,
            "--sweep" => opts.sweep = true,
            "--no-recovery" => opts.no_recovery = true,
            "--no-degrade" => opts.no_degrade = true,
            "--power" => opts.power = true,
            "--redundancy" => {
                let value = it.next().ok_or("--redundancy needs a value")?;
                opts.adaptive = match value.as_str() {
                    "fixed" => false,
                    "adaptive" => true,
                    other => return Err(format!("unknown redundancy mode '{other}'")),
                };
            }
            "--link" => {
                let value = it.next().ok_or("--link needs a value")?;
                if GilbertElliott::named(value).is_none() {
                    return Err(format!(
                        "unknown link profile '{value}' (available: {})",
                        GilbertElliott::profile_names().join(" ")
                    ));
                }
                opts.link = Some(value.clone());
            }
            "--checkpoint-out" => {
                opts.checkpoint_out =
                    Some(it.next().ok_or("--checkpoint-out needs a value")?.clone());
            }
            "--resume" => {
                opts.resume = Some(it.next().ok_or("--resume needs a value")?.clone());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.link.is_some() && (opts.soak || opts.sweep) {
        return Err(
            "--link drives the plain run; --soak and --sweep inject their own faults".to_string(),
        );
    }
    Ok(opts)
}

impl Options {
    fn pipeline_config(&self, code: CodeKind) -> Result<PipelineConfig, String> {
        let params = CodeParams::new(self.width, self.stride)
            .map_err(|e| format!("invalid bus parameters: {e}"))?;
        let mut config = PipelineConfig::new(code, params);
        config.refresh = self.refresh;
        config.chunk_words = self.chunk;
        config.deadline_micros = self.deadline_us;
        config.policy.enabled = !self.no_recovery;
        config.degrade.enabled = !self.no_degrade;
        if self.adaptive {
            config.redundancy = RedundancyPolicy::adaptive();
        }
        Ok(config)
    }
}

fn render_stats_text(stats: &PipelineMetrics) -> String {
    format!(
        "words             {}\n\
         clean words       {}\n\
         faulted words     {}\n\
         transient faults  {}\n\
         retries           {}\n\
         backoff cycles    {}\n\
         desyncs           {}\n\
         forced resyncs    {}\n\
         max resync gap    {}\n\
         unrecovered       {}\n\
         demotions         {}\n\
         repromotions      {}\n\
         degraded words    {}\n\
         watchdog fires    {}\n\
         corrected faults  {}\n\
         escalations       {}\n\
         deescalations     {}\n\
         ecc words         {}\n",
        stats.words,
        stats.clean_words,
        stats.faulted_words,
        stats.transient_faults,
        stats.retries,
        stats.backoff_cycles,
        stats.desyncs,
        stats.forced_resyncs,
        stats.max_resync_gap,
        stats.unrecovered,
        stats.demotions,
        stats.repromotions,
        stats.degraded_words,
        stats.watchdog_fires,
        stats.corrected_faults,
        stats.escalations,
        stats.deescalations,
        stats.ecc_words,
    )
}

fn render_stats_json(stats: &PipelineMetrics) -> String {
    format!(
        "{{\"words\":{},\"clean_words\":{},\"faulted_words\":{},\"transient_faults\":{},\
         \"retries\":{},\"backoff_cycles\":{},\"desyncs\":{},\"forced_resyncs\":{},\
         \"max_resync_gap\":{},\"unrecovered\":{},\"demotions\":{},\"repromotions\":{},\
         \"degraded_words\":{},\"watchdog_fires\":{},\"corrected_faults\":{},\
         \"escalations\":{},\"deescalations\":{},\"ecc_words\":{}}}",
        stats.words,
        stats.clean_words,
        stats.faulted_words,
        stats.transient_faults,
        stats.retries,
        stats.backoff_cycles,
        stats.desyncs,
        stats.forced_resyncs,
        stats.max_resync_gap,
        stats.unrecovered,
        stats.demotions,
        stats.repromotions,
        stats.degraded_words,
        stats.watchdog_fires,
        stats.corrected_faults,
        stats.escalations,
        stats.deescalations,
        stats.ecc_words,
    )
}

fn render_link_text(profile: &str, weather: &GeChannelStats) -> String {
    format!(
        "link channel ({profile}): {} cycles, {} bad, {} bursts, {} flipped words \
         ({} lines), {} erasures, {} drops, longest burst {}\n",
        weather.cycles,
        weather.bad_cycles,
        weather.bursts,
        weather.flipped_words,
        weather.flipped_lines,
        weather.erasures,
        weather.drops,
        weather.max_bad_dwell,
    )
}

fn render_link_json(profile: &str, weather: &GeChannelStats) -> String {
    format!(
        "{{\"profile\":\"{profile}\",\"cycles\":{},\"bad_cycles\":{},\"bursts\":{},\
         \"flipped_words\":{},\"flipped_lines\":{},\"erasures\":{},\"drops\":{},\
         \"max_bad_dwell\":{}}}",
        weather.cycles,
        weather.bad_cycles,
        weather.bursts,
        weather.flipped_words,
        weather.flipped_lines,
        weather.erasures,
        weather.drops,
        weather.max_bad_dwell,
    )
}

fn soak_report_json(code: CodeKind, report: &SoakReport) -> String {
    let failures: Vec<String> = report
        .failures
        .iter()
        .map(|f| {
            format!(
                "{{\"gate\":\"{}\",\"reason\":\"{}\"}}",
                f.gate,
                json_escape(&f.reason)
            )
        })
        .collect();
    format!(
        "{{\"code\":\"{}\",\"seed\":{},\"words\":{},\
         \"injected_single\":{},\"injected_double\":{},\"injected_burst\":{},\
         \"stats\":{},\"passed\":{},\"failures\":[{}]}}",
        code.name(),
        report.soak.seed,
        report.soak.words,
        report.injected_single,
        report.injected_double,
        report.injected_burst,
        render_stats_json(&report.stats),
        report.passed(),
        failures.join(",")
    )
}

fn soak_report_text(code: CodeKind, report: &SoakReport) -> String {
    let mut out = format!(
        "soak: {} over {} words (seed {}, stream {})\n\
         injected: {} single-flip, {} double-flip, {} burst\n",
        code.name(),
        report.soak.words,
        report.soak.seed,
        report.soak.stream,
        report.injected_single,
        report.injected_double,
        report.injected_burst,
    );
    out.push_str(&render_stats_text(&report.stats));
    if report.passed() {
        out.push_str("soak gate: PASS\n");
    } else {
        for f in &report.failures {
            let _ = writeln!(out, "soak gate FAILURE [{}]: {}", f.gate, f.reason);
        }
    }
    out
}

/// Renders the power cost of the demoted fraction: text and JSON forms.
fn power_report(
    opts: &Options,
    config: &PipelineConfig,
    stats: &PipelineMetrics,
) -> Result<(String, String), String> {
    let stream = stream_for(
        opts.stream,
        usize::try_from(opts.len.min(100_000)).unwrap_or(100_000),
        opts.seed,
    );
    let degraded_fraction = if stats.words == 0 {
        0.0
    } else {
        stats.degraded_words as f64 / stats.words as f64
    };
    let cost = degradation_cost(
        opts.code,
        config.params,
        &stream,
        degraded_fraction,
        50.0,
        buscode_logic::Technology::date98(),
    )
    .map_err(|e| format!("power model failed: {e}"))?;
    let text = format!(
        "degradation cost: {} {:.4} mW, binary {:.4} mW, {:.2}% of words demoted -> \
         penalty {:.4} mW (effective {:.4} mW)\n",
        opts.code.name(),
        cost.code_mw,
        cost.binary_mw,
        100.0 * cost.degraded_fraction,
        cost.penalty_mw,
        cost.effective_mw()
    );
    let json = format!(
        "{{\"code\":\"{}\",\"code_mw\":{:.6},\"binary_mw\":{:.6},\
         \"degraded_fraction\":{:.6},\"penalty_mw\":{:.6},\"effective_mw\":{:.6}}}",
        opts.code.name(),
        cost.code_mw,
        cost.binary_mw,
        cost.degraded_fraction,
        cost.penalty_mw,
        cost.effective_mw()
    );
    Ok((text, json))
}

/// `--sweep`: the soak campaign over every code, sharded by the engine.
fn run_sweep(opts: &Options, engine: &SweepEngine) -> Result<Outcome, String> {
    let soak = SoakConfig::new(opts.seed, opts.len);
    let results = engine.run(CodeKind::all().to_vec(), |code| {
        let config = opts.pipeline_config(code)?;
        let report = run_soak(config, soak).map_err(|e| format!("{code} soak failed: {e}"))?;
        Ok::<(CodeKind, SoakReport), String>((code, report))
    });

    let mut reports = Vec::with_capacity(results.len());
    for result in results {
        reports.push(result?);
    }

    let mut text = format!(
        "soak sweep: {} codes x {} words (seed {}, jobs {})\n",
        reports.len(),
        opts.len,
        opts.seed,
        engine.jobs()
    );
    let mut failed = 0usize;
    for (code, report) in &reports {
        if report.passed() {
            let _ = writeln!(
                text,
                "  {:>12}  PASS  ({} retries, {} resyncs, max gap {}, {} demotion(s), \
                 {} escalation(s), {} corrected)",
                code.name(),
                report.stats.retries,
                report.stats.forced_resyncs,
                report.stats.max_resync_gap,
                report.stats.demotions,
                report.stats.escalations,
                report.stats.corrected_faults,
            );
        } else {
            failed += 1;
            let gates: Vec<&str> = report.failures.iter().map(|f| f.gate).collect();
            let _ = writeln!(text, "  {:>12}  FAIL  [{}]", code.name(), gates.join(", "));
        }
    }
    let entries: Vec<String> = reports
        .iter()
        .map(|(code, report)| soak_report_json(*code, report))
        .collect();
    let data = JsonPayload::new()
        .raw("mode", "\"sweep\"")
        .u64("jobs", engine.jobs() as u64)
        .u64("words", opts.len)
        .u64("seed", opts.seed)
        .raw("codes", &format!("[{}]", entries.join(",")))
        .finish();
    let mut set = MetricSet::new();
    set.add_counter("pipeline.codes", reports.len() as u64);
    set.add_counter("pipeline.soak_failures", failed as u64);
    for (_, report) in &reports {
        set.merge(&report.stats.metrics());
    }
    let outcome = if failed == 0 {
        Outcome::success(text, data)
    } else {
        Outcome::failure(
            format!("{failed} of {} codes failed the soak gate", reports.len()),
            text,
            data,
        )
    };
    Ok(outcome.with_metrics(set))
}

/// Writes the checkpoint durably: the text goes to a sibling temp file
/// first and is renamed over the final path, so a crash mid-write leaves
/// either the previous checkpoint or the new one under `path` — never a
/// torn file (the CRC-32 footer inside the text catches everything
/// rename cannot).
fn write_checkpoint_atomically(path: &str, text: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("cannot write checkpoint '{tmp}': {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot move checkpoint into place at '{path}': {e}")
    })
}

fn run(opts: &Options, engine: &SweepEngine) -> Result<Outcome, String> {
    if opts.sweep {
        return run_sweep(opts, engine);
    }
    let config = opts.pipeline_config(opts.code)?;

    if opts.soak {
        let soak = SoakConfig::new(opts.seed, opts.len);
        let report = run_soak(config, soak).map_err(|e| format!("soak run failed: {e}"))?;
        let mut text = soak_report_text(opts.code, &report);
        let mut payload = JsonPayload::new()
            .raw("mode", "\"soak\"")
            .raw("soak", &soak_report_json(opts.code, &report));
        if opts.power {
            let (ptext, pjson) = power_report(opts, &config, &report.stats)?;
            text.push_str(&ptext);
            payload = payload.raw("power", &pjson);
        }
        let data = payload.finish();
        let mut set = report.stats.metrics();
        set.add_counter("pipeline.injected_single", report.injected_single);
        set.add_counter("pipeline.injected_double", report.injected_double);
        set.add_counter("pipeline.injected_burst", report.injected_burst);
        set.add_counter("pipeline.soak_failures", report.failures.len() as u64);
        let outcome = if report.passed() {
            Outcome::success(text, data)
        } else {
            Outcome::failure(
                format!("{} soak gate failure(s)", report.failures.len()),
                text,
                data,
            )
        };
        return Ok(outcome.with_metrics(set));
    }

    // Plain (clean-channel) run, with optional checkpoint write/resume.
    let mut pipe = match &opts.resume {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read checkpoint '{path}': {e}"))?;
            let checkpoint = Checkpoint::parse(&text).map_err(|e| format!("cannot resume: {e}"))?;
            Pipeline::from_checkpoint(config, &checkpoint)
                .map_err(|e| format!("cannot resume: {e}"))?
        }
        None => Pipeline::new(config).map_err(|e| format!("cannot build pipeline: {e}"))?,
    };

    let already_done = pipe.position();
    if already_done >= opts.len {
        return Err(format!(
            "checkpoint is already at word {already_done}, nothing left of a {}-word stream",
            opts.len
        ));
    }
    let accesses = stream_for(
        opts.stream,
        usize::try_from(opts.len).unwrap_or(usize::MAX),
        opts.seed,
    );
    let remaining = accesses
        .into_iter()
        .skip(usize::try_from(already_done).unwrap_or(usize::MAX));
    let (stats, link_weather) = match &opts.link {
        Some(profile_name) => {
            let profile = GilbertElliott::named(profile_name).unwrap_or_else(GilbertElliott::gate);
            // Geometry covers the lines the configured tier drives; a
            // dropped cycle reads as all-lines-low at the latch.
            let aux = opts
                .code
                .aux_line_count(config.params)
                .map_err(|e| format!("cannot size the link geometry: {e}"))?
                + u32::from(config.refresh.is_some());
            let mut ge = GeChannel::new(
                profile,
                BusGeometry::new(config.params.width.bits(), aux),
                opts.seed ^ 0x4C49_4E4B, // "LINK": never share draws with the stream
            );
            let stats = {
                let mut channel = |_: u64, word: BusState| match ge.transmit(word) {
                    (_, GeEvent::Dropped) => BusState::reset(),
                    (observed, _) => observed,
                };
                pipe.run(remaining, &mut channel)
                    .map_err(|e| format!("pipeline failed: {e}"))?
            };
            (stats, Some((profile_name.clone(), ge.stats())))
        }
        None => (
            pipe.run(remaining, &mut clean_channel())
                .map_err(|e| format!("pipeline failed: {e}"))?,
            None,
        ),
    };

    let mut text = format!(
        "run: {} over {} words (resumed at {}, final mode {}, final tier {})\n",
        opts.code.name(),
        opts.len,
        already_done,
        pipe.mode(),
        pipe.tier()
    );
    text.push_str(&render_stats_text(&stats));
    let mut payload = JsonPayload::new()
        .raw("mode", "\"run\"")
        .raw("code", &format!("\"{}\"", opts.code.name()))
        .u64("resumed_at", already_done)
        .raw("final_mode", &format!("\"{}\"", pipe.mode()))
        .raw("final_tier", &format!("\"{}\"", pipe.tier()))
        .raw("stats", &render_stats_json(&stats));
    let mut set = stats.metrics();
    if let Some((profile_name, weather)) = &link_weather {
        text.push_str(&render_link_text(profile_name, weather));
        payload = payload.raw("link", &render_link_json(profile_name, weather));
        set.add_counter("pipeline.link.cycles", weather.cycles);
        set.add_counter("pipeline.link.bad_cycles", weather.bad_cycles);
        set.add_counter("pipeline.link.bursts", weather.bursts);
        set.add_counter("pipeline.link.flipped_words", weather.flipped_words);
        set.add_counter("pipeline.link.flipped_lines", weather.flipped_lines);
        set.add_counter("pipeline.link.erasures", weather.erasures);
        set.add_counter("pipeline.link.drops", weather.drops);
        set.set_gauge("pipeline.link.max_bad_dwell", weather.max_bad_dwell);
    }
    if opts.power {
        let (ptext, pjson) = power_report(opts, &config, &stats)?;
        text.push_str(&ptext);
        payload = payload.raw("power", &pjson);
    }
    let data = payload.finish();

    if let Some(path) = &opts.checkpoint_out {
        let checkpoint = pipe.checkpoint();
        write_checkpoint_atomically(path, &checkpoint.to_text())?;
        let _ = writeln!(text, "checkpoint written to {path}");
    }

    let outcome = if stats.unrecovered == 0 {
        Outcome::success(text, data)
    } else {
        Outcome::failure(
            format!("{} word(s) ended unrecovered", stats.unrecovered),
            text,
            data,
        )
    };
    Ok(outcome.with_metrics(set))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonArgs::extract(&mut args) {
        Ok(common) => common,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    if common.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_tool_args(&args, common.seed_or(42)) {
        Ok(opts) => opts,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    let run_ctx = ToolRun::new(TOOL, env!("CARGO_PKG_VERSION"), common);
    let engine = common.engine();
    match run(&opts, &engine) {
        Ok(outcome) => run_ctx.finish(&outcome),
        Err(msg) => run_ctx.finish(&Outcome::error(msg)),
    }
}
