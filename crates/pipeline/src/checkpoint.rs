//! Whole-pipeline checkpoints: a text-serializable capture of codec
//! state, degradation state, redundancy-tier state, statistics, and
//! stream position, sealed with a CRC-32 footer.
//!
//! Durability is two-layered: the `pipeline` binary writes checkpoints
//! atomically (temp file + rename, so a crash never leaves a partial
//! file under the final name), and the text itself carries a CRC-32
//! (IEEE 802.3) over every preceding byte, so a truncated or bit-rotted
//! checkpoint is rejected at parse time with a precise reason instead of
//! restoring silently-wrong state.

use buscode_core::{CodeKind, CodeParams, StateImage, Tier};

use crate::policy::{DegradeSnapshot, Mode};
use crate::redundancy::RedundancySnapshot;
use crate::runtime::{PipelineError, PipelineMetrics};

/// A complete pipeline state, produced by
/// [`Pipeline::checkpoint`][crate::Pipeline::checkpoint] and consumed by
/// [`Pipeline::from_checkpoint`][crate::Pipeline::from_checkpoint].
///
/// The text form ([`Checkpoint::to_text`] / [`Checkpoint::parse`]) is a
/// small line-oriented `key=value` format with the two codec state
/// images on their own lines and a `crc32=` integrity footer —
/// human-inspectable and free of any serialization dependency.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The configured code.
    pub code: CodeKind,
    /// Bus width and stride the pipeline ran with.
    pub params: CodeParams,
    /// Hardened refresh interval (`None` when the code ran bare).
    pub refresh: Option<u64>,
    /// Words fully processed when the checkpoint was taken.
    pub position: u64,
    /// Primary encoder state.
    pub encoder: StateImage,
    /// Primary decoder state.
    pub decoder: StateImage,
    /// Degradation machine registers.
    pub degrade: DegradeSnapshot,
    /// Redundancy manager registers (which tier the primary pair ran at).
    pub redundancy: RedundancySnapshot,
    /// Statistics accumulated up to the checkpoint.
    pub stats: PipelineMetrics,
}

const HEADER: &str = "buscode-pipeline-checkpoint v1";

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — hand-rolled
/// bitwise form, dependency-free.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl Checkpoint {
    /// Renders the checkpoint as text.
    pub fn to_text(&self) -> String {
        let s = &self.stats;
        let d = &self.degrade;
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("code={}\n", self.code.name()));
        out.push_str(&format!("width={}\n", self.params.width.bits()));
        out.push_str(&format!("stride={}\n", self.params.stride.get()));
        out.push_str(&format!(
            "refresh={}\n",
            self.refresh.unwrap_or(0) // 0 is an invalid interval: means bare
        ));
        out.push_str(&format!("position={}\n", self.position));
        out.push_str(&format!("mode={}\n", d.mode));
        out.push_str(&format!("window_start={}\n", d.window_start));
        out.push_str(&format!("window_errors={}\n", d.window_errors));
        out.push_str(&format!("clean_run={}\n", d.clean_run));
        let r = &self.redundancy;
        out.push_str(&format!("tier={}\n", r.tier.name()));
        out.push_str(&format!("tier_window_start={}\n", r.window_start));
        out.push_str(&format!("tier_faults={}\n", r.window_faults));
        out.push_str(&format!("tier_clean_run={}\n", r.clean_run));
        out.push_str(&format!(
            "stats={} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
            s.words,
            s.clean_words,
            s.faulted_words,
            s.transient_faults,
            s.retries,
            s.backoff_cycles,
            s.desyncs,
            s.forced_resyncs,
            s.max_resync_gap,
            s.unrecovered,
            s.demotions,
            s.repromotions,
            s.degraded_words,
            s.watchdog_fires,
            s.corrected_faults,
            s.escalations,
            s.deescalations,
            s.ecc_words,
        ));
        out.push_str(&format!("encoder={}\n", self.encoder.to_line()));
        out.push_str(&format!("decoder={}\n", self.decoder.to_line()));
        out.push_str(&format!("crc32={:08x}\n", crc32(out.as_bytes())));
        out
    }

    /// Parses text produced by [`Checkpoint::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Checkpoint`] on a missing header, a
    /// missing or mismatching `crc32=` footer (truncation or bit rot),
    /// an unknown code name, a malformed field, or a missing key.
    pub fn parse(text: &str) -> Result<Self, PipelineError> {
        let bad = |reason: String| PipelineError::Checkpoint { reason };

        // Verify the integrity footer before trusting any field: the
        // last non-empty line must be `crc32=` over every byte of the
        // preceding lines (each terminated by a single `\n`).
        let all_lines: Vec<&str> = text.lines().collect();
        let crc_index = all_lines
            .iter()
            .rposition(|l| !l.trim().is_empty())
            .ok_or_else(|| bad(format!("missing header line `{HEADER}`")))?;
        let crc_line = all_lines[crc_index].trim();
        let Some(stored_hex) = crc_line.strip_prefix("crc32=") else {
            return Err(bad(
                "missing `crc32=` integrity footer (checkpoint truncated?)".to_string(),
            ));
        };
        let stored = u32::from_str_radix(stored_hex, 16)
            .map_err(|_| bad("field `crc32` is not hexadecimal".to_string()))?;
        let body: String = all_lines[..crc_index]
            .iter()
            .map(|l| format!("{l}\n"))
            .collect();
        let computed = crc32(body.as_bytes());
        if stored != computed {
            return Err(bad(format!(
                "crc32 mismatch: footer says {stored:08x}, body hashes to {computed:08x} \
                 (checkpoint truncated or corrupted)"
            )));
        }

        let mut lines = body.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(bad(format!("missing header line `{HEADER}`")));
        }
        let mut fields = std::collections::BTreeMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("malformed line `{line}`")))?;
            fields.insert(key.to_string(), value.to_string());
        }
        let get = |key: &str| -> Result<String, PipelineError> {
            fields
                .get(key)
                .cloned()
                .ok_or_else(|| bad(format!("missing field `{key}`")))
        };
        let int = |key: &str| -> Result<u64, PipelineError> {
            get(key)?
                .parse::<u64>()
                .map_err(|_| bad(format!("field `{key}` is not an integer")))
        };

        let code_name = get("code")?;
        let code = CodeKind::all()
            .into_iter()
            .find(|k| k.name() == code_name)
            .ok_or_else(|| bad(format!("unknown code `{code_name}`")))?;
        let width = u32::try_from(int("width")?)
            .map_err(|_| bad("field `width` out of range".to_string()))?;
        let params = CodeParams::new(width, int("stride")?)
            .map_err(|e| bad(format!("invalid bus parameters: {e}")))?;
        let refresh = match int("refresh")? {
            0 => None,
            r => Some(r),
        };
        let mode = match get("mode")?.as_str() {
            "normal" => Mode::Normal,
            "degraded" => Mode::Degraded,
            other => return Err(bad(format!("unknown mode `{other}`"))),
        };
        let degrade = DegradeSnapshot {
            mode,
            window_start: int("window_start")?,
            window_errors: u32::try_from(int("window_errors")?)
                .map_err(|_| bad("field `window_errors` out of range".to_string()))?,
            clean_run: int("clean_run")?,
        };

        let tier_name = get("tier")?;
        let tier = Tier::from_name(&tier_name)
            .ok_or_else(|| bad(format!("unknown redundancy tier `{tier_name}`")))?;
        let redundancy = RedundancySnapshot {
            tier,
            window_start: int("tier_window_start")?,
            window_faults: u32::try_from(int("tier_faults")?)
                .map_err(|_| bad("field `tier_faults` out of range".to_string()))?,
            clean_run: int("tier_clean_run")?,
        };

        let stats_line = get("stats")?;
        let nums: Vec<u64> = stats_line
            .split_whitespace()
            .map(|t| t.parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad("field `stats` contains a non-integer".to_string()))?;
        let [words, clean_words, faulted_words, transient_faults, retries, backoff_cycles, desyncs, forced_resyncs, max_resync_gap, unrecovered, demotions, repromotions, degraded_words, watchdog_fires, corrected_faults, escalations, deescalations, ecc_words] =
            nums[..]
        else {
            return Err(bad(format!(
                "field `stats` must have 18 counters, found {}",
                nums.len()
            )));
        };
        let stats = PipelineMetrics {
            words,
            clean_words,
            faulted_words,
            transient_faults,
            retries,
            backoff_cycles,
            desyncs,
            forced_resyncs,
            max_resync_gap,
            unrecovered,
            demotions,
            repromotions,
            degraded_words,
            watchdog_fires,
            corrected_faults,
            escalations,
            deescalations,
            ecc_words,
        };

        let encoder = StateImage::parse_line(&get("encoder")?)
            .map_err(|e| bad(format!("encoder image: {e}")))?;
        let decoder = StateImage::parse_line(&get("decoder")?)
            .map_err(|e| bad(format!("decoder image: {e}")))?;

        Ok(Checkpoint {
            code,
            params,
            refresh,
            position: int("position")?,
            encoder,
            decoder,
            degrade,
            redundancy,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buscode_core::Snapshot;

    fn sample() -> Checkpoint {
        let params = CodeParams::default();
        let enc = CodeKind::T0.hardened_snapshot_encoder(params, 16).unwrap();
        let dec = CodeKind::T0.hardened_snapshot_decoder(params, 16).unwrap();
        Checkpoint {
            code: CodeKind::T0,
            params,
            refresh: Some(16),
            position: 12345,
            encoder: enc.snapshot(),
            decoder: dec.snapshot(),
            degrade: DegradeSnapshot {
                mode: Mode::Degraded,
                window_start: 12000,
                window_errors: 3,
                clean_run: 17,
            },
            redundancy: RedundancySnapshot {
                tier: Tier::Ecc,
                window_start: 12100,
                window_faults: 2,
                clean_run: 45,
            },
            stats: PipelineMetrics {
                words: 12345,
                clean_words: 12000,
                faulted_words: 345,
                transient_faults: 200,
                retries: 210,
                backoff_cycles: 500,
                desyncs: 20,
                forced_resyncs: 22,
                max_resync_gap: 2,
                unrecovered: 0,
                demotions: 1,
                repromotions: 0,
                degraded_words: 40,
                watchdog_fires: 3,
                corrected_faults: 120,
                escalations: 2,
                deescalations: 1,
                ecc_words: 800,
            },
        }
    }

    /// Recomputes the CRC footer after a deliberate field tamper, so the
    /// tamper tests exercise field validation rather than the CRC.
    fn restamp(text: &str) -> String {
        let body: String = text
            .lines()
            .filter(|l| !l.starts_with("crc32="))
            .map(|l| format!("{l}\n"))
            .collect();
        format!("{body}crc32={:08x}\n", crc32(body.as_bytes()))
    }

    #[test]
    fn text_round_trip() {
        let cp = sample();
        let text = cp.to_text();
        let parsed = Checkpoint::parse(&text).unwrap();
        assert_eq!(parsed, cp);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Checkpoint::parse("").is_err());
        assert!(Checkpoint::parse("not a checkpoint").is_err());
        let cp = sample();
        let text = cp.to_text();
        // Drop the decoder line.
        let truncated: String = text
            .lines()
            .filter(|l| !l.starts_with("decoder="))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(Checkpoint::parse(&restamp(&truncated)).is_err());
        // Corrupt the stats line.
        let garbled = restamp(&text.replace("stats=", "stats=zzz "));
        assert!(Checkpoint::parse(&garbled).is_err());
        // Unknown code.
        let unknown = restamp(&text.replace("code=t0", "code=nonesuch"));
        assert!(Checkpoint::parse(&unknown).is_err());
        // Unknown redundancy tier.
        let bad_tier = restamp(&text.replace("tier=ecc", "tier=quintuple"));
        assert!(Checkpoint::parse(&bad_tier).is_err());
    }

    #[test]
    fn crc_footer_rejects_truncation() {
        let text = sample().to_text();
        // Cut the file anywhere: the footer (or the body it covers) is
        // damaged and the parse must say so precisely.
        for cut in [text.len() - 2, text.len() - 12, text.len() / 2, 10] {
            let err = Checkpoint::parse(&text[..cut]).unwrap_err();
            let PipelineError::Checkpoint { reason } = &err else {
                panic!("expected a checkpoint error, got {err:?}");
            };
            assert!(
                reason.contains("crc32") || reason.contains("truncated"),
                "cut at {cut}: {reason}"
            );
        }
    }

    #[test]
    fn crc_footer_rejects_bit_rot() {
        let text = sample().to_text();
        // Flip one digit in the position field without restamping.
        let rotted = text.replace("position=12345", "position=12346");
        assert_ne!(rotted, text);
        let err = Checkpoint::parse(&rotted).unwrap_err();
        let PipelineError::Checkpoint { reason } = &err else {
            panic!("expected a checkpoint error, got {err:?}");
        };
        assert!(reason.contains("crc32 mismatch"), "{reason}");
    }

    #[test]
    fn the_crc_implementation_matches_ieee_vectors() {
        // The classic check value: CRC-32("123456789") = 0xcbf43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bare_refresh_round_trips_as_zero() {
        let mut cp = sample();
        cp.refresh = None;
        cp.encoder = StateImage::new("t0", vec![0, 0, 0, 0]);
        cp.decoder = StateImage::new("t0", vec![0, 0]);
        let parsed = Checkpoint::parse(&cp.to_text()).unwrap();
        assert_eq!(parsed.refresh, None);
    }
}
