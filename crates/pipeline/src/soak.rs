//! Seeded soak harness: long synthetic streams, injected faults, and
//! pass/fail gates.
//!
//! A soak run drives one [`Pipeline`] over a seeded address stream (from
//! `buscode-fault`'s trace models) through a fault-injecting [`Channel`]
//! that mixes three stressors:
//!
//! - **single-line flips** (`transient_ppm`): one payload line flipped —
//!   on a hardened code the aux parity catches these, exercising the
//!   retransmit-with-backoff path;
//! - **double-line flips** (`desync_ppm`): two distinct payload lines
//!   flipped — parity stays valid, so the corruption is silent until
//!   end-to-end verification flags it, exercising the forced-resync path;
//! - **a fault burst** (`burst_start`/`burst_words`/`burst_rate`): a
//!   window of heavy corruption that pushes the error rate over the
//!   demotion threshold, exercising the degradation state machine both
//!   ways (the stream after the burst is long enough to re-promote).
//!
//! Everything is derived from one seed, so a soak run is reproducible
//! bit-for-bit. [`run_soak`] evaluates the gates the CI job enforces:
//! zero unrecovered words, every resync within the policy's bound, and
//! at least one demotion *and* re-promotion.

use buscode_core::rng::Rng64;
use buscode_core::BusState;
use buscode_fault::campaign::stream_for;
use buscode_fault::models::{flip_line, BusGeometry};
use buscode_trace::StreamKind;

use crate::runtime::{Channel, Pipeline, PipelineConfig, PipelineError, PipelineMetrics};

/// Parameters of one soak run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoakConfig {
    /// Master seed for the stream and the fault process.
    pub seed: u64,
    /// Stream length in words.
    pub words: u64,
    /// Which synthetic address stream to replay.
    pub stream: StreamKind,
    /// Single-line flip rate, in faults per million transmissions.
    pub transient_ppm: u64,
    /// Double-line (parity-evading) flip rate, in faults per million
    /// transmissions.
    pub desync_ppm: u64,
    /// First word of the heavy-fault burst window.
    pub burst_start: u64,
    /// Length of the burst window, in words (0 disables the burst).
    pub burst_words: u64,
    /// Per-transmission corruption probability inside the burst window.
    pub burst_rate: f64,
}

impl SoakConfig {
    /// The standard soak shape for a stream of `words` words: background
    /// single flips at 300 ppm, silent double flips at 150 ppm, and a
    /// 2048-word burst at 5% starting a quarter of the way in — early
    /// enough that the remaining stream comfortably re-promotes.
    pub fn new(seed: u64, words: u64) -> Self {
        SoakConfig {
            seed,
            words,
            stream: StreamKind::Muxed,
            transient_ppm: 300,
            desync_ppm: 150,
            burst_start: words / 4,
            burst_words: 2048.min(words / 8),
            burst_rate: 0.05,
        }
    }
}

/// The fault-injecting channel a soak run transmits through.
///
/// Faults are drawn fresh on every transmission — retransmissions and
/// forced resyncs of the same word roll the dice again, exactly like
/// retried cycles on a real noisy bus.
pub struct SoakChannel {
    rng: Rng64,
    geometry: BusGeometry,
    config: SoakConfig,
    /// Single-line flips injected.
    pub injected_single: u64,
    /// Double-line flips injected.
    pub injected_double: u64,
    /// Burst-window corruptions injected.
    pub injected_burst: u64,
}

impl SoakChannel {
    /// Builds the channel for a payload of `payload_lines` bus lines.
    ///
    /// Only payload lines are flipped; the rates in `config` are applied
    /// per transmission. The RNG is decoupled from the stream generator
    /// so the fault process does not depend on the address model.
    pub fn new(config: SoakConfig, payload_lines: u32) -> Self {
        SoakChannel {
            rng: Rng64::seed_from_u64(config.seed ^ 0xfa17_1e55_c0de_b05eu64),
            geometry: BusGeometry::new(payload_lines, 0),
            config,
            injected_single: 0,
            injected_double: 0,
            injected_burst: 0,
        }
    }

    fn in_burst(&self, word_index: u64) -> bool {
        self.config.burst_words > 0
            && word_index >= self.config.burst_start
            && word_index < self.config.burst_start + self.config.burst_words
    }
}

impl Channel for SoakChannel {
    fn transmit(&mut self, word_index: u64, mut word: BusState) -> BusState {
        let lines = u64::from(self.geometry.payload_lines);
        if self.in_burst(word_index) && self.rng.gen_bool(self.config.burst_rate) {
            self.injected_burst += 1;
            flip_line(
                &mut word,
                self.geometry,
                self.rng.gen_range(0..lines) as u32,
            );
            return word;
        }
        let roll = self.rng.gen_range(0..1_000_000u64);
        if roll < self.config.transient_ppm {
            self.injected_single += 1;
            flip_line(
                &mut word,
                self.geometry,
                self.rng.gen_range(0..lines) as u32,
            );
        } else if roll < self.config.transient_ppm + self.config.desync_ppm {
            self.injected_double += 1;
            let a = self.rng.gen_range(0..lines) as u32;
            let mut b = self.rng.gen_range(0..lines) as u32;
            while b == a {
                b = self.rng.gen_range(0..lines) as u32;
            }
            flip_line(&mut word, self.geometry, a);
            flip_line(&mut word, self.geometry, b);
        }
        word
    }
}

/// One failed gate: which invariant broke and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateFailure {
    /// Short gate name (`unrecovered`, `resync-bound`, `demotion`,
    /// `repromotion`, `escalation`, `deescalation`).
    pub gate: &'static str,
    /// Human-readable explanation.
    pub reason: String,
}

/// The outcome of a soak run.
#[derive(Clone, Debug, PartialEq)]
pub struct SoakReport {
    /// The soak parameters the run used.
    pub soak: SoakConfig,
    /// Pipeline statistics at end of stream.
    pub stats: PipelineMetrics,
    /// Single-line flips the channel injected.
    pub injected_single: u64,
    /// Double-line flips the channel injected.
    pub injected_double: u64,
    /// Burst-window corruptions the channel injected.
    pub injected_burst: u64,
    /// Gates that failed (empty on a passing run).
    pub failures: Vec<GateFailure>,
}

impl SoakReport {
    /// True when every gate passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Evaluates the soak gates over final statistics.
///
/// The gates encode the acceptance criteria of a supervised run: no word
/// may end unrecovered, every desync must resync within the policy's
/// bound, and the burst must have demonstrably driven the adaptation
/// machinery through a full cycle (only checked when the relevant policy
/// is enabled and faults were actually injected). With adaptive
/// redundancy enabled the cycle checked is the tier ladder — at least
/// one escalation and one de-escalation — instead of the
/// demotion/repromotion cycle: the ladder reacts to the burst first
/// (its threshold is lower), and once the ECC tier is correcting flips
/// in-flight the error rate the degradation machine sees may never
/// reach its own demotion threshold.
pub fn evaluate_gates(
    config: &PipelineConfig,
    stats: &PipelineMetrics,
    expect_degradation_cycle: bool,
) -> Vec<GateFailure> {
    let mut failures = Vec::new();
    if stats.unrecovered > 0 {
        failures.push(GateFailure {
            gate: "unrecovered",
            reason: format!("{} word(s) ended with no correct decode", stats.unrecovered),
        });
    }
    let bound = config.policy.resync_bound;
    if stats.max_resync_gap > bound {
        failures.push(GateFailure {
            gate: "resync-bound",
            reason: format!(
                "worst resync took {} transmissions, bound is {}",
                stats.max_resync_gap, bound
            ),
        });
    }
    if expect_degradation_cycle {
        if config.redundancy.enabled {
            if stats.escalations == 0 {
                failures.push(GateFailure {
                    gate: "escalation",
                    reason: "the fault burst never escalated the redundancy tier".to_string(),
                });
            }
            if stats.deescalations == 0 {
                failures.push(GateFailure {
                    gate: "deescalation",
                    reason: "the tier was never stepped back down after the burst".to_string(),
                });
            }
        } else {
            if stats.demotions == 0 {
                failures.push(GateFailure {
                    gate: "demotion",
                    reason: "the fault burst never demoted the code".to_string(),
                });
            }
            if stats.repromotions == 0 {
                failures.push(GateFailure {
                    gate: "repromotion",
                    reason: "the code was never re-promoted after the burst".to_string(),
                });
            }
        }
    }
    failures
}

/// Runs one soak campaign: generates the seeded stream, drives the
/// pipeline through the fault-injecting channel, and evaluates gates.
///
/// # Errors
///
/// Propagates [`PipelineError`] from pipeline construction or a fatal
/// codec error (neither occurs for valid configurations).
pub fn run_soak(config: PipelineConfig, soak: SoakConfig) -> Result<SoakReport, PipelineError> {
    let mut pipe = Pipeline::new(config)?;
    let mut channel = SoakChannel::new(soak, config.params.width.bits());
    let accesses = stream_for(
        soak.stream,
        usize::try_from(soak.words).unwrap_or(usize::MAX),
        soak.seed,
    );
    let stats = pipe.run(accesses, &mut channel)?;
    let adapting = config.degrade.enabled || config.redundancy.enabled;
    let expect_cycle = adapting && soak.burst_words > 0 && config.policy.enabled;
    let failures = evaluate_gates(&config, &stats, expect_cycle);
    Ok(SoakReport {
        soak,
        stats,
        injected_single: channel.injected_single,
        injected_double: channel.injected_double,
        injected_burst: channel.injected_burst,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use buscode_core::{CodeKind, CodeParams};

    #[test]
    fn soak_with_recovery_passes_every_gate() {
        let config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        let soak = SoakConfig::new(42, 50_000);
        let report = run_soak(config, soak).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.stats.words, 50_000);
        assert!(report.injected_single > 0);
        assert!(report.injected_double > 0);
        assert!(report.injected_burst > 0);
        assert!(report.stats.demotions >= 1);
        assert!(report.stats.repromotions >= 1);
        assert_eq!(report.stats.unrecovered, 0);
    }

    #[test]
    fn soak_without_recovery_fails_the_unrecovered_gate() {
        let mut config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        config.policy.enabled = false;
        let soak = SoakConfig::new(42, 50_000);
        let report = run_soak(config, soak).unwrap();
        assert!(!report.passed());
        assert!(report.stats.unrecovered > 0);
        assert!(report.failures.iter().any(|f| f.gate == "unrecovered"));
    }

    #[test]
    fn adaptive_soak_walks_the_redundancy_ladder() {
        let mut config = PipelineConfig::new(CodeKind::T0, CodeParams::default());
        config.redundancy = crate::RedundancyPolicy::adaptive();
        let report = run_soak(config, SoakConfig::new(42, 100_000)).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.stats.escalations >= 1, "{:?}", report.stats);
        assert!(report.stats.deescalations >= 1, "{:?}", report.stats);
        assert!(report.stats.corrected_faults > 0, "{:?}", report.stats);
        assert!(report.stats.ecc_words > 0, "{:?}", report.stats);
        assert_eq!(report.stats.unrecovered, 0);
    }

    #[test]
    fn soak_is_reproducible() {
        let config = PipelineConfig::new(CodeKind::DualT0, CodeParams::default());
        let a = run_soak(config, SoakConfig::new(7, 20_000)).unwrap();
        let b = run_soak(config, SoakConfig::new(7, 20_000)).unwrap();
        assert_eq!(a, b);
    }
}
