//! Time sources for the chunk watchdog.
//!
//! The watchdog needs *a* monotonic clock, not *the* clock: tests drive
//! the deadline logic deterministically with [`ManualClock`] while the
//! CLI uses [`SystemClock`].

/// A monotonic microsecond clock the watchdog reads between words.
///
/// `Send` is part of the bound so a pipeline (which owns its clock) can
/// migrate across the worker threads of a serving runtime.
pub trait Clock: Send {
    /// Microseconds elapsed since an arbitrary fixed origin.
    fn now_micros(&mut self) -> u64;
}

/// The real monotonic clock ([`std::time::Instant`]).
#[derive(Clone, Debug)]
pub struct SystemClock {
    start: std::time::Instant,
}

impl SystemClock {
    /// Creates a clock whose origin is now.
    pub fn new() -> Self {
        SystemClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_micros(&mut self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A deterministic test clock that advances by a fixed step on every
/// read — so "each word takes `step` microseconds" can be simulated
/// without sleeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ManualClock {
    now: u64,
    step: u64,
}

impl ManualClock {
    /// Creates a clock starting at zero that advances `step_micros` per
    /// read.
    pub fn advancing(step_micros: u64) -> Self {
        ManualClock {
            now: 0,
            step: step_micros,
        }
    }
}

impl Clock for ManualClock {
    fn now_micros(&mut self) -> u64 {
        let t = self.now;
        self.now = self.now.saturating_add(self.step);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_steps_deterministically() {
        let mut c = ManualClock::advancing(10);
        assert_eq!(c.now_micros(), 0);
        assert_eq!(c.now_micros(), 10);
        assert_eq!(c.now_micros(), 20);
    }

    #[test]
    fn system_clock_is_monotone() {
        let mut c = SystemClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}
