//! Adaptive redundancy: an online fault-rate estimator that walks the
//! bare → parity → ECC protection ladder.
//!
//! The [`RedundancyManager`] watches the per-word fault signal the
//! supervisor feeds it — decode errors *and* the flips the ECC layer
//! corrected silently (observable only through
//! [`Decoder::corrected_count`][buscode_core::Decoder::corrected_count])
//! — and decides which [`Tier`][buscode_core::Tier] the bus should run
//! at:
//!
//! - **escalation** is immediate: when the faults observed inside one
//!   sliding window reach the threshold, the manager steps up one tier
//!   (bare → parity → ECC) and restarts the window;
//! - **de-escalation** is hysteretic: only after a full run of
//!   consecutive fault-free words does the manager step back down one
//!   tier, so a noisy bus does not flap between tiers.
//!
//! The runtime applies a tier shift by rebuilding both codec halves at
//! the new tier from reset — a tier switch doubles as a resync, so the
//! ladder can be walked mid-stream without any handshake beyond the words
//! themselves. `buscode-power`'s `ecc_cost` prices what each rung costs
//! in milliwatts.

use buscode_core::Tier;

/// When to escalate the redundancy tier, and when to step back down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RedundancyPolicy {
    /// Master switch: `false` pins the tier the pipeline was configured
    /// with (`--redundancy fixed`).
    pub enabled: bool,
    /// Length of the fault-rate observation window, in words.
    pub window: u64,
    /// Faults observed within one window that trigger a one-tier
    /// escalation.
    pub escalate_faults: u32,
    /// Consecutive fault-free words required before de-escalating one
    /// tier (the hysteresis).
    pub stable_window: u64,
    /// The tier the manager starts at.
    pub start: Tier,
    /// The tier de-escalation never goes below.
    pub floor: Tier,
}

impl Default for RedundancyPolicy {
    fn default() -> Self {
        RedundancyPolicy {
            enabled: false,
            window: 256,
            escalate_faults: 4,
            stable_window: 1024,
            start: Tier::Bare,
            floor: Tier::Bare,
        }
    }
}

impl RedundancyPolicy {
    /// The adaptive preset: starts bare, escalates within a 256-word
    /// window, de-escalates after 1024 clean words, full ladder.
    pub fn adaptive() -> Self {
        RedundancyPolicy {
            enabled: true,
            ..RedundancyPolicy::default()
        }
    }
}

/// A tier change the runtime must apply (rebuild both codec halves at
/// [`RedundancyManager::tier`], from reset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierShift {
    /// One tier up the ladder.
    Escalate,
    /// One tier down the ladder.
    Deescalate,
}

/// The mutable registers of the redundancy manager, exposed so
/// checkpoints can carry them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RedundancySnapshot {
    /// Current tier.
    pub tier: Tier,
    /// Word index where the current observation window started.
    pub window_start: u64,
    /// Faults observed in the current window.
    pub window_faults: u32,
    /// Consecutive fault-free words observed above the floor tier.
    pub clean_run: u64,
}

/// The windowed fault-rate estimator driving the tier ladder.
#[derive(Clone, Copy, Debug)]
pub struct RedundancyManager {
    policy: RedundancyPolicy,
    tier: Tier,
    window_start: u64,
    window_faults: u32,
    clean_run: u64,
}

impl RedundancyManager {
    /// Builds a manager at the policy's start tier.
    pub fn new(policy: RedundancyPolicy) -> Self {
        RedundancyManager {
            policy,
            tier: policy.start,
            window_start: 0,
            window_faults: 0,
            clean_run: 0,
        }
    }

    /// The tier the bus should currently run at.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Captures the mutable registers.
    pub fn snapshot(&self) -> RedundancySnapshot {
        RedundancySnapshot {
            tier: self.tier,
            window_start: self.window_start,
            window_faults: self.window_faults,
            clean_run: self.clean_run,
        }
    }

    /// Restores the mutable registers.
    pub fn restore(&mut self, snap: RedundancySnapshot) {
        self.tier = snap.tier;
        self.window_start = snap.window_start;
        self.window_faults = snap.window_faults;
        self.clean_run = snap.clean_run;
    }

    /// Observes one word; returns a shift the runtime must apply.
    ///
    /// `had_fault` must include faults the current tier absorbed
    /// silently — in particular ECC in-flight corrections — or the
    /// estimator would read a fully-corrected noisy bus as clean and
    /// de-escalate straight back into the noise.
    pub fn on_word(&mut self, word_index: u64, had_fault: bool) -> Option<TierShift> {
        if !self.policy.enabled {
            return None;
        }
        if word_index.saturating_sub(self.window_start) >= self.policy.window {
            self.window_start = word_index;
            self.window_faults = 0;
        }
        if had_fault {
            self.clean_run = 0;
            self.window_faults += 1;
            if self.window_faults >= self.policy.escalate_faults {
                if let Some(up) = self.tier.up() {
                    self.tier = up;
                    self.window_start = word_index;
                    self.window_faults = 0;
                    return Some(TierShift::Escalate);
                }
            }
            return None;
        }
        self.clean_run += 1;
        if self.clean_run >= self.policy.stable_window && self.tier > self.policy.floor {
            if let Some(down) = self.tier.down() {
                self.tier = down;
                self.clean_run = 0;
                self.window_start = word_index;
                self.window_faults = 0;
                return Some(TierShift::Deescalate);
            }
        }
        None
    }

    /// An out-of-band escalation request: step up one tier *now*,
    /// bypassing the windowed estimator.
    ///
    /// The link layer raises this when the channel's bad-state dwell
    /// persists past its retry budget — at that point retransmitting
    /// harder is futile and more redundancy per word is the only move
    /// left. The window and clean-run registers restart at `word_index`
    /// so the hysteresis timers measure from the hint, exactly as they do
    /// after a windowed escalation.
    ///
    /// Returns `None` when the policy is disabled or the ladder is
    /// already at the top.
    pub fn hint_escalate(&mut self, word_index: u64) -> Option<TierShift> {
        if !self.policy.enabled {
            return None;
        }
        let up = self.tier.up()?;
        self.tier = up;
        self.window_start = word_index;
        self.window_faults = 0;
        self.clean_run = 0;
        Some(TierShift::Escalate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RedundancyPolicy {
        RedundancyPolicy {
            enabled: true,
            window: 16,
            escalate_faults: 3,
            stable_window: 8,
            start: Tier::Bare,
            floor: Tier::Bare,
        }
    }

    #[test]
    fn the_ladder_is_ordered_and_walkable() {
        assert!(Tier::Bare < Tier::Parity);
        assert!(Tier::Parity < Tier::Ecc);
        assert_eq!(Tier::Bare.up(), Some(Tier::Parity));
        assert_eq!(Tier::Ecc.up(), None);
        assert_eq!(Tier::Bare.down(), None);
        for tier in Tier::all() {
            assert_eq!(Tier::from_name(tier.name()), Some(*tier));
        }
        assert_eq!(Tier::from_name("nonesuch"), None);
    }

    #[test]
    fn escalates_at_threshold_tier_by_tier() {
        let mut m = RedundancyManager::new(policy());
        let mut word = 0u64;
        for _ in 0..2 {
            assert_eq!(m.on_word(word, true), None);
            word += 1;
        }
        assert_eq!(m.on_word(word, true), Some(TierShift::Escalate));
        assert_eq!(m.tier(), Tier::Parity);
        word += 1;
        // The window restarted: three more faults for the next rung.
        for _ in 0..2 {
            assert_eq!(m.on_word(word, true), None);
            word += 1;
        }
        assert_eq!(m.on_word(word, true), Some(TierShift::Escalate));
        assert_eq!(m.tier(), Tier::Ecc);
        word += 1;
        // At the top of the ladder, faults no longer shift anything.
        for _ in 0..10 {
            assert_eq!(m.on_word(word, true), None);
            word += 1;
        }
        assert_eq!(m.tier(), Tier::Ecc);
    }

    #[test]
    fn deescalates_only_after_the_stable_window() {
        let mut m = RedundancyManager::new(RedundancyPolicy {
            start: Tier::Ecc,
            ..policy()
        });
        let mut word = 0u64;
        for _ in 0..7 {
            assert_eq!(m.on_word(word, false), None);
            word += 1;
        }
        assert_eq!(m.on_word(word, false), Some(TierShift::Deescalate));
        assert_eq!(m.tier(), Tier::Parity);
        word += 1;
        // A fault resets the clean run.
        for _ in 0..7 {
            assert_eq!(m.on_word(word, false), None);
            word += 1;
        }
        assert_eq!(m.on_word(word, true), None);
        word += 1;
        for _ in 0..7 {
            assert_eq!(m.on_word(word, false), None);
            word += 1;
        }
        assert_eq!(m.on_word(word, false), Some(TierShift::Deescalate));
        assert_eq!(m.tier(), Tier::Bare);
        word += 1;
        // At the floor, clean words keep it there.
        for _ in 0..20 {
            assert_eq!(m.on_word(word, false), None);
            word += 1;
        }
        assert_eq!(m.tier(), Tier::Bare);
    }

    #[test]
    fn the_floor_is_respected() {
        let mut m = RedundancyManager::new(RedundancyPolicy {
            start: Tier::Ecc,
            floor: Tier::Parity,
            ..policy()
        });
        for word in 0..8 {
            m.on_word(word, false);
        }
        assert_eq!(m.tier(), Tier::Parity);
        for word in 8..100 {
            assert_eq!(m.on_word(word, false), None);
        }
        assert_eq!(m.tier(), Tier::Parity);
    }

    #[test]
    fn window_roll_forgets_old_faults() {
        let mut m = RedundancyManager::new(policy());
        assert_eq!(m.on_word(0, true), None);
        assert_eq!(m.on_word(1, true), None);
        // The third fault lands in a fresh window: no escalation.
        assert_eq!(m.on_word(20, true), None);
        assert_eq!(m.tier(), Tier::Bare);
    }

    #[test]
    fn disabled_manager_never_shifts() {
        let mut m = RedundancyManager::new(RedundancyPolicy {
            enabled: false,
            ..policy()
        });
        for i in 0..100 {
            assert_eq!(m.on_word(i, true), None);
        }
        assert_eq!(m.tier(), Tier::Bare);
    }

    #[test]
    fn hint_escalate_steps_up_immediately_and_respects_the_ladder() {
        let mut m = RedundancyManager::new(policy());
        assert_eq!(m.hint_escalate(10), Some(TierShift::Escalate));
        assert_eq!(m.tier(), Tier::Parity);
        assert_eq!(m.hint_escalate(11), Some(TierShift::Escalate));
        assert_eq!(m.tier(), Tier::Ecc);
        // Top of the ladder: the hint has nowhere to go.
        assert_eq!(m.hint_escalate(12), None);
        assert_eq!(m.tier(), Tier::Ecc);
        // The registers restarted at the hint, so de-escalation needs a
        // full stable window from there.
        for word in 13..20 {
            assert_eq!(m.on_word(word, false), None);
        }
        assert_eq!(m.on_word(20, false), Some(TierShift::Deescalate));
    }

    #[test]
    fn hint_escalate_is_inert_when_disabled() {
        let mut m = RedundancyManager::new(RedundancyPolicy {
            enabled: false,
            ..policy()
        });
        assert_eq!(m.hint_escalate(0), None);
        assert_eq!(m.tier(), Tier::Bare);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut m = RedundancyManager::new(policy());
        m.on_word(0, true);
        m.on_word(1, true);
        m.on_word(2, true);
        let snap = m.snapshot();
        assert_eq!(snap.tier, Tier::Parity);
        let mut n = RedundancyManager::new(policy());
        n.restore(snap);
        assert_eq!(n.snapshot(), snap);
        assert_eq!(n.tier(), Tier::Parity);
    }
}
