//! `faultrun` — fault-injection campaign driver for the buscode
//! workspace.
//!
//! Runs seeded Monte Carlo fault campaigns over every code × stream kind
//! (bare and under the `Hardened` wrapper), optionally the gate-level
//! campaign over the synthesized codec netlists, and reports silent-data-
//! corruption rate, detection rate, and cycles-to-resync as text or JSON.
//!
//! `--compare` switches to the parity-vs-ecc comparison mode: the same
//! grid swept across all three hardening tiers (bare / parity / ECC) side
//! by side, with an extra corrected-cycles column counting the flips the
//! SEC-DED layer absorbed in-flight.
//!
//! `--smoke` runs the small fixed-seed campaign CI gates on: it exits
//! nonzero if any hardened codec shows corruption beyond its refresh
//! bound or misses a transient-flip detection, or if a bare stateful code
//! stops showing the silent corruption the hardening layer exists for.
//! Combined with `--compare` the gate instead asserts zero silent data
//! corruption and a correction for every injected single flip under ECC.
//!
//! `--model bursty-ge` switches to the Gilbert–Elliott bursty-channel
//! campaign: instead of one drawn fault per trial, a seeded two-state
//! channel rains state-dependent flips, erasures, and drops on every
//! cycle, and the report compares what the bare/parity/ECC tiers deliver
//! under sustained bursty loss. `--profile quiet|bursty|harsh` picks the
//! weather.
//!
//! `--jobs N` shards campaign cells across worker threads; every cell
//! draws from its own seed-derived RNG, so the report is byte-identical
//! to a serial run.
//!
//! ```text
//! faultrun [--trials N] [--len CYCLES] [--refresh R] [--fault MODEL]
//!          [--model bursty-ge] [--profile NAME]
//!          [--gate] [--smoke] [--compare]
//!          [--format text|json] [--seed S] [--jobs N] [--quiet]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use buscode_engine::cli::{self, CommonArgs, JsonPayload, Outcome, Report, ToolRun, COMMON_USAGE};
use buscode_fault::campaign::{
    run_campaign_with, run_comparison_with, run_ge_campaign_with, CampaignConfig, GeCampaignConfig,
};
use buscode_fault::gate::{render_gate_json, render_gate_text, run_gate_campaign};
use buscode_fault::models::{FaultKind, GilbertElliott};
use buscode_fault::GateCampaignConfig;

const TOOL: &str = "faultrun";

fn usage() -> String {
    format!(
        "usage: faultrun [--trials N] [--len CYCLES] [--refresh R] [--fault MODEL] \
         [--model bursty-ge] [--profile NAME] \
         [--gate] [--smoke] [--compare] {COMMON_USAGE}\n\
         fault models: transient-flip stuck-at-0 stuck-at-1 burst drop-cycle duplicate-cycle\n\
         channel models: bursty-ge (profiles: quiet bursty harsh)\n\
         --compare sweeps every cell across the bare/parity/ecc hardening tiers"
    )
}

/// Tool-specific flags left after the common extraction.
struct Options {
    trials: u32,
    stream_len: usize,
    refresh: u64,
    /// Restrict to one fault model (default: all).
    fault: Option<FaultKind>,
    /// Run the Gilbert–Elliott bursty-channel campaign instead.
    bursty: bool,
    /// Named channel profile for the bursty-channel campaign.
    profile: String,
    /// Also run the gate-level campaign.
    gate: bool,
    /// Small fixed-seed campaign with the CI assertions.
    smoke: bool,
    /// Run the parity-vs-ecc comparison instead of the standard campaign.
    compare: bool,
}

fn parse_tool_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        trials: 100,
        stream_len: 500,
        refresh: 32,
        fault: None,
        bursty: false,
        profile: "bursty".to_string(),
        gate: false,
        smoke: false,
        compare: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trials" => {
                let value = it.next().ok_or("--trials needs a value")?;
                opts.trials = u32::try_from(cli::parse_u64("--trials", value)?)
                    .map_err(|_| "--trials out of range".to_string())?;
            }
            "--len" => {
                let value = it.next().ok_or("--len needs a value")?;
                opts.stream_len = cli::parse_u64("--len", value)? as usize;
                if opts.stream_len < 32 {
                    return Err("--len must be at least 32 cycles".to_string());
                }
            }
            "--refresh" => {
                let value = it.next().ok_or("--refresh needs a value")?;
                opts.refresh = cli::parse_u64("--refresh", value)?;
                if opts.refresh == 0 {
                    return Err("--refresh must be at least 1".to_string());
                }
            }
            "--fault" => {
                let value = it.next().ok_or("--fault needs a value")?;
                opts.fault = Some(parse_fault(value)?);
            }
            "--model" => {
                let value = it.next().ok_or("--model needs a value")?;
                if value != "bursty-ge" {
                    return Err(format!(
                        "unknown channel model '{value}' (available: bursty-ge)"
                    ));
                }
                opts.bursty = true;
            }
            "--profile" => {
                let value = it.next().ok_or("--profile needs a value")?;
                if GilbertElliott::named(value).is_none() {
                    return Err(format!(
                        "unknown channel profile '{value}' (available: {})",
                        GilbertElliott::profile_names().join(" ")
                    ));
                }
                opts.profile = value.clone();
            }
            "--gate" => opts.gate = true,
            "--smoke" => opts.smoke = true,
            "--compare" => opts.compare = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.compare && opts.gate {
        return Err("--compare and --gate cannot be combined".to_string());
    }
    if opts.bursty && (opts.compare || opts.gate || opts.smoke || opts.fault.is_some()) {
        return Err(
            "--model bursty-ge cannot be combined with --compare/--gate/--smoke/--fault \
             (the link-layer smoke gate lives in linkrun)"
                .to_string(),
        );
    }
    Ok(opts)
}

fn parse_fault(s: &str) -> Result<FaultKind, String> {
    FaultKind::all()
        .iter()
        .copied()
        .find(|k| k.name() == s)
        .ok_or_else(|| format!("unknown fault model '{s}'"))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonArgs::extract(&mut args) {
        Ok(common) => common,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    if common.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_tool_args(&args) {
        Ok(opts) => opts,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    let run = ToolRun::new(TOOL, env!("CARGO_PKG_VERSION"), common);
    let engine = common.engine();
    let seed = common.seed_or(42);

    if opts.bursty {
        let config = GeCampaignConfig {
            trials: opts.trials,
            stream_len: opts.stream_len,
            seed,
            refresh: opts.refresh,
            profile: GilbertElliott::named(&opts.profile).unwrap_or_else(GilbertElliott::gate),
            profile_name: opts.profile.clone(),
            ..GeCampaignConfig::default()
        };
        let report = match run_ge_campaign_with(&engine, &config) {
            Ok(report) => report,
            Err(err) => {
                return run.finish(&Outcome::error(format!(
                    "bursty-ge campaign failed to run: {err}"
                )))
            }
        };
        let text = report.render_text();
        let data = JsonPayload::new()
            .u64("jobs", engine.jobs() as u64)
            .report("bursty_ge", &report)
            .finish();
        return run.finish(&Outcome::success(text, data).with_metrics(report.metrics()));
    }

    let config = if opts.smoke {
        CampaignConfig {
            seed,
            refresh: opts.refresh,
            ..CampaignConfig::smoke()
        }
    } else {
        CampaignConfig {
            trials: opts.trials,
            stream_len: opts.stream_len,
            seed,
            refresh: opts.refresh,
            faults: match opts.fault {
                Some(kind) => vec![kind],
                None => FaultKind::all().to_vec(),
            },
            ..CampaignConfig::default()
        }
    };

    if opts.compare {
        let report = match run_comparison_with(&engine, &config) {
            Ok(report) => report,
            Err(err) => {
                return run.finish(&Outcome::error(format!("comparison failed to run: {err}")))
            }
        };
        let text = report.render_text();
        let payload = JsonPayload::new()
            .u64("jobs", engine.jobs() as u64)
            .report("comparison", &report);
        let outcome = if opts.smoke {
            let failures = report.smoke_failures();
            cli::gate_outcome(
                text,
                payload,
                &failures,
                &format!(
                    "comparison smoke gate passed ({} cells, seed {}): zero SDC under ecc",
                    report.rows.len(),
                    config.seed
                ),
                format!("{} comparison smoke gate failure(s)", failures.len()),
            )
        } else {
            Outcome::success(text, payload.finish())
        };
        return run.finish(&outcome.with_metrics(report.metrics()));
    }

    let report = match run_campaign_with(&engine, &config) {
        Ok(report) => report,
        Err(err) => return run.finish(&Outcome::error(format!("campaign failed to run: {err}"))),
    };

    let mut text = report.render_text();
    let mut payload = JsonPayload::new()
        .u64("jobs", engine.jobs() as u64)
        .report("campaign", &report);

    if opts.gate {
        let gate_rows = match run_gate_campaign(&GateCampaignConfig {
            trials: opts.trials.min(20),
            seed,
            ..GateCampaignConfig::default()
        }) {
            Ok(rows) => rows,
            Err(err) => return run.finish(&Outcome::error(format!("gate campaign failed: {err}"))),
        };
        text.push_str("\ngate-level campaign (width 8):\n");
        text.push_str(&render_gate_text(&gate_rows));
        payload = payload.raw("gate", &render_gate_json(&gate_rows));
    }

    let outcome = if opts.smoke {
        let failures = report.smoke_failures();
        cli::gate_outcome(
            text,
            payload,
            &failures,
            &format!(
                "smoke gate passed ({} campaign cells, seed {})",
                report.rows.len(),
                config.seed
            ),
            format!("{} smoke gate failure(s)", failures.len()),
        )
    } else {
        Outcome::success(text, payload.finish())
    };
    run.finish(&outcome.with_metrics(report.metrics()))
}
