//! `faultrun` — fault-injection campaign driver for the buscode
//! workspace.
//!
//! Runs seeded Monte Carlo fault campaigns over every code × stream kind
//! (bare and under the `Hardened` wrapper), optionally the gate-level
//! campaign over the synthesized codec netlists, and reports silent-data-
//! corruption rate, detection rate, and cycles-to-resync as text or JSON.
//!
//! `--smoke` runs the small fixed-seed campaign CI gates on: it exits
//! nonzero if any hardened codec shows corruption beyond its refresh
//! bound or misses a transient-flip detection, or if a bare stateful code
//! stops showing the silent corruption the hardening layer exists for.
//!
//! ```text
//! faultrun [--format text|json] [--trials N] [--len CYCLES] [--seed S]
//!          [--refresh R] [--fault MODEL] [--gate] [--smoke]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use buscode_fault::campaign::{run_campaign, CampaignConfig};
use buscode_fault::gate::{render_gate_json, render_gate_text, run_gate_campaign};
use buscode_fault::models::FaultKind;
use buscode_fault::GateCampaignConfig;

/// Parsed command line.
struct Options {
    json: bool,
    trials: u32,
    stream_len: usize,
    seed: u64,
    refresh: u64,
    /// Restrict to one fault model (default: all).
    fault: Option<FaultKind>,
    /// Also run the gate-level campaign.
    gate: bool,
    /// Small fixed-seed campaign with the CI assertions.
    smoke: bool,
}

/// Outcome of argument parsing: run, print help, or reject.
enum Parsed {
    Run(Options),
    Help,
}

impl Options {
    fn parse(args: &[String]) -> Result<Parsed, String> {
        let mut opts = Options {
            json: false,
            trials: 100,
            stream_len: 500,
            seed: 42,
            refresh: 32,
            fault: None,
            gate: false,
            smoke: false,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--format" => {
                    let value = it.next().ok_or("--format needs a value")?;
                    opts.json = match value.as_str() {
                        "json" => true,
                        "text" => false,
                        other => return Err(format!("unknown format '{other}'")),
                    };
                }
                "--trials" => {
                    opts.trials = parse_num(it.next().ok_or("--trials needs a value")?)? as u32;
                }
                "--len" => {
                    opts.stream_len = parse_num(it.next().ok_or("--len needs a value")?)? as usize;
                    if opts.stream_len < 32 {
                        return Err("--len must be at least 32 cycles".to_string());
                    }
                }
                "--seed" => {
                    opts.seed = parse_num(it.next().ok_or("--seed needs a value")?)?;
                }
                "--refresh" => {
                    opts.refresh = parse_num(it.next().ok_or("--refresh needs a value")?)?;
                    if opts.refresh == 0 {
                        return Err("--refresh must be at least 1".to_string());
                    }
                }
                "--fault" => {
                    let value = it.next().ok_or("--fault needs a value")?;
                    opts.fault = Some(parse_fault(value)?);
                }
                "--gate" => opts.gate = true,
                "--smoke" => opts.smoke = true,
                "--help" | "-h" => return Ok(Parsed::Help),
                other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
            }
        }
        Ok(Parsed::Run(opts))
    }
}

const USAGE: &str = "usage: faultrun [--format text|json] [--trials N] [--len CYCLES] \
[--seed S] [--refresh R] [--fault MODEL] [--gate] [--smoke]\n\
fault models: transient-flip stuck-at-0 stuck-at-1 burst drop-cycle duplicate-cycle";

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("'{s}' is not a nonnegative integer"))
}

fn parse_fault(s: &str) -> Result<FaultKind, String> {
    FaultKind::all()
        .iter()
        .copied()
        .find(|k| k.name() == s)
        .ok_or_else(|| format!("unknown fault model '{s}'\n{USAGE}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(Parsed::Run(opts)) => opts,
        Ok(Parsed::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let config = if opts.smoke {
        CampaignConfig {
            seed: opts.seed,
            refresh: opts.refresh,
            ..CampaignConfig::smoke()
        }
    } else {
        CampaignConfig {
            trials: opts.trials,
            stream_len: opts.stream_len,
            seed: opts.seed,
            refresh: opts.refresh,
            faults: match opts.fault {
                Some(kind) => vec![kind],
                None => FaultKind::all().to_vec(),
            },
            ..CampaignConfig::default()
        }
    };

    let report = match run_campaign(&config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("faultrun: campaign failed to run: {err}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    if opts.gate {
        let gate_rows = match run_gate_campaign(&GateCampaignConfig {
            trials: opts.trials.min(20),
            seed: opts.seed,
            ..GateCampaignConfig::default()
        }) {
            Ok(rows) => rows,
            Err(err) => {
                eprintln!("faultrun: gate campaign failed: {err}");
                return ExitCode::from(2);
            }
        };
        if opts.json {
            println!("{}", render_gate_json(&gate_rows));
        } else {
            println!("\ngate-level campaign (width 8):");
            print!("{}", render_gate_text(&gate_rows));
        }
    }

    if opts.smoke {
        let failures = report.smoke_failures();
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("faultrun: SMOKE FAILURE: {failure}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "faultrun: smoke gate passed ({} campaign cells, seed {})",
            report.rows.len(),
            config.seed
        );
    }
    ExitCode::SUCCESS
}
