//! Behavioral fault models: what can go wrong on the wires between the
//! encoder and the decoder.
//!
//! Faults are modeled on the encoded word stream — the [`BusState`]
//! sequence an encoder drove — because that is the boundary the two codec
//! halves share: anything a physical fault does to the lines is, from the
//! decoder's point of view, a transformation of that sequence. The
//! models:
//!
//! - [`FaultKind::TransientFlip`] — one line flips for one cycle
//!   (crosstalk, SEU on a bus latch);
//! - [`FaultKind::StuckAt0`] / [`FaultKind::StuckAt1`] — one line reads
//!   constant for a window of cycles (solder joint, bridging fault; the
//!   campaign uses a finite window so resync is measurable);
//! - [`FaultKind::Burst`] — several consecutive cycles each lose a random
//!   line (supply noise, simultaneous-switching events);
//! - [`FaultKind::DropCycle`] / [`FaultKind::DuplicateCycle`] — a
//!   handshake fault deletes or repeats one bus cycle, shifting the
//!   stream under the decoder.
//!
//! Every model is deterministic given an [`Rng64`] — campaigns are
//! replayable from their seed.

use buscode_core::rng::Rng64;
use buscode_core::{Access, AccessKind, BusState};

/// The behavioral fault models; see the [module docs](self).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// One random line flips for exactly one cycle.
    TransientFlip,
    /// One random line reads 0 for a window of cycles.
    StuckAt0,
    /// One random line reads 1 for a window of cycles.
    StuckAt1,
    /// Consecutive cycles each get one random line flipped.
    Burst,
    /// One bus cycle disappears: the decoder never sees it.
    DropCycle,
    /// One bus cycle is latched twice: the decoder sees it again.
    DuplicateCycle,
}

impl FaultKind {
    /// Every model, in report order.
    pub fn all() -> &'static [FaultKind] {
        &[
            FaultKind::TransientFlip,
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::Burst,
            FaultKind::DropCycle,
            FaultKind::DuplicateCycle,
        ]
    }

    /// A short stable identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransientFlip => "transient-flip",
            FaultKind::StuckAt0 => "stuck-at-0",
            FaultKind::StuckAt1 => "stuck-at-1",
            FaultKind::Burst => "burst",
            FaultKind::DropCycle => "drop-cycle",
            FaultKind::DuplicateCycle => "duplicate-cycle",
        }
    }

    /// True for the models that corrupt line values in place; false for
    /// the cycle-structure faults (drop/duplicate), which preserve every
    /// word but change how many the decoder sees.
    pub fn corrupts_lines(self) -> bool {
        !matches!(self, FaultKind::DropCycle | FaultKind::DuplicateCycle)
    }
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The geometry a fault injector needs: how many lines of each kind the
/// bus carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusGeometry {
    /// Payload line count.
    pub payload_lines: u32,
    /// Redundant line count (0 for irredundant codes).
    pub aux_lines: u32,
}

impl BusGeometry {
    /// Creates a geometry.
    pub fn new(payload_lines: u32, aux_lines: u32) -> Self {
        BusGeometry {
            payload_lines,
            aux_lines,
        }
    }

    /// Total transmitted lines.
    pub fn total_lines(self) -> u32 {
        self.payload_lines + self.aux_lines
    }
}

/// Flips line `line` (payload lines first, then aux lines) of one word.
pub fn flip_line(word: &mut BusState, geometry: BusGeometry, line: u32) {
    debug_assert!(line < geometry.total_lines());
    if line < geometry.payload_lines {
        word.payload ^= 1 << line;
    } else {
        word.aux ^= 1 << (line - geometry.payload_lines);
    }
}

/// Flips one uniformly random line of one word.
pub fn flip_random_line(word: &mut BusState, geometry: BusGeometry, rng: &mut Rng64) {
    let line = rng.gen_range(0..u64::from(geometry.total_lines())) as u32;
    flip_line(word, geometry, line);
}

/// Forces line `line` of one word to `value`, returning whether the word
/// actually changed (a stuck-at only manifests when the healthy value
/// differs).
pub fn force_line(word: &mut BusState, geometry: BusGeometry, line: u32, value: bool) -> bool {
    let before = *word;
    if line < geometry.payload_lines {
        let mask = 1u64 << line;
        word.payload = if value {
            word.payload | mask
        } else {
            word.payload & !mask
        };
    } else {
        let mask = 1u64 << (line - geometry.payload_lines);
        word.aux = if value {
            word.aux | mask
        } else {
            word.aux & !mask
        };
    }
    *word != before
}

/// Flips one random payload-or-aux line of some words in transit — the
/// shared corruption helper the black-box fault tests use. Every line is
/// a candidate, including every aux line (T0_BI carries two; dual T0_BI's
/// `INCV` is line `payload_lines`).
///
/// Returns the number of corrupted words.
pub fn corrupt_words(
    words: &mut [BusState],
    geometry: BusGeometry,
    rng: &mut Rng64,
    rate: f64,
) -> usize {
    let mut injected = 0;
    for word in words.iter_mut() {
        if rng.gen_bool(rate) {
            flip_random_line(word, geometry, rng);
            injected += 1;
        }
    }
    injected
}

/// One concrete fault placement: where and what, fully determined so a
/// trial is replayable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// The model.
    pub kind: FaultKind,
    /// First affected cycle (index into the encoded stream).
    pub cycle: usize,
    /// Affected line for line faults; unused for drop/duplicate.
    pub line: u32,
    /// Window length for stuck-at and burst faults.
    pub window: usize,
}

impl FaultSite {
    /// Draws a fault placement uniformly: the cycle from
    /// `warmup..len - margin` (so faults land in steady state and leave
    /// room to observe resync), the line uniformly over the geometry, and
    /// the window from `2..=window_max`.
    pub fn draw(kind: FaultKind, len: usize, geometry: BusGeometry, rng: &mut Rng64) -> FaultSite {
        let warmup = (len / 10).max(2);
        let margin = (len / 5).max(4);
        let cycle = rng.gen_range(warmup as u64..(len - margin) as u64) as usize;
        let line = rng.gen_range(0..u64::from(geometry.total_lines())) as u32;
        let window = rng.gen_range(2..=6u64) as usize;
        FaultSite {
            kind,
            cycle,
            line,
            window,
        }
    }
}

/// What the decoder observes after a fault: the (possibly corrupted,
/// possibly re-timed) word/`SEL` sequence, paired with the address each
/// observed cycle *should* decode to.
pub struct FaultedStream {
    /// The words and `SEL` values the decoder sees, in arrival order.
    pub observed: Vec<(BusState, AccessKind)>,
    /// The address the master intended for each observed cycle.
    pub expected: Vec<u64>,
}

/// Applies one fault to an encoded stream.
///
/// For the line faults the timing is unchanged and `expected[i]` is
/// simply `stream[i].address`. For [`FaultKind::DropCycle`] the faulted
/// word (and its `SEL`) never arrives, so from the fault cycle on the
/// decoder is judged against the shifted intent; for
/// [`FaultKind::DuplicateCycle`] the word arrives twice and the repeat is
/// expected to decode to the same address (an idempotent re-latch), with
/// the tail truncated to the original length.
pub fn apply_fault(
    words: &[BusState],
    stream: &[Access],
    geometry: BusGeometry,
    site: FaultSite,
) -> FaultedStream {
    debug_assert_eq!(words.len(), stream.len());
    let mut observed: Vec<(BusState, AccessKind)> = words
        .iter()
        .zip(stream)
        .map(|(&w, a)| (w, a.kind))
        .collect();
    let mut expected: Vec<u64> = stream.iter().map(|a| a.address).collect();
    match site.kind {
        FaultKind::TransientFlip => {
            flip_line(&mut observed[site.cycle].0, geometry, site.line);
        }
        FaultKind::StuckAt0 | FaultKind::StuckAt1 => {
            let value = site.kind == FaultKind::StuckAt1;
            let end = (site.cycle + site.window).min(observed.len());
            for (word, _) in &mut observed[site.cycle..end] {
                force_line(word, geometry, site.line, value);
            }
        }
        FaultKind::Burst => {
            let end = (site.cycle + site.window).min(observed.len());
            // Deterministic line walk across the burst: consecutive
            // cycles hit rotating lines starting from the drawn one.
            for (offset, (word, _)) in observed[site.cycle..end].iter_mut().enumerate() {
                let line = (site.line + offset as u32) % geometry.total_lines();
                flip_line(word, geometry, line);
            }
        }
        FaultKind::DropCycle => {
            observed.remove(site.cycle);
            expected.remove(site.cycle);
        }
        FaultKind::DuplicateCycle => {
            let repeat = observed[site.cycle];
            observed.insert(site.cycle + 1, repeat);
            expected.insert(site.cycle + 1, expected[site.cycle]);
            observed.truncate(words.len());
            expected.truncate(words.len());
        }
    }
    FaultedStream { observed, expected }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize) -> Vec<BusState> {
        (0..n as u64).map(|i| BusState::new(i, 0)).collect()
    }

    fn accesses(n: usize) -> Vec<Access> {
        (0..n as u64).map(Access::instruction).collect()
    }

    #[test]
    fn flip_covers_every_aux_line() {
        // The regression the shared helper exists for: with two aux
        // lines, both must be reachable.
        let geometry = BusGeometry::new(4, 2);
        let mut seen_aux = [false; 2];
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..200 {
            let mut word = BusState::new(0, 0);
            flip_random_line(&mut word, geometry, &mut rng);
            for (i, seen) in seen_aux.iter_mut().enumerate() {
                if word.aux & (1 << i) != 0 {
                    *seen = true;
                }
            }
        }
        assert!(seen_aux.iter().all(|&s| s), "both aux lines must be hit");
    }

    #[test]
    fn force_line_reports_change() {
        let geometry = BusGeometry::new(4, 1);
        let mut word = BusState::new(0b1010, 1);
        assert!(!force_line(&mut word, geometry, 1, true), "already 1");
        assert!(force_line(&mut word, geometry, 1, false));
        assert_eq!(word.payload, 0b1000);
        assert!(force_line(&mut word, geometry, 4, false), "aux line 0");
        assert_eq!(word.aux, 0);
    }

    #[test]
    fn drop_shifts_the_expected_stream() {
        let geometry = BusGeometry::new(8, 0);
        let site = FaultSite {
            kind: FaultKind::DropCycle,
            cycle: 3,
            line: 0,
            window: 0,
        };
        let faulted = apply_fault(&words(10), &accesses(10), geometry, site);
        assert_eq!(faulted.observed.len(), 9);
        assert_eq!(faulted.expected[2], 2);
        assert_eq!(faulted.expected[3], 4, "cycle 3 was dropped");
    }

    #[test]
    fn duplicate_preserves_length_and_repeats() {
        let geometry = BusGeometry::new(8, 0);
        let site = FaultSite {
            kind: FaultKind::DuplicateCycle,
            cycle: 3,
            line: 0,
            window: 0,
        };
        let faulted = apply_fault(&words(10), &accesses(10), geometry, site);
        assert_eq!(faulted.observed.len(), 10);
        assert_eq!(faulted.observed[3].0, faulted.observed[4].0);
        assert_eq!(faulted.expected[4], 3, "the repeat re-latches cycle 3");
        assert_eq!(faulted.expected[9], 8, "tail shifted by one");
    }

    #[test]
    fn transient_flip_touches_exactly_one_cycle() {
        let geometry = BusGeometry::new(8, 1);
        let clean = words(10);
        let site = FaultSite {
            kind: FaultKind::TransientFlip,
            cycle: 5,
            line: 8, // the aux line
            window: 0,
        };
        let faulted = apply_fault(&clean, &accesses(10), geometry, site);
        for (i, (word, _)) in faulted.observed.iter().enumerate() {
            if i == 5 {
                assert_eq!(word.aux, 1);
            } else {
                assert_eq!(*word, clean[i]);
            }
        }
    }

    #[test]
    fn sites_land_in_steady_state() {
        let geometry = BusGeometry::new(8, 1);
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..500 {
            let site = FaultSite::draw(FaultKind::Burst, 100, geometry, &mut rng);
            assert!(site.cycle >= 10);
            assert!(site.cycle < 80);
            assert!((2..=6).contains(&site.window));
            assert!(site.line < 9);
        }
    }
}
