//! Behavioral fault models: what can go wrong on the wires between the
//! encoder and the decoder.
//!
//! Faults are modeled on the encoded word stream — the [`BusState`]
//! sequence an encoder drove — because that is the boundary the two codec
//! halves share: anything a physical fault does to the lines is, from the
//! decoder's point of view, a transformation of that sequence. The
//! models:
//!
//! - [`FaultKind::TransientFlip`] — one line flips for one cycle
//!   (crosstalk, SEU on a bus latch);
//! - [`FaultKind::StuckAt0`] / [`FaultKind::StuckAt1`] — one line reads
//!   constant for a window of cycles (solder joint, bridging fault; the
//!   campaign uses a finite window so resync is measurable);
//! - [`FaultKind::Burst`] — several consecutive cycles each lose a random
//!   line (supply noise, simultaneous-switching events);
//! - [`FaultKind::DropCycle`] / [`FaultKind::DuplicateCycle`] — a
//!   handshake fault deletes or repeats one bus cycle, shifting the
//!   stream under the decoder.
//!
//! Every model is deterministic given an [`Rng64`] — campaigns are
//! replayable from their seed.

use buscode_core::rng::Rng64;
use buscode_core::{Access, AccessKind, BusState};

/// The behavioral fault models; see the [module docs](self).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// One random line flips for exactly one cycle.
    TransientFlip,
    /// One random line reads 0 for a window of cycles.
    StuckAt0,
    /// One random line reads 1 for a window of cycles.
    StuckAt1,
    /// Consecutive cycles each get one random line flipped.
    Burst,
    /// One bus cycle disappears: the decoder never sees it.
    DropCycle,
    /// One bus cycle is latched twice: the decoder sees it again.
    DuplicateCycle,
}

impl FaultKind {
    /// Every model, in report order.
    pub fn all() -> &'static [FaultKind] {
        &[
            FaultKind::TransientFlip,
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::Burst,
            FaultKind::DropCycle,
            FaultKind::DuplicateCycle,
        ]
    }

    /// A short stable identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransientFlip => "transient-flip",
            FaultKind::StuckAt0 => "stuck-at-0",
            FaultKind::StuckAt1 => "stuck-at-1",
            FaultKind::Burst => "burst",
            FaultKind::DropCycle => "drop-cycle",
            FaultKind::DuplicateCycle => "duplicate-cycle",
        }
    }

    /// True for the models that corrupt line values in place; false for
    /// the cycle-structure faults (drop/duplicate), which preserve every
    /// word but change how many the decoder sees.
    pub fn corrupts_lines(self) -> bool {
        !matches!(self, FaultKind::DropCycle | FaultKind::DuplicateCycle)
    }
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The geometry a fault injector needs: how many lines of each kind the
/// bus carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusGeometry {
    /// Payload line count.
    pub payload_lines: u32,
    /// Redundant line count (0 for irredundant codes).
    pub aux_lines: u32,
}

impl BusGeometry {
    /// Creates a geometry.
    pub fn new(payload_lines: u32, aux_lines: u32) -> Self {
        BusGeometry {
            payload_lines,
            aux_lines,
        }
    }

    /// Total transmitted lines.
    pub fn total_lines(self) -> u32 {
        self.payload_lines + self.aux_lines
    }
}

/// Flips line `line` (payload lines first, then aux lines) of one word.
pub fn flip_line(word: &mut BusState, geometry: BusGeometry, line: u32) {
    debug_assert!(line < geometry.total_lines());
    if line < geometry.payload_lines {
        word.payload ^= 1 << line;
    } else {
        word.aux ^= 1 << (line - geometry.payload_lines);
    }
}

/// Flips one uniformly random line of one word.
pub fn flip_random_line(word: &mut BusState, geometry: BusGeometry, rng: &mut Rng64) {
    let line = rng.gen_range(0..u64::from(geometry.total_lines())) as u32;
    flip_line(word, geometry, line);
}

/// Forces line `line` of one word to `value`, returning whether the word
/// actually changed (a stuck-at only manifests when the healthy value
/// differs).
pub fn force_line(word: &mut BusState, geometry: BusGeometry, line: u32, value: bool) -> bool {
    let before = *word;
    if line < geometry.payload_lines {
        let mask = 1u64 << line;
        word.payload = if value {
            word.payload | mask
        } else {
            word.payload & !mask
        };
    } else {
        let mask = 1u64 << (line - geometry.payload_lines);
        word.aux = if value {
            word.aux | mask
        } else {
            word.aux & !mask
        };
    }
    *word != before
}

/// Flips one random payload-or-aux line of some words in transit — the
/// shared corruption helper the black-box fault tests use. Every line is
/// a candidate, including every aux line (T0_BI carries two; dual T0_BI's
/// `INCV` is line `payload_lines`).
///
/// Returns the number of corrupted words.
pub fn corrupt_words(
    words: &mut [BusState],
    geometry: BusGeometry,
    rng: &mut Rng64,
    rate: f64,
) -> usize {
    let mut injected = 0;
    for word in words.iter_mut() {
        if rng.gen_bool(rate) {
            flip_random_line(word, geometry, rng);
            injected += 1;
        }
    }
    injected
}

/// One concrete fault placement: where and what, fully determined so a
/// trial is replayable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// The model.
    pub kind: FaultKind,
    /// First affected cycle (index into the encoded stream).
    pub cycle: usize,
    /// Affected line for line faults; unused for drop/duplicate.
    pub line: u32,
    /// Window length for stuck-at and burst faults.
    pub window: usize,
}

impl FaultSite {
    /// Draws a fault placement uniformly: the cycle from
    /// `warmup..len - margin` (so faults land in steady state and leave
    /// room to observe resync), the line uniformly over the geometry, and
    /// the window from `2..=window_max`.
    pub fn draw(kind: FaultKind, len: usize, geometry: BusGeometry, rng: &mut Rng64) -> FaultSite {
        let warmup = (len / 10).max(2);
        let margin = (len / 5).max(4);
        let cycle = rng.gen_range(warmup as u64..(len - margin) as u64) as usize;
        let line = rng.gen_range(0..u64::from(geometry.total_lines())) as u32;
        let window = rng.gen_range(2..=6u64) as usize;
        FaultSite {
            kind,
            cycle,
            line,
            window,
        }
    }
}

/// What the decoder observes after a fault: the (possibly corrupted,
/// possibly re-timed) word/`SEL` sequence, paired with the address each
/// observed cycle *should* decode to.
pub struct FaultedStream {
    /// The words and `SEL` values the decoder sees, in arrival order.
    pub observed: Vec<(BusState, AccessKind)>,
    /// The address the master intended for each observed cycle.
    pub expected: Vec<u64>,
}

/// Applies one fault to an encoded stream.
///
/// For the line faults the timing is unchanged and `expected[i]` is
/// simply `stream[i].address`. For [`FaultKind::DropCycle`] the faulted
/// word (and its `SEL`) never arrives, so from the fault cycle on the
/// decoder is judged against the shifted intent; for
/// [`FaultKind::DuplicateCycle`] the word arrives twice and the repeat is
/// expected to decode to the same address (an idempotent re-latch), with
/// the tail truncated to the original length.
pub fn apply_fault(
    words: &[BusState],
    stream: &[Access],
    geometry: BusGeometry,
    site: FaultSite,
) -> FaultedStream {
    debug_assert_eq!(words.len(), stream.len());
    let mut observed: Vec<(BusState, AccessKind)> = words
        .iter()
        .zip(stream)
        .map(|(&w, a)| (w, a.kind))
        .collect();
    let mut expected: Vec<u64> = stream.iter().map(|a| a.address).collect();
    match site.kind {
        FaultKind::TransientFlip => {
            flip_line(&mut observed[site.cycle].0, geometry, site.line);
        }
        FaultKind::StuckAt0 | FaultKind::StuckAt1 => {
            let value = site.kind == FaultKind::StuckAt1;
            let end = (site.cycle + site.window).min(observed.len());
            for (word, _) in &mut observed[site.cycle..end] {
                force_line(word, geometry, site.line, value);
            }
        }
        FaultKind::Burst => {
            let end = (site.cycle + site.window).min(observed.len());
            // Deterministic line walk across the burst: consecutive
            // cycles hit rotating lines starting from the drawn one.
            for (offset, (word, _)) in observed[site.cycle..end].iter_mut().enumerate() {
                let line = (site.line + offset as u32) % geometry.total_lines();
                flip_line(word, geometry, line);
            }
        }
        FaultKind::DropCycle => {
            observed.remove(site.cycle);
            expected.remove(site.cycle);
        }
        FaultKind::DuplicateCycle => {
            let repeat = observed[site.cycle];
            observed.insert(site.cycle + 1, repeat);
            expected.insert(site.cycle + 1, expected[site.cycle]);
            observed.truncate(words.len());
            expected.truncate(words.len());
        }
    }
    FaultedStream { observed, expected }
}

/// The two-state Gilbert–Elliott bursty channel: per-cycle peril
/// probabilities in a *good* and a *bad* state, with geometrically
/// distributed dwell times in each.
///
/// Every cycle the channel first moves between states (`good → bad` with
/// probability [`p_good_to_bad`][GilbertElliott::p_good_to_bad], `bad →
/// good` with [`p_bad_to_good`][GilbertElliott::p_bad_to_good]), then
/// draws the cycle's perils from the current state's probabilities:
///
/// - **flip** — each transmitted line flips independently with the
///   state's per-line probability (bad-state cycles produce multi-line
///   hits — exactly the error bursts a single parity line cannot cover);
/// - **erase** — the whole word is wiped to all-lines-low (a driver
///   squelch; the receiver sees a word, but not the one sent);
/// - **drop** — the cycle never arrives (handshake loss; the receiver
///   sees nothing at all).
///
/// The mean dwell times are `1 / p_good_to_bad` cycles of good state and
/// `1 / p_bad_to_good` cycles of bad state. Everything is deterministic
/// given the channel seed, so campaigns replay bit for bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// Per-cycle probability of entering the bad state.
    pub p_good_to_bad: f64,
    /// Per-cycle probability of leaving the bad state.
    pub p_bad_to_good: f64,
    /// Per-line flip probability in the good state.
    pub flip_good: f64,
    /// Per-line flip probability in the bad state.
    pub flip_bad: f64,
    /// Whole-word erasure probability in the good state.
    pub erase_good: f64,
    /// Whole-word erasure probability in the bad state.
    pub erase_bad: f64,
    /// Cycle-drop probability in the good state.
    pub drop_good: f64,
    /// Cycle-drop probability in the bad state.
    pub drop_bad: f64,
}

impl GilbertElliott {
    /// The named profiles the CLIs expose, mild to severe.
    pub fn profile_names() -> &'static [&'static str] {
        &["quiet", "bursty", "harsh"]
    }

    /// Looks up a named profile:
    ///
    /// - `quiet` — rare short bursts (mean dwell 500 good / 4 bad
    ///   cycles), almost nothing in the good state;
    /// - `bursty` — the gate profile: mean dwell 100 good / 10 bad
    ///   cycles, multi-line flips plus erasures and drops in the bad
    ///   state;
    /// - `harsh` — long bad dwells (mean 20 cycles) with heavy flip,
    ///   erase, and drop rates: retransmission territory.
    pub fn named(name: &str) -> Option<GilbertElliott> {
        match name {
            "quiet" => Some(GilbertElliott {
                p_good_to_bad: 0.002,
                p_bad_to_good: 0.25,
                flip_good: 0.0002,
                flip_bad: 0.02,
                erase_good: 0.0,
                erase_bad: 0.01,
                drop_good: 0.0,
                drop_bad: 0.01,
            }),
            "bursty" => Some(GilbertElliott {
                p_good_to_bad: 0.01,
                p_bad_to_good: 0.1,
                flip_good: 0.0005,
                flip_bad: 0.06,
                erase_good: 0.0,
                erase_bad: 0.02,
                drop_good: 0.0,
                drop_bad: 0.02,
            }),
            "harsh" => Some(GilbertElliott {
                p_good_to_bad: 0.03,
                p_bad_to_good: 0.05,
                flip_good: 0.001,
                flip_bad: 0.12,
                erase_good: 0.002,
                erase_bad: 0.05,
                drop_good: 0.002,
                drop_bad: 0.05,
            }),
            _ => None,
        }
    }

    /// The fixed profile the CI smoke gates run against.
    pub fn gate() -> GilbertElliott {
        // `named` covers every name in `profile_names`; the expect is
        // unreachable and documents the invariant.
        #[allow(clippy::expect_used)]
        GilbertElliott::named("bursty").expect("the gate profile is always defined")
    }

    /// Mean good-state dwell, in cycles.
    pub fn mean_good_dwell(&self) -> f64 {
        if self.p_good_to_bad <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.p_good_to_bad
        }
    }

    /// Mean bad-state dwell, in cycles.
    pub fn mean_bad_dwell(&self) -> f64 {
        if self.p_bad_to_good <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.p_bad_to_good
        }
    }
}

/// What the Gilbert–Elliott channel did to one transmitted cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeEvent {
    /// The word arrived, with `flipped_lines` lines inverted in transit
    /// (0 = clean).
    Delivered {
        /// Number of lines flipped this cycle.
        flipped_lines: u32,
    },
    /// The word was wiped to all-lines-low in transit.
    Erased,
    /// The cycle never arrived.
    Dropped,
}

/// Counters a [`GeChannel`] accumulates; the observable weather report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeChannelStats {
    /// Channel cycles elapsed (transmitted or idle).
    pub cycles: u64,
    /// Cycles spent in the bad state.
    pub bad_cycles: u64,
    /// Current consecutive bad-state cycles (the live dwell the link
    /// layer's escalation hints watch).
    pub bad_dwell: u64,
    /// Longest bad-state dwell observed.
    pub max_bad_dwell: u64,
    /// Good → bad transitions (error bursts started).
    pub bursts: u64,
    /// Total lines flipped in transit.
    pub flipped_lines: u64,
    /// Transmitted words with at least one flipped line.
    pub flipped_words: u64,
    /// Words erased in transit.
    pub erasures: u64,
    /// Cycles dropped in transit.
    pub drops: u64,
}

/// A live Gilbert–Elliott channel: the [`GilbertElliott`] parameters plus
/// the state machine, a seeded RNG, and the running statistics.
///
/// # Examples
///
/// ```
/// use buscode_core::BusState;
/// use buscode_fault::models::{BusGeometry, GeChannel, GeEvent, GilbertElliott};
///
/// let mut ch = GeChannel::new(GilbertElliott::gate(), BusGeometry::new(32, 1), 7);
/// let mut delivered = 0u32;
/// for i in 0..1000u64 {
///     if let (word, GeEvent::Delivered { .. }) = ch.transmit(BusState::new(i, 0)) {
///         let _ = word;
///         delivered += 1;
///     }
/// }
/// assert!(delivered > 900); // drops and erasures are the exception
/// assert!(ch.stats().bad_cycles > 0); // but the weather did turn
/// ```
#[derive(Clone, Debug)]
pub struct GeChannel {
    profile: GilbertElliott,
    geometry: BusGeometry,
    rng: Rng64,
    bad: bool,
    stats: GeChannelStats,
}

impl GeChannel {
    /// Creates a channel in the good state.
    pub fn new(profile: GilbertElliott, geometry: BusGeometry, seed: u64) -> Self {
        GeChannel {
            profile,
            geometry,
            rng: Rng64::seed_from_u64(seed),
            bad: false,
            stats: GeChannelStats::default(),
        }
    }

    /// The channel's parameters.
    pub fn profile(&self) -> GilbertElliott {
        self.profile
    }

    /// The bus geometry faults are drawn over.
    pub fn geometry(&self) -> BusGeometry {
        self.geometry
    }

    /// Re-shapes the bus mid-flight. The link layer calls this when a
    /// redundancy tier shift changes the aux line count — the weather
    /// state machine and the RNG stream continue unbroken, only the set
    /// of lines perils are drawn over changes.
    pub fn set_geometry(&mut self, geometry: BusGeometry) {
        self.geometry = geometry;
    }

    /// True while the channel sits in the bad state.
    pub fn in_bad_state(&self) -> bool {
        self.bad
    }

    /// The running statistics.
    pub fn stats(&self) -> GeChannelStats {
        self.stats
    }

    /// Advances the two-state machine by one cycle and accounts the
    /// dwell counters.
    fn step(&mut self) {
        if self.bad {
            if self.rng.gen_bool(self.profile.p_bad_to_good) {
                self.bad = false;
            }
        } else if self.rng.gen_bool(self.profile.p_good_to_bad) {
            self.bad = true;
            self.stats.bursts += 1;
        }
        self.stats.cycles += 1;
        if self.bad {
            self.stats.bad_cycles += 1;
            self.stats.bad_dwell += 1;
            self.stats.max_bad_dwell = self.stats.max_bad_dwell.max(self.stats.bad_dwell);
        } else {
            self.stats.bad_dwell = 0;
        }
    }

    /// One idle bus cycle: the weather evolves, nothing is transmitted.
    /// Link-layer backoff cycles call this so the channel state keeps
    /// real time.
    pub fn idle(&mut self) {
        self.step();
    }

    /// Transmits one word through one channel cycle, returning what the
    /// receiver observes. For [`GeEvent::Dropped`] the returned word is
    /// the input unchanged and must be discarded by the caller; for
    /// [`GeEvent::Erased`] it is all-lines-low.
    pub fn transmit(&mut self, word: BusState) -> (BusState, GeEvent) {
        self.step();
        let (flip, erase, drop) = if self.bad {
            (
                self.profile.flip_bad,
                self.profile.erase_bad,
                self.profile.drop_bad,
            )
        } else {
            (
                self.profile.flip_good,
                self.profile.erase_good,
                self.profile.drop_good,
            )
        };
        if self.rng.gen_bool(drop) {
            self.stats.drops += 1;
            return (word, GeEvent::Dropped);
        }
        if self.rng.gen_bool(erase) {
            self.stats.erasures += 1;
            return (BusState::reset(), GeEvent::Erased);
        }
        let mut out = word;
        let mut flipped = 0u32;
        for line in 0..self.geometry.total_lines() {
            if self.rng.gen_bool(flip) {
                flip_line(&mut out, self.geometry, line);
                flipped += 1;
            }
        }
        if flipped > 0 {
            self.stats.flipped_lines += u64::from(flipped);
            self.stats.flipped_words += 1;
        }
        (
            out,
            GeEvent::Delivered {
                flipped_lines: flipped,
            },
        )
    }
}

/// Runs an encoded stream through a seeded Gilbert–Elliott channel,
/// producing the decoder's view: dropped cycles vanish (the expected
/// intent shifts under the decoder, as with [`FaultKind::DropCycle`]),
/// erased cycles arrive all-lines-low, flipped cycles arrive corrupted.
///
/// Returns the faulted stream plus the channel's weather statistics.
pub fn apply_ge_channel(
    words: &[BusState],
    stream: &[Access],
    geometry: BusGeometry,
    profile: GilbertElliott,
    seed: u64,
) -> (FaultedStream, GeChannelStats) {
    debug_assert_eq!(words.len(), stream.len());
    let mut channel = GeChannel::new(profile, geometry, seed);
    let mut observed = Vec::with_capacity(words.len());
    let mut expected = Vec::with_capacity(words.len());
    for (&word, access) in words.iter().zip(stream) {
        let (seen, event) = channel.transmit(word);
        if event == GeEvent::Dropped {
            continue;
        }
        observed.push((seen, access.kind));
        expected.push(access.address);
    }
    (FaultedStream { observed, expected }, channel.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize) -> Vec<BusState> {
        (0..n as u64).map(|i| BusState::new(i, 0)).collect()
    }

    fn accesses(n: usize) -> Vec<Access> {
        (0..n as u64).map(Access::instruction).collect()
    }

    #[test]
    fn flip_covers_every_aux_line() {
        // The regression the shared helper exists for: with two aux
        // lines, both must be reachable.
        let geometry = BusGeometry::new(4, 2);
        let mut seen_aux = [false; 2];
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..200 {
            let mut word = BusState::new(0, 0);
            flip_random_line(&mut word, geometry, &mut rng);
            for (i, seen) in seen_aux.iter_mut().enumerate() {
                if word.aux & (1 << i) != 0 {
                    *seen = true;
                }
            }
        }
        assert!(seen_aux.iter().all(|&s| s), "both aux lines must be hit");
    }

    #[test]
    fn force_line_reports_change() {
        let geometry = BusGeometry::new(4, 1);
        let mut word = BusState::new(0b1010, 1);
        assert!(!force_line(&mut word, geometry, 1, true), "already 1");
        assert!(force_line(&mut word, geometry, 1, false));
        assert_eq!(word.payload, 0b1000);
        assert!(force_line(&mut word, geometry, 4, false), "aux line 0");
        assert_eq!(word.aux, 0);
    }

    #[test]
    fn drop_shifts_the_expected_stream() {
        let geometry = BusGeometry::new(8, 0);
        let site = FaultSite {
            kind: FaultKind::DropCycle,
            cycle: 3,
            line: 0,
            window: 0,
        };
        let faulted = apply_fault(&words(10), &accesses(10), geometry, site);
        assert_eq!(faulted.observed.len(), 9);
        assert_eq!(faulted.expected[2], 2);
        assert_eq!(faulted.expected[3], 4, "cycle 3 was dropped");
    }

    #[test]
    fn duplicate_preserves_length_and_repeats() {
        let geometry = BusGeometry::new(8, 0);
        let site = FaultSite {
            kind: FaultKind::DuplicateCycle,
            cycle: 3,
            line: 0,
            window: 0,
        };
        let faulted = apply_fault(&words(10), &accesses(10), geometry, site);
        assert_eq!(faulted.observed.len(), 10);
        assert_eq!(faulted.observed[3].0, faulted.observed[4].0);
        assert_eq!(faulted.expected[4], 3, "the repeat re-latches cycle 3");
        assert_eq!(faulted.expected[9], 8, "tail shifted by one");
    }

    #[test]
    fn transient_flip_touches_exactly_one_cycle() {
        let geometry = BusGeometry::new(8, 1);
        let clean = words(10);
        let site = FaultSite {
            kind: FaultKind::TransientFlip,
            cycle: 5,
            line: 8, // the aux line
            window: 0,
        };
        let faulted = apply_fault(&clean, &accesses(10), geometry, site);
        for (i, (word, _)) in faulted.observed.iter().enumerate() {
            if i == 5 {
                assert_eq!(word.aux, 1);
            } else {
                assert_eq!(*word, clean[i]);
            }
        }
    }

    #[test]
    fn sites_land_in_steady_state() {
        let geometry = BusGeometry::new(8, 1);
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..500 {
            let site = FaultSite::draw(FaultKind::Burst, 100, geometry, &mut rng);
            assert!(site.cycle >= 10);
            assert!(site.cycle < 80);
            assert!((2..=6).contains(&site.window));
            assert!(site.line < 9);
        }
    }

    #[test]
    fn ge_profiles_resolve_and_gate_is_bursty() {
        for name in GilbertElliott::profile_names() {
            let p = GilbertElliott::named(name).expect("named profile");
            assert!(p.p_good_to_bad > 0.0 && p.p_bad_to_good > 0.0);
            assert!(p.mean_good_dwell() > p.mean_bad_dwell());
        }
        assert_eq!(GilbertElliott::named("nope"), None);
        assert_eq!(
            Some(GilbertElliott::gate()),
            GilbertElliott::named("bursty")
        );
    }

    #[test]
    fn ge_channel_is_deterministic_from_its_seed() {
        let geometry = BusGeometry::new(16, 2);
        let profile = GilbertElliott::gate();
        let mut a = GeChannel::new(profile, geometry, 99);
        let mut b = GeChannel::new(profile, geometry, 99);
        for i in 0..5000u64 {
            let word = BusState::new(i.wrapping_mul(0x55), i % 4);
            assert_eq!(a.transmit(word), b.transmit(word));
        }
        assert_eq!(a.stats(), b.stats());
        // A different seed sees different weather.
        let mut c = GeChannel::new(profile, geometry, 100);
        for i in 0..5000u64 {
            let word = BusState::new(i.wrapping_mul(0x55), i % 4);
            c.transmit(word);
        }
        assert_ne!(a.stats(), c.stats());
    }

    #[test]
    fn ge_channel_tracks_dwell_and_idle_advances_the_weather() {
        let profile = GilbertElliott {
            // Always bad after the first cycle, never recovers.
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            flip_good: 0.0,
            flip_bad: 0.0,
            erase_good: 0.0,
            erase_bad: 0.0,
            drop_good: 0.0,
            drop_bad: 0.0,
        };
        let mut ch = GeChannel::new(profile, BusGeometry::new(8, 0), 1);
        for _ in 0..10 {
            ch.idle();
        }
        let s = ch.stats();
        assert_eq!(s.cycles, 10);
        assert_eq!(s.bad_cycles, 10);
        assert_eq!(s.bad_dwell, 10);
        assert_eq!(s.max_bad_dwell, 10);
        assert_eq!(s.bursts, 1);
        assert!(ch.in_bad_state());
    }

    #[test]
    fn ge_perils_follow_the_state() {
        // Flips only in the bad state; the channel alternates via sure
        // transitions, so even cycles are bad (step runs before perils).
        let profile = GilbertElliott {
            p_good_to_bad: 1.0,
            p_bad_to_good: 1.0,
            flip_good: 0.0,
            flip_bad: 1.0,
            erase_good: 0.0,
            erase_bad: 0.0,
            drop_good: 0.0,
            drop_bad: 0.0,
        };
        let geometry = BusGeometry::new(4, 0);
        let mut ch = GeChannel::new(profile, geometry, 3);
        for i in 0..20u64 {
            let (out, event) = ch.transmit(BusState::new(0, 0));
            if i % 2 == 0 {
                // Bad cycle: every line flips.
                assert_eq!(event, GeEvent::Delivered { flipped_lines: 4 });
                assert_eq!(out.payload, 0b1111);
            } else {
                assert_eq!(event, GeEvent::Delivered { flipped_lines: 0 });
                assert_eq!(out.payload, 0);
            }
        }
    }

    #[test]
    fn ge_stream_application_drops_cycles_and_keeps_alignment() {
        let profile = GilbertElliott {
            p_good_to_bad: 0.0,
            p_bad_to_good: 1.0,
            flip_good: 0.0,
            flip_bad: 0.0,
            erase_good: 0.0,
            erase_bad: 0.0,
            drop_good: 0.5,
            drop_bad: 0.0,
        };
        let geometry = BusGeometry::new(8, 0);
        let stream: Vec<Access> = (0..200u64).map(|i| Access::instruction(i & 0xff)).collect();
        let words: Vec<BusState> = stream.iter().map(|a| BusState::new(a.address, 0)).collect();
        let (faulted, weather) = apply_ge_channel(&words, &stream, geometry, profile, 11);
        assert!(weather.drops > 50, "a p=0.5 drop channel must drop often");
        assert_eq!(faulted.observed.len(), 200 - weather.drops as usize);
        assert_eq!(faulted.observed.len(), faulted.expected.len());
        // Survivors stay aligned: the word carries its own address.
        for (&(word, _), &expected) in faulted.observed.iter().zip(&faulted.expected) {
            assert_eq!(word.payload, expected);
        }
    }
}
