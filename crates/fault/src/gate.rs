//! Gate-level fault injection: the same campaign idea run on the
//! synthesized codec netlists.
//!
//! The behavioral campaign corrupts words on an ideal wire; this module
//! injects faults *inside* the circuits — a stuck-at on one gate's output
//! pin, or a single-event upset flipping one decoder flip-flop — and
//! measures how many decoded addresses go wrong. Gate-level decoders have
//! no error output, so every wrong address is silent corruption; the
//! numbers here are the circuit-level floor the behavioral hardening
//! layer (parity + refresh) exists to lift.
//!
//! The decoder runs cycle by cycle through its own [`Simulator`] (instead
//! of [`DecoderCircuit::run`]) so faults can be injected and cleared
//! mid-stream.

use buscode_core::rng::Rng64;
use buscode_core::{Access, BusWidth, Stride};
use buscode_logic::codecs::{
    binary_decoder, binary_encoder, bus_invert_decoder, bus_invert_encoder, dual_t0_decoder,
    dual_t0_encoder, dual_t0bi_decoder, dual_t0bi_encoder, gray_decoder, gray_encoder,
    offset_decoder, offset_encoder, t0_decoder, t0_encoder, t0bi_decoder, t0bi_encoder,
    t0xor_decoder, t0xor_encoder,
};
use buscode_logic::{DecoderCircuit, EncoderCircuit, LogicError, Simulator};

/// The gate-level codec pairs with circuit implementations.
///
/// # Errors
///
/// Propagates circuit-construction errors from the gate-level builders.
pub fn gate_codecs(
    width: BusWidth,
    stride: Stride,
) -> Result<Vec<(EncoderCircuit, DecoderCircuit)>, LogicError> {
    Ok(vec![
        (binary_encoder(width)?, binary_decoder(width)?),
        (gray_encoder(width, stride)?, gray_decoder(width, stride)?),
        (bus_invert_encoder(width)?, bus_invert_decoder(width)?),
        (t0_encoder(width, stride)?, t0_decoder(width, stride)?),
        (t0bi_encoder(width, stride)?, t0bi_decoder(width, stride)?),
        (
            dual_t0_encoder(width, stride)?,
            dual_t0_decoder(width, stride)?,
        ),
        (
            dual_t0bi_encoder(width, stride)?,
            dual_t0bi_decoder(width, stride)?,
        ),
        (t0xor_encoder(width, stride)?, t0xor_decoder(width, stride)?),
        (offset_encoder(width)?, offset_decoder(width)?),
    ])
}

/// Where a gate-level fault is injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateFault {
    /// A decoder flip-flop state bit flips once (SEU).
    DecoderSeu,
    /// A random decoder net is stuck at a value for a window of cycles
    /// (an intermittent contact; permanent stuck-ats never resync and
    /// are what `buslint`'s structural passes plus testing screen for).
    DecoderStuck {
        /// The forced value.
        value: bool,
    },
}

impl GateFault {
    fn name(self) -> &'static str {
        match self {
            GateFault::DecoderSeu => "decoder-seu",
            GateFault::DecoderStuck { value: false } => "decoder-stuck-0",
            GateFault::DecoderStuck { value: true } => "decoder-stuck-1",
        }
    }
}

/// Aggregated outcome of one gate-level cell (codec × fault model).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateCellStats {
    /// The codec's name (matches the behavioral
    /// [`buscode_core::Encoder::name`]).
    pub codec: &'static str,
    /// The fault model's stable name.
    pub fault: &'static str,
    /// Trials run (0 when the circuit has no injectable site, e.g. a
    /// flip-flop-free decoder under the SEU model).
    pub trials: u32,
    /// Decoded addresses compared across all trials.
    pub decoded_cycles: u64,
    /// Wrong decoded addresses — all silent at gate level.
    pub sdc_cycles: u64,
    /// Trials with at least one wrong address.
    pub trials_with_sdc: u32,
    /// Trials still wrong on the final cycle.
    pub trials_unresolved: u32,
    /// Worst fault-to-last-bad-cycle distance.
    pub resync_max: u64,
}

impl GateCellStats {
    /// Wrong addresses per decoded address.
    pub fn sdc_rate(&self) -> f64 {
        if self.decoded_cycles == 0 {
            0.0
        } else {
            self.sdc_cycles as f64 / self.decoded_cycles as f64
        }
    }
}

/// Configuration for [`run_gate_campaign`].
#[derive(Clone, Copy, Debug)]
pub struct GateCampaignConfig {
    /// Circuit width (kept narrow: gate simulation is per-net work).
    pub width: BusWidth,
    /// Sequential stride.
    pub stride: Stride,
    /// Trials per codec × fault model.
    pub trials: u32,
    /// Access-stream length per trial.
    pub stream_len: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for GateCampaignConfig {
    fn default() -> Self {
        GateCampaignConfig {
            width: BusWidth::new(8).expect("8 is a valid width"),
            stride: Stride::WORD,
            trials: 20,
            stream_len: 128,
            seed: 42,
        }
    }
}

/// Runs the gate-level campaign: for each codec circuit pair and each
/// [`GateFault`] model, repeatedly encode a clean stream, inject one
/// fault into the decoder mid-stream, and count wrong addresses.
///
/// # Errors
///
/// Propagates circuit-construction errors from the gate-level builders.
pub fn run_gate_campaign(config: &GateCampaignConfig) -> Result<Vec<GateCellStats>, LogicError> {
    let faults = [
        GateFault::DecoderSeu,
        GateFault::DecoderStuck { value: false },
        GateFault::DecoderStuck { value: true },
    ];
    let mut rows = Vec::new();
    for (enc, dec) in gate_codecs(config.width, config.stride)? {
        for fault in faults {
            rows.push(run_gate_cell(config, &enc, &dec, fault));
        }
    }
    Ok(rows)
}

/// A mixed instruction/data stream in the circuit's address range.
fn gate_stream(len: usize, width: BusWidth, stride: Stride, seed: u64) -> Vec<Access> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mask = width.mask();
    let mut addr = 0u64;
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.7) {
                addr = if rng.gen_bool(0.6) {
                    width.wrapping_add(addr, stride.get())
                } else {
                    rng.gen::<u64>() & mask
                };
                Access::instruction(addr)
            } else {
                Access::data(rng.gen::<u64>() & mask)
            }
        })
        .collect()
}

fn run_gate_cell(
    config: &GateCampaignConfig,
    enc: &EncoderCircuit,
    dec: &DecoderCircuit,
    fault: GateFault,
) -> GateCellStats {
    let mut stats = GateCellStats {
        codec: dec.name,
        fault: fault.name(),
        trials: 0,
        decoded_cycles: 0,
        sdc_cycles: 0,
        trials_with_sdc: 0,
        trials_unresolved: 0,
        resync_max: 0,
    };
    let mut rng = Rng64::seed_from_u64(
        config
            .seed
            .wrapping_add(fxhash(dec.name) ^ fxhash(fault.name())),
    );
    let probe = Simulator::new(dec.netlist.clone());
    let seu_sites = probe.dff_nets();
    if matches!(fault, GateFault::DecoderSeu) && seu_sites.is_empty() {
        return stats; // memoryless decoder: no SEU target
    }
    let net_count = dec.netlist.gate_count();
    let stream = gate_stream(config.stream_len, config.width, config.stride, config.seed);
    let (words, _) = enc.run(&stream);

    for _ in 0..config.trials {
        let mut sim = Simulator::new(dec.netlist.clone());
        let margin = config.stream_len / 5;
        let fault_cycle = rng
            .gen_range((config.stream_len / 10) as u64..(config.stream_len - margin) as u64)
            as usize;
        let window = rng.gen_range(2..=6u64) as usize;
        let mut last_bad: Option<usize> = None;
        let mut sdc = 0u64;
        for (i, (word, access)) in words.iter().zip(&stream).enumerate() {
            if i == fault_cycle {
                match fault {
                    GateFault::DecoderSeu => {
                        let site = seu_sites[rng.gen_range(0..seu_sites.len() as u64) as usize];
                        sim.flip_dff(site);
                    }
                    GateFault::DecoderStuck { value } => {
                        let net = buscode_logic::NetId::from_index(
                            rng.gen_range(0..net_count as u64) as usize,
                        );
                        sim.inject_stuck(net, value);
                    }
                }
            }
            if matches!(fault, GateFault::DecoderStuck { .. }) && i == fault_cycle + window {
                sim.clear_faults();
            }
            sim.set_word(&dec.bus_in, word.payload);
            for (bit, &net) in dec.aux_in.iter().enumerate() {
                sim.set(net, (word.aux >> bit) & 1 == 1);
            }
            if let Some(sel) = dec.sel_in {
                sim.set(sel, access.kind.sel());
            }
            sim.step();
            let decoded = sim.word(&dec.address_out);
            stats.decoded_cycles += 1;
            if decoded != access.address & config.width.mask() {
                sdc += 1;
                last_bad = Some(i);
            }
        }
        stats.trials += 1;
        stats.sdc_cycles += sdc;
        stats.trials_with_sdc += u32::from(sdc > 0);
        if let Some(last) = last_bad {
            stats.trials_unresolved += u32::from(last == words.len() - 1);
            stats.resync_max = stats
                .resync_max
                .max((last.saturating_sub(fault_cycle) + 1) as u64);
        }
    }
    stats
}

/// A tiny deterministic string hash for per-cell seed derivation.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

/// Renders the gate campaign as an aligned text table.
pub fn render_gate_text(rows: &[GateCellStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<16} {:>7} {:>9} {:>7} {:>9} {:>7}\n",
        "codec", "fault", "trials", "sdc-rate", "sdc", "affected", "max"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<12} {:<16} {:>7} {:>9.5} {:>7} {:>9} {:>7}\n",
            row.codec,
            row.fault,
            row.trials,
            row.sdc_rate(),
            row.sdc_cycles,
            row.trials_with_sdc,
            row.resync_max,
        ));
    }
    out
}

/// Renders the gate campaign as a JSON array with a stable schema.
pub fn render_gate_json(rows: &[GateCellStats]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "{{\"codec\":\"{}\",\"fault\":\"{}\",\"trials\":{},\"decoded_cycles\":{},",
                "\"sdc_cycles\":{},\"sdc_rate\":{:.6},\"trials_with_sdc\":{},",
                "\"trials_unresolved\":{},\"max_resync\":{}}}"
            ),
            row.codec,
            row.fault,
            row.trials,
            row.decoded_cycles,
            row.sdc_cycles,
            row.sdc_rate(),
            row.trials_with_sdc,
            row.trials_unresolved,
            row.resync_max,
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GateCampaignConfig {
        // Enough trials that an SEU reliably lands before an INC cycle
        // (a flip right before a plain word heals with no corruption).
        GateCampaignConfig {
            trials: 10,
            stream_len: 64,
            ..GateCampaignConfig::default()
        }
    }

    #[test]
    fn campaign_covers_every_codec_and_model() {
        let rows = run_gate_campaign(&tiny()).unwrap();
        assert_eq!(rows.len(), 9 * 3);
        // The binary decoder is pure buffers: no flip-flops, so the SEU
        // model has no site to hit and runs zero trials.
        let binary_seu = rows
            .iter()
            .find(|r| r.codec == "binary" && r.fault == "decoder-seu")
            .unwrap();
        assert_eq!(binary_seu.trials, 0);
    }

    #[test]
    fn seu_in_a_t0_decoder_corrupts_addresses() {
        let rows = run_gate_campaign(&tiny()).unwrap();
        let t0_seu = rows
            .iter()
            .find(|r| r.codec.contains("t0") && r.fault == "decoder-seu" && r.trials > 0)
            .expect("t0 decoder has flip-flops");
        assert!(
            t0_seu.sdc_cycles > 0,
            "an upset reference register must corrupt decodes"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_gate_campaign(&tiny()).unwrap();
        let b = run_gate_campaign(&tiny()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn renders_both_formats() {
        let rows = run_gate_campaign(&tiny()).unwrap();
        let text = render_gate_text(&rows);
        assert!(text.contains("decoder-seu"));
        let json = render_gate_json(&rows);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"fault\":\"decoder-stuck-1\""));
    }
}
