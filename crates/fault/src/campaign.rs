//! Seeded Monte Carlo fault-injection campaigns over the behavioral
//! codecs.
//!
//! A campaign sweeps every code × stream kind × fault model, twice per
//! combination: once on the bare codec and once under
//! [`Hardened`][buscode_core::codes::Hardened]. Each trial encodes a
//! synthetic stream (the paper's Section 4 statistics), injects one drawn
//! [`FaultSite`], decodes what arrives, and classifies every cycle from
//! the fault onward:
//!
//! - **silent data corruption (SDC)** — the decoder returned `Ok` with
//!   the wrong address: the system consumes a bad address without knowing;
//! - **detected** — the decoder returned an error
//!   ([`CodecError::ProtocolViolation`]): the fault is observable and a
//!   system-level retry/refresh can react;
//! - **clean** — the decoder produced the intended address.
//!
//! *Cycles-to-resync* is the distance from the fault to the last bad
//! cycle; a trial still bad at stream end is *unresolved* (the bare
//! stateful codes never resync on their own — exactly the hazard the
//! hardening layer bounds). For hardened codecs the campaign separately
//! counts bad cycles past the first refresh boundary after the fault
//! clears — the [`FaultMetrics::beyond_bound_cycles`] that the `--smoke`
//! gate requires to be zero.
//!
//! A fourth classification exists only under the
//! [`EccHardened`][buscode_core::codes::EccHardened] tier: **corrected**
//! — the decoder absorbed a line flip in-flight and still produced the
//! intended address. [`run_comparison`] sweeps the same grid across all
//! three [`Tier`]s side by side, which is what
//! `faultrun --compare` reports.
//!
//! Everything is deterministic given [`CampaignConfig::seed`].

use buscode_core::rng::Rng64;
use buscode_core::{Access, CodeKind, CodeParams, CodecError, Decoder, Encoder, Tier};
use buscode_engine::cli::Report;
use buscode_engine::SweepEngine;
use buscode_telemetry::MetricSet;
use buscode_trace::{DataModel, InstructionModel, MuxedModel, StreamKind};

use crate::models::{
    apply_fault, apply_ge_channel, BusGeometry, FaultKind, FaultSite, GilbertElliott,
};

/// Campaign dimensions and budgets.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Codec geometry (width, stride).
    pub params: CodeParams,
    /// Trials per code × stream × fault model × hardening combination.
    pub trials: u32,
    /// Length of each trial's access stream.
    pub stream_len: usize,
    /// Master seed; every stream and fault placement derives from it.
    pub seed: u64,
    /// Refresh interval for the hardened arm of the campaign.
    pub refresh: u64,
    /// Fault models to inject.
    pub faults: Vec<FaultKind>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            params: CodeParams::default(),
            trials: 100,
            stream_len: 500,
            seed: 42,
            refresh: 32,
            faults: FaultKind::all().to_vec(),
        }
    }
}

impl CampaignConfig {
    /// The small fixed-seed configuration behind `faultrun --smoke`:
    /// transient flips only, enough trials that every stateful code shows
    /// silent corruption while the run stays interactive.
    pub fn smoke() -> Self {
        CampaignConfig {
            trials: 32,
            stream_len: 256,
            faults: vec![FaultKind::TransientFlip],
            ..CampaignConfig::default()
        }
    }
}

/// Aggregated outcome of one campaign cell (code × stream × fault ×
/// hardening).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// Trials run.
    pub trials: u32,
    /// Trials with at least one silently corrupted cycle.
    pub trials_with_sdc: u32,
    /// Trials with at least one detected (error-reporting) cycle.
    pub trials_detected: u32,
    /// Trials still decoding wrongly at stream end (never resynced).
    pub trials_unresolved: u32,
    /// Trials with at least one bad (SDC or detected) cycle.
    pub trials_affected: u32,
    /// Decoded cycles across all trials (the rate denominator).
    pub decoded_cycles: u64,
    /// Cycles that decoded `Ok` to a wrong address.
    pub sdc_cycles: u64,
    /// Cycles the decoder flagged with an error.
    pub detected_cycles: u64,
    /// Cycles where the decoder absorbed a line flip in-flight and still
    /// produced the intended address — nonzero only under
    /// [`EccHardened`][buscode_core::codes::EccHardened], reported via
    /// [`Decoder::corrected_count`].
    pub corrected_cycles: u64,
    /// Trials with at least one corrected cycle.
    pub trials_corrected: u32,
    /// Sum over trials of cycles-to-resync (fault to last bad cycle).
    pub resync_sum: u64,
    /// Worst cycles-to-resync over all trials.
    pub resync_max: u64,
    /// Bad cycles at or after the first refresh boundary following the
    /// fault's last active cycle. Only accounted for line faults (the
    /// resync bound does not cover re-timing faults) — must be zero for
    /// a correct [`Hardened`][buscode_core::codes::Hardened] codec.
    pub beyond_bound_cycles: u64,
}

impl FaultMetrics {
    /// Silently corrupted cycles per decoded cycle.
    pub fn sdc_rate(&self) -> f64 {
        if self.decoded_cycles == 0 {
            0.0
        } else {
            self.sdc_cycles as f64 / self.decoded_cycles as f64
        }
    }

    /// Fraction of trials in which the decoder reported the fault.
    pub fn detection_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.trials_detected) / f64::from(self.trials)
        }
    }

    /// Mean cycles-to-resync over trials that had any bad cycle.
    pub fn mean_resync(&self) -> f64 {
        if self.trials_affected == 0 {
            0.0
        } else {
            self.resync_sum as f64 / f64::from(self.trials_affected)
        }
    }
}

/// One campaign cell: the key plus its aggregated stats.
#[derive(Clone, Debug)]
pub struct CampaignRow {
    /// The code under test.
    pub code: CodeKind,
    /// The synthetic stream driven through it.
    pub stream: StreamKind,
    /// The fault model injected.
    pub fault: FaultKind,
    /// Whether the codec ran under the `Hardened` wrapper.
    pub hardened: bool,
    /// Aggregated outcomes.
    pub stats: FaultMetrics,
}

/// A finished campaign: every row plus the configuration that produced
/// it, renderable as text or JSON (the `faultrun` output).
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The configuration the campaign ran with.
    pub config: CampaignConfig,
    /// One row per code × stream × fault × hardening combination.
    pub rows: Vec<CampaignRow>,
}

/// True for codes whose *decoder* carries state across cycles — the codes
/// a single transient fault can desynchronize for more than one cycle.
pub fn is_stateful(kind: CodeKind) -> bool {
    !matches!(
        kind,
        CodeKind::Binary | CodeKind::Gray | CodeKind::BusInvert | CodeKind::Beach
    )
}

/// Generates the synthetic stream for one kind with the paper's measured
/// in-sequence probabilities (Section 4).
pub fn stream_for(kind: StreamKind, len: usize, seed: u64) -> Vec<Access> {
    match kind {
        StreamKind::Instruction => InstructionModel::new(0.6304).generate(len, seed),
        StreamKind::Data => DataModel::new(0.1139).generate(len, seed),
        StreamKind::Muxed => MuxedModel::with_targets(0.6304, 0.1139, 0.5762).generate(len, seed),
    }
}

/// Runs the full campaign described by `config`.
///
/// # Errors
///
/// Propagates codec construction errors (invalid parameters).
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignReport, CodecError> {
    run_campaign_with(&SweepEngine::serial(), config)
}

/// [`run_campaign`] with its cells sharded through `engine`.
///
/// Every cell draws from its own RNG derived from the master seed and
/// the cell coordinates, and results come back in the serial nested-loop
/// order, so the report is bit-identical for any worker count.
///
/// # Errors
///
/// Propagates codec construction errors (invalid parameters).
pub fn run_campaign_with(
    engine: &SweepEngine,
    config: &CampaignConfig,
) -> Result<CampaignReport, CodecError> {
    let streams = [StreamKind::Instruction, StreamKind::Data, StreamKind::Muxed];
    let generated: Vec<Vec<Access>> = streams
        .iter()
        .enumerate()
        .map(|(si, &kind)| stream_for(kind, config.stream_len, config.seed.wrapping_add(si as u64)))
        .collect();

    let mut cells = Vec::new();
    for (si, &stream_kind) in streams.iter().enumerate() {
        for (ci, kind) in CodeKind::all().into_iter().enumerate() {
            for (fi, &fault) in config.faults.iter().enumerate() {
                for hardened in [false, true] {
                    cells.push((si, ci, fi, stream_kind, kind, fault, hardened));
                }
            }
        }
    }

    let results = engine.run(cells, |(si, ci, fi, stream_kind, kind, fault, hardened)| {
        // One deterministic rng per cell, derived from the master seed
        // and the cell coordinates — independent of scheduling.
        let cell = (ci as u64) << 16 | (si as u64) << 8 | fi as u64;
        let cell = cell << 1 | u64::from(hardened);
        let mut rng = Rng64::seed_from_u64(config.seed ^ cell.wrapping_mul(0x9e3779b97f4a7c15));
        let stream = generated.get(si).map(Vec::as_slice).unwrap_or_default();
        let tier = if hardened { Tier::Parity } else { Tier::Bare };
        run_cell(config, kind, stream, fault, tier, &mut rng).map(|stats| CampaignRow {
            code: kind,
            stream: stream_kind,
            fault,
            hardened,
            stats,
        })
    });

    let mut rows = Vec::with_capacity(results.len());
    for result in results {
        rows.push(result?);
    }
    Ok(CampaignReport {
        config: config.clone(),
        rows,
    })
}

/// One comparison cell: the key (including its [`Tier`]) plus
/// its aggregated stats.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// The code under test.
    pub code: CodeKind,
    /// The synthetic stream driven through it.
    pub stream: StreamKind,
    /// The fault model injected.
    pub fault: FaultKind,
    /// The protection level the codec ran under.
    pub tier: Tier,
    /// Aggregated outcomes.
    pub stats: FaultMetrics,
}

/// A finished parity-vs-ECC comparison: the same campaign grid swept
/// across every [`Tier`] side by side (the `faultrun --compare`
/// output).
#[derive(Clone, Debug)]
pub struct ComparisonReport {
    /// The configuration the comparison ran with.
    pub config: CampaignConfig,
    /// One row per code × stream × fault × tier combination.
    pub rows: Vec<ComparisonRow>,
}

/// Runs the parity-vs-ECC comparison described by `config`: every code ×
/// stream × fault cell three times, once per [`Tier`].
///
/// # Errors
///
/// Propagates codec construction errors (invalid parameters).
pub fn run_comparison(config: &CampaignConfig) -> Result<ComparisonReport, CodecError> {
    run_comparison_with(&SweepEngine::serial(), config)
}

/// [`run_comparison`] with its cells sharded through `engine`; the report
/// is bit-identical for any worker count (same per-cell RNG derivation as
/// [`run_campaign_with`]).
///
/// # Errors
///
/// Propagates codec construction errors (invalid parameters).
pub fn run_comparison_with(
    engine: &SweepEngine,
    config: &CampaignConfig,
) -> Result<ComparisonReport, CodecError> {
    let streams = [StreamKind::Instruction, StreamKind::Data, StreamKind::Muxed];
    let generated: Vec<Vec<Access>> = streams
        .iter()
        .enumerate()
        .map(|(si, &kind)| stream_for(kind, config.stream_len, config.seed.wrapping_add(si as u64)))
        .collect();

    let mut cells = Vec::new();
    for (si, &stream_kind) in streams.iter().enumerate() {
        for (ci, kind) in CodeKind::all().into_iter().enumerate() {
            for (fi, &fault) in config.faults.iter().enumerate() {
                for (ti, &tier) in Tier::all().iter().enumerate() {
                    cells.push((si, ci, fi, ti, stream_kind, kind, fault, tier));
                }
            }
        }
    }

    let results = engine.run(cells, |(si, ci, fi, ti, stream_kind, kind, fault, tier)| {
        let cell = (ci as u64) << 16 | (si as u64) << 8 | fi as u64;
        let cell = cell << 2 | ti as u64;
        let mut rng = Rng64::seed_from_u64(config.seed ^ cell.wrapping_mul(0x9e3779b97f4a7c15));
        let stream = generated.get(si).map(Vec::as_slice).unwrap_or_default();
        run_cell(config, kind, stream, fault, tier, &mut rng).map(|stats| ComparisonRow {
            code: kind,
            stream: stream_kind,
            fault,
            tier,
            stats,
        })
    });

    let mut rows = Vec::with_capacity(results.len());
    for result in results {
        rows.push(result?);
    }
    Ok(ComparisonReport {
        config: config.clone(),
        rows,
    })
}

/// Runs all trials of one campaign cell.
fn run_cell(
    config: &CampaignConfig,
    kind: CodeKind,
    stream: &[Access],
    fault: FaultKind,
    tier: Tier,
    rng: &mut Rng64,
) -> Result<FaultMetrics, CodecError> {
    let mut stats = FaultMetrics::default();
    let refresh_bound = match tier {
        Tier::Bare => None,
        Tier::Parity | Tier::Ecc => Some(config.refresh),
    };
    for _ in 0..config.trials {
        let (enc, dec) = kind.build_codec(config.params, tier, config.refresh)?;
        let trial = run_trial(config, enc, dec, stream, fault, refresh_bound, rng);
        stats.trials += 1;
        stats.trials_with_sdc += u32::from(trial.sdc_cycles > 0);
        stats.trials_detected += u32::from(trial.detected_cycles > 0);
        stats.trials_corrected += u32::from(trial.corrected_cycles > 0);
        stats.trials_unresolved += u32::from(trial.unresolved);
        stats.trials_affected += u32::from(trial.resync > 0);
        stats.decoded_cycles += trial.decoded_cycles;
        stats.sdc_cycles += trial.sdc_cycles;
        stats.detected_cycles += trial.detected_cycles;
        stats.corrected_cycles += trial.corrected_cycles;
        stats.resync_sum += trial.resync;
        stats.resync_max = stats.resync_max.max(trial.resync);
        stats.beyond_bound_cycles += trial.beyond_bound_cycles;
    }
    Ok(stats)
}

/// Outcome of a single trial.
struct TrialOutcome {
    decoded_cycles: u64,
    sdc_cycles: u64,
    detected_cycles: u64,
    /// Cycles the decoder's ECC layer corrected in-flight.
    corrected_cycles: u64,
    /// Fault cycle to last bad cycle, inclusive; 0 if nothing went wrong.
    resync: u64,
    /// Still bad on the final cycle.
    unresolved: bool,
    beyond_bound_cycles: u64,
}

/// Encodes the stream, injects one drawn fault, decodes, classifies.
fn run_trial<E: Encoder, D: Decoder>(
    config: &CampaignConfig,
    mut enc: E,
    mut dec: D,
    stream: &[Access],
    fault: FaultKind,
    refresh: Option<u64>,
    rng: &mut Rng64,
) -> TrialOutcome {
    let geometry = BusGeometry::new(config.params.width.bits(), enc.aux_line_count());
    let words: Vec<_> = stream.iter().map(|&a| enc.encode(a)).collect();
    let site = FaultSite::draw(fault, words.len(), geometry, rng);
    let faulted = apply_fault(&words, stream, geometry, site);

    // The bound applies once the fault stops being active: transient
    // flips last one cycle, stuck-at/burst a window. Re-timing faults
    // shift the refresh schedules against each other, so the bound does
    // not apply to them at all.
    let fault_end = match site.kind {
        FaultKind::TransientFlip => Some(site.cycle),
        FaultKind::StuckAt0 | FaultKind::StuckAt1 | FaultKind::Burst => {
            Some(site.cycle + site.window - 1)
        }
        FaultKind::DropCycle | FaultKind::DuplicateCycle => None,
    };
    let bound_start = match (refresh, fault_end) {
        (Some(r), Some(end)) => Some(((end as u64 / r) + 1) * r),
        _ => None,
    };

    let mut outcome = TrialOutcome {
        decoded_cycles: 0,
        sdc_cycles: 0,
        detected_cycles: 0,
        corrected_cycles: 0,
        resync: 0,
        unresolved: false,
        beyond_bound_cycles: 0,
    };
    let last = faulted.observed.len() - 1;
    for (i, (&(word, sel), &expected)) in faulted.observed.iter().zip(&faulted.expected).enumerate()
    {
        outcome.decoded_cycles += 1;
        let corrected_before = dec.corrected_count();
        let bad = match dec.decode(word, sel) {
            Ok(addr) if addr == expected => false,
            Ok(_) => {
                outcome.sdc_cycles += 1;
                true
            }
            Err(_) => {
                outcome.detected_cycles += 1;
                true
            }
        };
        outcome.corrected_cycles += dec.corrected_count() - corrected_before;
        if bad {
            outcome.resync = (i.saturating_sub(site.cycle) + 1) as u64;
            outcome.unresolved = i == last;
            if let Some(start) = bound_start {
                if i as u64 >= start {
                    outcome.beyond_bound_cycles += 1;
                }
            }
        }
    }
    outcome
}

impl CampaignReport {
    /// Rows matching a predicate.
    pub fn select(&self, f: impl Fn(&CampaignRow) -> bool) -> Vec<&CampaignRow> {
        self.rows.iter().filter(|r| f(r)).collect()
    }

    /// Renders the fixed-width text table (the `faultrun` default).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fault campaign: {} trials x {} cycles per cell, seed {}, refresh {}\n",
            self.config.trials, self.config.stream_len, self.config.seed, self.config.refresh
        ));
        out.push_str(&format!(
            "{:<12} {:<12} {:<15} {:<9} {:>9} {:>7} {:>7} {:>8} {:>7} {:>7}\n",
            "code", "stream", "fault", "codec", "sdc-rate", "sdc", "det", "resync", "max", "beyond"
        ));
        for row in &self.rows {
            let s = &row.stats;
            out.push_str(&format!(
                "{:<12} {:<12} {:<15} {:<9} {:>9.5} {:>7} {:>7} {:>8.1} {:>7} {:>7}\n",
                row.code.name(),
                row.stream.to_string(),
                row.fault.name(),
                if row.hardened { "hardened" } else { "bare" },
                s.sdc_rate(),
                s.sdc_cycles,
                s.detected_cycles,
                s.mean_resync(),
                s.resync_max,
                s.beyond_bound_cycles,
            ));
        }
        out
    }

    /// Renders the report as a JSON document with a stable schema:
    /// `{"config": {...}, "rows": [{"code", "stream", "fault",
    /// "hardened", "trials", "sdc_cycles", "detected_cycles",
    /// "corrected_cycles", "decoded_cycles", "sdc_rate",
    /// "detection_rate", "trials_with_sdc", "trials_detected",
    /// "trials_unresolved", "mean_resync", "max_resync",
    /// "beyond_bound_cycles"}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"config\":{");
        out.push_str(&format!(
            "\"width\":{},\"trials\":{},\"stream_len\":{},\"seed\":{},\"refresh\":{}}},\"rows\":[",
            self.config.params.width.bits(),
            self.config.trials,
            self.config.stream_len,
            self.config.seed,
            self.config.refresh
        ));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &row.stats;
            out.push_str(&format!(
                concat!(
                    "{{\"code\":\"{}\",\"stream\":\"{}\",\"fault\":\"{}\",\"hardened\":{},",
                    "\"trials\":{},\"sdc_cycles\":{},\"detected_cycles\":{},",
                    "\"corrected_cycles\":{},",
                    "\"decoded_cycles\":{},\"sdc_rate\":{:.6},\"detection_rate\":{:.4},",
                    "\"trials_with_sdc\":{},\"trials_detected\":{},\"trials_unresolved\":{},",
                    "\"mean_resync\":{:.2},\"max_resync\":{},\"beyond_bound_cycles\":{}}}"
                ),
                row.code.name(),
                row.stream,
                row.fault.name(),
                row.hardened,
                s.trials,
                s.sdc_cycles,
                s.detected_cycles,
                s.corrected_cycles,
                s.decoded_cycles,
                s.sdc_rate(),
                s.detection_rate(),
                s.trials_with_sdc,
                s.trials_detected,
                s.trials_unresolved,
                s.mean_resync(),
                s.resync_max,
                s.beyond_bound_cycles,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The smoke-gate verdict: the regressions `faultrun --smoke` fails
    /// CI on, as human-readable messages (empty = pass).
    ///
    /// The gate encodes the PR's acceptance criteria: under transient
    /// flips, (1) every *hardened* codec has zero bad cycles beyond its
    /// refresh bound and detects the fault in every trial; (2) every
    /// *bare stateful* code shows nonzero silent corruption — the hazard
    /// that justifies the hardening layer.
    pub fn smoke_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for row in &self.rows {
            if row.fault != FaultKind::TransientFlip {
                continue;
            }
            if row.hardened {
                if row.stats.beyond_bound_cycles > 0 {
                    failures.push(format!(
                        "hardened {} on {}: {} bad cycle(s) beyond the refresh bound",
                        row.code.name(),
                        row.stream,
                        row.stats.beyond_bound_cycles
                    ));
                }
                if row.stats.trials_detected < row.stats.trials {
                    failures.push(format!(
                        "hardened {} on {}: only {}/{} transient flips detected",
                        row.code.name(),
                        row.stream,
                        row.stats.trials_detected,
                        row.stats.trials
                    ));
                }
            }
        }
        // Silent corruption is asserted per code over all streams: a
        // single stream can dodge a fault (e.g. a flip on a frozen line),
        // but across streams a stateful code always bleeds.
        for kind in CodeKind::all() {
            if !is_stateful(kind) {
                continue;
            }
            let sdc: u64 = self
                .rows
                .iter()
                .filter(|r| r.code == kind && !r.hardened && r.fault == FaultKind::TransientFlip)
                .map(|r| r.stats.sdc_cycles)
                .sum();
            if sdc == 0 {
                failures.push(format!(
                    "bare {} showed no silent corruption — stateful codes must (check models)",
                    kind.name()
                ));
            }
        }
        failures
    }
}

impl ComparisonReport {
    /// Rows matching a predicate.
    pub fn select(&self, f: impl Fn(&ComparisonRow) -> bool) -> Vec<&ComparisonRow> {
        self.rows.iter().filter(|r| f(r)).collect()
    }

    /// Renders the fixed-width parity-vs-ECC table (the
    /// `faultrun --compare` default): silent corruption, detections,
    /// in-flight corrections, and resync behavior side by side per tier.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "parity-vs-ecc comparison: {} trials x {} cycles per cell, seed {}, refresh {}\n",
            self.config.trials, self.config.stream_len, self.config.seed, self.config.refresh
        ));
        out.push_str(&format!(
            "{:<12} {:<12} {:<15} {:<7} {:>9} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7}\n",
            "code",
            "stream",
            "fault",
            "tier",
            "sdc-rate",
            "sdc",
            "det",
            "corr",
            "resync",
            "max",
            "beyond"
        ));
        for row in &self.rows {
            let s = &row.stats;
            out.push_str(&format!(
                "{:<12} {:<12} {:<15} {:<7} {:>9.5} {:>7} {:>7} {:>7} {:>8.1} {:>7} {:>7}\n",
                row.code.name(),
                row.stream.to_string(),
                row.fault.name(),
                row.tier.name(),
                s.sdc_rate(),
                s.sdc_cycles,
                s.detected_cycles,
                s.corrected_cycles,
                s.mean_resync(),
                s.resync_max,
                s.beyond_bound_cycles,
            ));
        }
        out
    }

    /// Renders the comparison as a JSON document with a stable schema:
    /// `{"config": {...}, "rows": [{"code", "stream", "fault", "tier",
    /// "trials", "sdc_cycles", "detected_cycles", "corrected_cycles",
    /// "decoded_cycles", "sdc_rate", "detection_rate", "trials_with_sdc",
    /// "trials_detected", "trials_corrected", "trials_unresolved",
    /// "mean_resync", "max_resync", "beyond_bound_cycles"}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"config\":{");
        out.push_str(&format!(
            "\"width\":{},\"trials\":{},\"stream_len\":{},\"seed\":{},\"refresh\":{}}},\"rows\":[",
            self.config.params.width.bits(),
            self.config.trials,
            self.config.stream_len,
            self.config.seed,
            self.config.refresh
        ));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &row.stats;
            out.push_str(&format!(
                concat!(
                    "{{\"code\":\"{}\",\"stream\":\"{}\",\"fault\":\"{}\",\"tier\":\"{}\",",
                    "\"trials\":{},\"sdc_cycles\":{},\"detected_cycles\":{},",
                    "\"corrected_cycles\":{},",
                    "\"decoded_cycles\":{},\"sdc_rate\":{:.6},\"detection_rate\":{:.4},",
                    "\"trials_with_sdc\":{},\"trials_detected\":{},\"trials_corrected\":{},",
                    "\"trials_unresolved\":{},",
                    "\"mean_resync\":{:.2},\"max_resync\":{},\"beyond_bound_cycles\":{}}}"
                ),
                row.code.name(),
                row.stream,
                row.fault.name(),
                row.tier.name(),
                s.trials,
                s.sdc_cycles,
                s.detected_cycles,
                s.corrected_cycles,
                s.decoded_cycles,
                s.sdc_rate(),
                s.detection_rate(),
                s.trials_with_sdc,
                s.trials_detected,
                s.trials_corrected,
                s.trials_unresolved,
                s.mean_resync(),
                s.resync_max,
                s.beyond_bound_cycles,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The comparison smoke-gate verdict (empty = pass): under the
    /// single-transient-flip model,
    ///
    /// 1. every ECC codec has **zero silently corrupted cycles** — the
    ///    headline guarantee: a single flip is corrected, never consumed;
    /// 2. every ECC codec corrects the flip in **every** trial (one
    ///    injected flip, one correction — a shortfall means a flip slipped
    ///    through some other path);
    /// 3. every ECC codec has zero bad cycles beyond the refresh bound;
    /// 4. every parity codec still detects the flip in every trial — the
    ///    baseline the comparison is measured against.
    pub fn smoke_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for row in &self.rows {
            if row.fault != FaultKind::TransientFlip {
                continue;
            }
            let s = &row.stats;
            match row.tier {
                Tier::Ecc => {
                    if s.sdc_cycles > 0 {
                        failures.push(format!(
                            "ecc {} on {}: {} silently corrupted cycle(s) under single flips",
                            row.code.name(),
                            row.stream,
                            s.sdc_cycles
                        ));
                    }
                    if u64::from(s.trials) != s.corrected_cycles {
                        failures.push(format!(
                            "ecc {} on {}: {} correction(s) for {} injected flips",
                            row.code.name(),
                            row.stream,
                            s.corrected_cycles,
                            s.trials
                        ));
                    }
                    if s.beyond_bound_cycles > 0 {
                        failures.push(format!(
                            "ecc {} on {}: {} bad cycle(s) beyond the refresh bound",
                            row.code.name(),
                            row.stream,
                            s.beyond_bound_cycles
                        ));
                    }
                }
                Tier::Parity => {
                    if s.trials_detected < s.trials {
                        failures.push(format!(
                            "parity {} on {}: only {}/{} transient flips detected",
                            row.code.name(),
                            row.stream,
                            s.trials_detected,
                            s.trials
                        ));
                    }
                }
                Tier::Bare => {}
            }
        }
        failures
    }
}

/// Configuration of a Gilbert–Elliott bursty-channel campaign
/// (`faultrun --model bursty-ge`).
///
/// Unlike the single-drawn-fault campaigns above, the channel is active
/// on *every* cycle: state-dependent flips, erasures, and drops arrive
/// whenever the [`GilbertElliott`] weather says so. The campaign sweeps
/// every code × stream × [`Tier`] cell and reports what each
/// tier delivers under sustained bursty loss.
#[derive(Clone, Debug)]
pub struct GeCampaignConfig {
    /// Codec geometry (width, stride).
    pub params: CodeParams,
    /// Trials per code × stream × tier combination.
    pub trials: u32,
    /// Length of each trial's access stream.
    pub stream_len: usize,
    /// Master seed; every stream and channel derives from it.
    pub seed: u64,
    /// Refresh interval for the parity and ECC tiers.
    pub refresh: u64,
    /// The channel weather.
    pub profile: GilbertElliott,
    /// The profile's name, for reports.
    pub profile_name: String,
}

impl Default for GeCampaignConfig {
    fn default() -> Self {
        GeCampaignConfig {
            params: CodeParams::default(),
            trials: 20,
            stream_len: 500,
            seed: 42,
            refresh: 32,
            profile: GilbertElliott::gate(),
            profile_name: "bursty".to_string(),
        }
    }
}

/// Aggregated outcome of one bursty-channel cell (code × stream × tier).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeMetrics {
    /// Trials run.
    pub trials: u32,
    /// Decoded cycles across all trials (drops excluded — the decoder
    /// never saw them).
    pub decoded_cycles: u64,
    /// Cycles that decoded `Ok` to a wrong address.
    pub sdc_cycles: u64,
    /// Cycles the decoder flagged with an error.
    pub detected_cycles: u64,
    /// Cycles the ECC layer corrected in-flight.
    pub corrected_cycles: u64,
    /// Cycles the channel dropped (never reached the decoder).
    pub dropped_cycles: u64,
    /// Cycles the channel erased to all-lines-low.
    pub erased_cycles: u64,
    /// Lines the channel flipped in transit.
    pub flipped_lines: u64,
    /// Channel cycles spent in the bad state.
    pub bad_cycles: u64,
    /// Longest bad-state dwell observed in any trial.
    pub max_bad_dwell: u64,
}

impl GeMetrics {
    /// Silently corrupted cycles per decoded cycle.
    pub fn sdc_rate(&self) -> f64 {
        if self.decoded_cycles == 0 {
            0.0
        } else {
            self.sdc_cycles as f64 / self.decoded_cycles as f64
        }
    }
}

/// One bursty-channel cell: the key plus its aggregated stats.
#[derive(Clone, Debug)]
pub struct GeCampaignRow {
    /// The code under test.
    pub code: CodeKind,
    /// The synthetic stream driven through it.
    pub stream: StreamKind,
    /// The protection level the codec ran under.
    pub tier: Tier,
    /// Aggregated outcomes.
    pub stats: GeMetrics,
}

/// A finished bursty-channel campaign (the `faultrun --model bursty-ge`
/// output).
#[derive(Clone, Debug)]
pub struct GeCampaignReport {
    /// The configuration the campaign ran with.
    pub config: GeCampaignConfig,
    /// One row per code × stream × tier combination.
    pub rows: Vec<GeCampaignRow>,
}

/// Runs the bursty-channel campaign described by `config`.
///
/// # Errors
///
/// Propagates codec construction errors (invalid parameters).
pub fn run_ge_campaign(config: &GeCampaignConfig) -> Result<GeCampaignReport, CodecError> {
    run_ge_campaign_with(&SweepEngine::serial(), config)
}

/// [`run_ge_campaign`] with its cells sharded through `engine`; the
/// report is bit-identical for any worker count (same per-cell RNG
/// derivation as [`run_campaign_with`], salted so the GE campaign never
/// shares a stream with the drawn-fault campaigns).
///
/// # Errors
///
/// Propagates codec construction errors (invalid parameters).
pub fn run_ge_campaign_with(
    engine: &SweepEngine,
    config: &GeCampaignConfig,
) -> Result<GeCampaignReport, CodecError> {
    let streams = [StreamKind::Instruction, StreamKind::Data, StreamKind::Muxed];
    let generated: Vec<Vec<Access>> = streams
        .iter()
        .enumerate()
        .map(|(si, &kind)| stream_for(kind, config.stream_len, config.seed.wrapping_add(si as u64)))
        .collect();

    let mut cells = Vec::new();
    for (si, &stream_kind) in streams.iter().enumerate() {
        for (ci, kind) in CodeKind::all().into_iter().enumerate() {
            for (ti, &tier) in Tier::all().iter().enumerate() {
                cells.push((si, ci, ti, stream_kind, kind, tier));
            }
        }
    }

    let results = engine.run(cells, |(si, ci, ti, stream_kind, kind, tier)| {
        let cell = (ci as u64) << 16 | (si as u64) << 8 | 0x47_45; // "GE" salt
        let cell = cell << 2 | ti as u64;
        let mut rng = Rng64::seed_from_u64(config.seed ^ cell.wrapping_mul(0x9e3779b97f4a7c15));
        let stream = generated.get(si).map(Vec::as_slice).unwrap_or_default();
        run_ge_cell(config, kind, stream, tier, &mut rng).map(|stats| GeCampaignRow {
            code: kind,
            stream: stream_kind,
            tier,
            stats,
        })
    });

    let mut rows = Vec::with_capacity(results.len());
    for result in results {
        rows.push(result?);
    }
    Ok(GeCampaignReport {
        config: config.clone(),
        rows,
    })
}

/// Runs all trials of one bursty-channel cell.
fn run_ge_cell(
    config: &GeCampaignConfig,
    kind: CodeKind,
    stream: &[Access],
    tier: Tier,
    rng: &mut Rng64,
) -> Result<GeMetrics, CodecError> {
    let mut stats = GeMetrics::default();
    for _ in 0..config.trials {
        let channel_seed = rng.next_u64();
        let (mut enc, mut dec) = kind.build_codec(config.params, tier, config.refresh)?;
        let geometry = BusGeometry::new(config.params.width.bits(), enc.aux_line_count());
        let words: Vec<_> = stream.iter().map(|&a| enc.encode(a)).collect();
        let (faulted, weather) =
            apply_ge_channel(&words, stream, geometry, config.profile, channel_seed);

        stats.trials += 1;
        stats.dropped_cycles += weather.drops;
        stats.erased_cycles += weather.erasures;
        stats.flipped_lines += weather.flipped_lines;
        stats.bad_cycles += weather.bad_cycles;
        stats.max_bad_dwell = stats.max_bad_dwell.max(weather.max_bad_dwell);

        for (&(word, sel), &expected) in faulted.observed.iter().zip(&faulted.expected) {
            stats.decoded_cycles += 1;
            let corrected_before = dec.corrected_count();
            match dec.decode(word, sel) {
                Ok(addr) if addr == expected => {}
                Ok(_) => stats.sdc_cycles += 1,
                Err(_) => stats.detected_cycles += 1,
            }
            stats.corrected_cycles += dec.corrected_count() - corrected_before;
        }
    }
    Ok(stats)
}

impl GeCampaignReport {
    /// Rows matching a predicate.
    pub fn select(&self, f: impl Fn(&GeCampaignRow) -> bool) -> Vec<&GeCampaignRow> {
        self.rows.iter().filter(|r| f(r)).collect()
    }

    /// Renders the fixed-width text table (the `faultrun --model
    /// bursty-ge` default).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bursty-ge campaign ({} profile): {} trials x {} cycles per cell, seed {}, refresh {}\n",
            self.config.profile_name,
            self.config.trials,
            self.config.stream_len,
            self.config.seed,
            self.config.refresh
        ));
        out.push_str(&format!(
            "{:<12} {:<12} {:<7} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6}\n",
            "code",
            "stream",
            "tier",
            "sdc-rate",
            "sdc",
            "det",
            "corr",
            "drops",
            "erase",
            "flips",
            "dwell"
        ));
        for row in &self.rows {
            let s = &row.stats;
            out.push_str(&format!(
                "{:<12} {:<12} {:<7} {:>9.5} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6}\n",
                row.code.name(),
                row.stream.to_string(),
                row.tier.name(),
                s.sdc_rate(),
                s.sdc_cycles,
                s.detected_cycles,
                s.corrected_cycles,
                s.dropped_cycles,
                s.erased_cycles,
                s.flipped_lines,
                s.max_bad_dwell,
            ));
        }
        out
    }

    /// Renders the campaign as a JSON document with a stable schema:
    /// `{"config": {..., "profile"}, "rows": [{"code", "stream", "tier",
    /// "trials", "decoded_cycles", "sdc_cycles", "detected_cycles",
    /// "corrected_cycles", "dropped_cycles", "erased_cycles",
    /// "flipped_lines", "bad_cycles", "max_bad_dwell", "sdc_rate"}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"config\":{");
        out.push_str(&format!(
            concat!(
                "\"width\":{},\"trials\":{},\"stream_len\":{},\"seed\":{},",
                "\"refresh\":{},\"profile\":\"{}\"}},\"rows\":["
            ),
            self.config.params.width.bits(),
            self.config.trials,
            self.config.stream_len,
            self.config.seed,
            self.config.refresh,
            self.config.profile_name,
        ));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &row.stats;
            out.push_str(&format!(
                concat!(
                    "{{\"code\":\"{}\",\"stream\":\"{}\",\"tier\":\"{}\",",
                    "\"trials\":{},\"decoded_cycles\":{},\"sdc_cycles\":{},",
                    "\"detected_cycles\":{},\"corrected_cycles\":{},",
                    "\"dropped_cycles\":{},\"erased_cycles\":{},\"flipped_lines\":{},",
                    "\"bad_cycles\":{},\"max_bad_dwell\":{},\"sdc_rate\":{:.6}}}"
                ),
                row.code.name(),
                row.stream,
                row.tier.name(),
                s.trials,
                s.decoded_cycles,
                s.sdc_cycles,
                s.detected_cycles,
                s.corrected_cycles,
                s.dropped_cycles,
                s.erased_cycles,
                s.flipped_lines,
                s.bad_cycles,
                s.max_bad_dwell,
                s.sdc_rate(),
            ));
        }
        out.push_str("]}");
        out
    }
}

fn accumulate_fault(set: &mut MetricSet, stats: &FaultMetrics) {
    set.add_counter("fault.trials", u64::from(stats.trials));
    set.add_counter("fault.trials_with_sdc", u64::from(stats.trials_with_sdc));
    set.add_counter("fault.trials_detected", u64::from(stats.trials_detected));
    set.add_counter(
        "fault.trials_unresolved",
        u64::from(stats.trials_unresolved),
    );
    set.add_counter("fault.decoded_cycles", stats.decoded_cycles);
    set.add_counter("fault.sdc_cycles", stats.sdc_cycles);
    set.add_counter("fault.detected_cycles", stats.detected_cycles);
    set.add_counter("fault.corrected_cycles", stats.corrected_cycles);
    set.add_counter("fault.beyond_bound_cycles", stats.beyond_bound_cycles);
    set.set_gauge("fault.resync_max", stats.resync_max);
}

impl Report for CampaignReport {
    fn render_text(&self) -> String {
        CampaignReport::render_text(self)
    }

    fn render_json(&self) -> String {
        CampaignReport::render_json(self)
    }

    fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("fault.rows", self.rows.len() as u64);
        for row in &self.rows {
            accumulate_fault(&mut set, &row.stats);
        }
        set
    }
}

impl Report for ComparisonReport {
    fn render_text(&self) -> String {
        ComparisonReport::render_text(self)
    }

    fn render_json(&self) -> String {
        ComparisonReport::render_json(self)
    }

    fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("fault.rows", self.rows.len() as u64);
        for row in &self.rows {
            accumulate_fault(&mut set, &row.stats);
        }
        set
    }
}

impl Report for GeCampaignReport {
    fn render_text(&self) -> String {
        GeCampaignReport::render_text(self)
    }

    fn render_json(&self) -> String {
        GeCampaignReport::render_json(self)
    }

    fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("fault.ge.rows", self.rows.len() as u64);
        for row in &self.rows {
            let s = &row.stats;
            set.add_counter("fault.ge.trials", u64::from(s.trials));
            set.add_counter("fault.ge.decoded_cycles", s.decoded_cycles);
            set.add_counter("fault.ge.sdc_cycles", s.sdc_cycles);
            set.add_counter("fault.ge.detected_cycles", s.detected_cycles);
            set.add_counter("fault.ge.corrected_cycles", s.corrected_cycles);
            set.add_counter("fault.ge.dropped_cycles", s.dropped_cycles);
            set.add_counter("fault.ge.erased_cycles", s.erased_cycles);
            set.add_counter("fault.ge.flipped_lines", s.flipped_lines);
            set.add_counter("fault.ge.bad_cycles", s.bad_cycles);
            set.set_gauge("fault.ge.max_bad_dwell", s.max_bad_dwell);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignConfig {
        CampaignConfig {
            trials: 4,
            stream_len: 64,
            refresh: 8,
            faults: vec![FaultKind::TransientFlip],
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let config = tiny();
        let a = run_campaign(&config).unwrap();
        let b = run_campaign(&config).unwrap();
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.stats, y.stats, "{} {} differs", x.code, x.fault);
        }
    }

    #[test]
    fn sharded_campaign_matches_serial_bit_for_bit() {
        let mut config = tiny();
        config.faults = vec![FaultKind::TransientFlip, FaultKind::Burst];
        let serial = run_campaign(&config).unwrap();
        let parallel = run_campaign_with(&SweepEngine::new(8), &config).unwrap();
        assert_eq!(serial.rows.len(), parallel.rows.len());
        for (x, y) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(
                (x.code, x.stream, x.fault, x.hardened),
                (y.code, y.stream, y.fault, y.hardened)
            );
            assert_eq!(x.stats, y.stats);
        }
        assert_eq!(serial.render_json(), parallel.render_json());
        assert_eq!(serial.render_text(), parallel.render_text());
    }

    #[test]
    fn covers_every_cell() {
        let config = tiny();
        let report = run_campaign(&config).unwrap();
        // 12 codes x 3 streams x 1 fault x {bare, hardened}.
        assert_eq!(report.rows.len(), 12 * 3 * 2);
        assert!(report.rows.iter().all(|r| r.stats.trials == 4));
    }

    #[test]
    fn hardened_detects_and_bounds_transients() {
        let report = run_campaign(&tiny()).unwrap();
        for row in report.select(|r| r.hardened) {
            assert_eq!(
                row.stats.beyond_bound_cycles, 0,
                "{} on {}: corruption escaped the refresh bound",
                row.code, row.stream
            );
            assert_eq!(
                row.stats.trials_detected, row.stats.trials,
                "{} on {}: an undetected transient flip",
                row.code, row.stream
            );
        }
    }

    #[test]
    fn bare_stateful_codes_corrupt_silently() {
        let mut config = tiny();
        config.trials = 8;
        let report = run_campaign(&config).unwrap();
        assert!(
            report.smoke_failures().is_empty(),
            "{:?}",
            report.smoke_failures()
        );
    }

    #[test]
    fn comparison_covers_every_tier() {
        let report = run_comparison(&tiny()).unwrap();
        // 12 codes x 3 streams x 1 fault x {bare, parity, ecc}.
        assert_eq!(report.rows.len(), 12 * 3 * 3);
        assert!(report.rows.iter().all(|r| r.stats.trials == 4));
        for tier in Tier::all() {
            assert!(report.rows.iter().any(|r| r.tier == *tier));
        }
    }

    #[test]
    fn ecc_tier_corrects_single_flips_in_flight() {
        let report = run_comparison(&tiny()).unwrap();
        for row in report.select(|r| r.tier == Tier::Ecc) {
            let s = &row.stats;
            assert_eq!(
                s.sdc_cycles, 0,
                "{} on {}: silent corruption",
                row.code, row.stream
            );
            assert_eq!(
                s.detected_cycles, 0,
                "{} on {}: a single flip must be corrected, not just detected",
                row.code, row.stream
            );
            assert_eq!(
                s.corrected_cycles,
                u64::from(s.trials),
                "{} on {}: one injected flip per trial, one correction",
                row.code,
                row.stream
            );
            assert_eq!(
                s.resync_max, 0,
                "{} on {}: in-flight correction needs no resync",
                row.code, row.stream
            );
        }
        assert!(
            report.smoke_failures().is_empty(),
            "{:?}",
            report.smoke_failures()
        );
    }

    #[test]
    fn only_the_ecc_tier_ever_corrects() {
        let report = run_comparison(&tiny()).unwrap();
        for row in report.select(|r| r.tier != Tier::Ecc) {
            assert_eq!(
                row.stats.corrected_cycles, 0,
                "{} on {} ({}) reported corrections",
                row.code, row.stream, row.tier
            );
        }
    }

    #[test]
    fn sharded_comparison_matches_serial_bit_for_bit() {
        let mut config = tiny();
        config.faults = vec![FaultKind::TransientFlip, FaultKind::Burst];
        let serial = run_comparison(&config).unwrap();
        let parallel = run_comparison_with(&SweepEngine::new(8), &config).unwrap();
        assert_eq!(serial.rows.len(), parallel.rows.len());
        for (x, y) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(
                (x.code, x.stream, x.fault, x.tier),
                (y.code, y.stream, y.fault, y.tier)
            );
            assert_eq!(x.stats, y.stats);
        }
        assert_eq!(serial.render_json(), parallel.render_json());
        assert_eq!(serial.render_text(), parallel.render_text());
    }

    #[test]
    fn comparison_renders_text_and_json() {
        let report = run_comparison(&tiny()).unwrap();
        let text = report.render_text();
        assert!(text.contains("parity-vs-ecc comparison"));
        assert!(text.contains(" ecc "));
        assert!(text.contains(" corr"));
        let json = report.render_json();
        assert!(json.starts_with("{\"config\":{"));
        assert!(json.contains("\"tier\":\"parity\""));
        assert!(json.contains("\"corrected_cycles\":"));
        assert!(json.ends_with("]}"));
    }

    fn tiny_ge() -> GeCampaignConfig {
        GeCampaignConfig {
            trials: 3,
            stream_len: 96,
            refresh: 8,
            ..GeCampaignConfig::default()
        }
    }

    #[test]
    fn ge_campaign_covers_every_cell_and_is_deterministic() {
        let config = tiny_ge();
        let a = run_ge_campaign(&config).unwrap();
        // 12 codes x 3 streams x {bare, parity, ecc}.
        assert_eq!(a.rows.len(), 12 * 3 * 3);
        assert!(a.rows.iter().all(|r| r.stats.trials == 3));
        let b = run_ge_campaign(&config).unwrap();
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(
                x.stats, y.stats,
                "{} {} {} differs",
                x.code, x.stream, x.tier
            );
        }
    }

    #[test]
    fn sharded_ge_campaign_matches_serial_bit_for_bit() {
        let config = tiny_ge();
        let serial = run_ge_campaign(&config).unwrap();
        let parallel = run_ge_campaign_with(&SweepEngine::new(8), &config).unwrap();
        assert_eq!(serial.render_json(), parallel.render_json());
        assert_eq!(serial.render_text(), parallel.render_text());
    }

    #[test]
    fn ge_campaign_channel_actually_rains() {
        // Under the gate profile the channel must visibly act: flips,
        // and at least some drops or erasures, across the whole grid.
        let report = run_ge_campaign(&tiny_ge()).unwrap();
        let flips: u64 = report.rows.iter().map(|r| r.stats.flipped_lines).sum();
        let drops: u64 = report.rows.iter().map(|r| r.stats.dropped_cycles).sum();
        let erases: u64 = report.rows.iter().map(|r| r.stats.erased_cycles).sum();
        assert!(flips > 0, "no lines flipped — dead channel");
        assert!(drops + erases > 0, "no drops or erasures — dead channel");
        let bad: u64 = report.rows.iter().map(|r| r.stats.bad_cycles).sum();
        assert!(bad > 0, "the channel never entered the bad state");
    }

    #[test]
    fn ge_campaign_renders_text_and_json() {
        let report = run_ge_campaign(&tiny_ge()).unwrap();
        let text = report.render_text();
        assert!(text.contains("bursty-ge campaign (bursty profile)"));
        assert!(text.contains("dual-t0-bi"));
        let json = report.render_json();
        assert!(json.starts_with("{\"config\":{"));
        assert!(json.contains("\"profile\":\"bursty\""));
        assert!(json.contains("\"tier\":\"ecc\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn renders_text_and_json() {
        let report = run_campaign(&tiny()).unwrap();
        let text = report.render_text();
        assert!(text.contains("dual-t0-bi"));
        assert!(text.contains("hardened"));
        let json = report.render_json();
        assert!(json.starts_with("{\"config\":{"));
        assert!(json.contains("\"fault\":\"transient-flip\""));
        assert!(json.ends_with("]}"));
    }
}
