//! # buscode-fault
//!
//! Fault injection and resilience measurement for the bus codecs.
//!
//! The DATE'98 codes trade redundancy for power, and the stateful ones
//! (T0 and its mixed descendants) additionally trade *fault containment*:
//! a single in-transit bit flip can desynchronize the decoder for an
//! unbounded number of cycles. This crate makes that hazard measurable
//! and checks the fix:
//!
//! - [`models`] — behavioral fault models on the encoded word stream:
//!   transient flips, stuck-at lines, bursts, dropped/duplicated cycles —
//!   plus the seeded two-state [`GilbertElliott`] bursty channel
//!   ([`GeChannel`]) whose state-dependent flip/erase/drop perils the
//!   link layer (`buscode-link`) retransmits through;
//! - [`campaign`] — seeded Monte Carlo campaigns over every code × stream
//!   kind, bare and under the
//!   [`Hardened`][buscode_core::codes::Hardened] wrapper, reporting
//!   silent-data-corruption rate, detection rate, and cycles-to-resync —
//!   plus the parity-vs-ECC comparison grid
//!   ([`campaign::run_comparison`]) that additionally
//!   sweeps the [`EccHardened`][buscode_core::codes::EccHardened] tier
//!   and counts in-flight corrections;
//! - [`gate`] — the same idea at gate level: stuck-at and flip-flop SEU
//!   injection inside the synthesized codec netlists via
//!   [`Simulator`][buscode_logic::Simulator]'s fault hooks.
//!
//! The `faultrun` binary drives all of it from the command line and is
//! the CI smoke gate for the hardening guarantees.
//!
//! ## Example
//!
//! ```
//! use buscode_fault::campaign::{run_campaign, CampaignConfig};
//! use buscode_fault::models::FaultKind;
//!
//! let config = CampaignConfig {
//!     trials: 4,
//!     stream_len: 64,
//!     faults: vec![FaultKind::TransientFlip],
//!     ..CampaignConfig::default()
//! };
//! let report = run_campaign(&config).unwrap();
//! // Hardened codecs never let a transient flip slip past the refresh
//! // bound.
//! assert!(report
//!     .rows
//!     .iter()
//!     .filter(|r| r.hardened)
//!     .all(|r| r.stats.beyond_bound_cycles == 0));
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod campaign;
pub mod gate;
pub mod models;

pub use buscode_core::Tier;
pub use campaign::{
    is_stateful, run_campaign, run_comparison, run_ge_campaign, CampaignConfig, CampaignReport,
    CampaignRow, ComparisonReport, ComparisonRow, FaultMetrics, GeCampaignConfig, GeCampaignReport,
    GeCampaignRow, GeMetrics,
};
pub use gate::{run_gate_campaign, GateCampaignConfig, GateCellStats, GateFault};
pub use models::{
    apply_ge_channel, corrupt_words, BusGeometry, FaultKind, FaultSite, GeChannel, GeChannelStats,
    GeEvent, GilbertElliott,
};
