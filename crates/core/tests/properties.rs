//! Randomized property tests over every code: round-trip correctness,
//! invariant bounds, and reset semantics, on arbitrary widths, strides and
//! streams. Each property runs against a deterministic seeded sweep of
//! random cases, so failures are reproducible from the iteration index.

use buscode_core::codes::BeachCode;
use buscode_core::metrics::{binary_reference, count_transitions, verify_round_trip};
use buscode_core::rng::Rng64;
use buscode_core::{Access, AccessKind, BusState, BusWidth, CodeKind, CodeParams, Stride};

const CASES: u64 = 64;

/// Draws a valid (width, stride) pair.
fn random_params(rng: &mut Rng64) -> CodeParams {
    loop {
        let bits = rng.gen_range(1u32..=64);
        let k = rng.gen_range(0u32..6);
        let Ok(width) = BusWidth::new(bits) else {
            continue;
        };
        let Ok(stride) = Stride::new(1u64 << k, width) else {
            continue;
        };
        return CodeParams { width, stride };
    }
}

/// Expands raw move descriptors into a realistic mixed stream: sequential
/// runs, local jumps, repeats, far jumps, and interleaved data accesses.
fn random_stream(rng: &mut Rng64, params: CodeParams) -> Vec<Access> {
    let mask = params.width.mask();
    let stride = params.stride.get();
    let mut addr = rng.gen::<u64>() & mask;
    let len = rng.gen_range(1usize..200);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let kind = rng.gen_range(0u8..10);
        let jump = rng.gen::<u64>();
        addr = match kind {
            // 60%: in-sequence step.
            0..=5 => addr.wrapping_add(stride) & mask,
            // 20%: short local jump.
            6..=7 => addr.wrapping_add((jump % 64) * stride) & mask,
            // 10%: repeat the same address.
            8 => addr,
            // 10%: arbitrary far jump.
            _ => jump & mask,
        };
        out.push(if rng.gen::<bool>() {
            Access::data(addr)
        } else {
            Access::instruction(addr)
        });
    }
    out
}

/// decode(encode(stream)) == stream, for every code, width, stride.
#[test]
fn every_code_round_trips() {
    let mut rng = Rng64::seed_from_u64(0xc0de_0001);
    for case in 0..CASES {
        let params = random_params(&mut rng);
        let stream = random_stream(&mut rng, params);
        for kind in CodeKind::all() {
            let mut enc = kind.encoder(params).unwrap();
            let mut dec = kind.decoder(params).unwrap();
            let result = verify_round_trip(enc.as_mut(), dec.as_mut(), stream.iter().copied());
            assert!(result.is_ok(), "case {case}, {kind}: {:?}", result.err());
        }
    }
}

/// Resetting both halves restores exact reproducibility.
#[test]
fn reset_restores_initial_behaviour() {
    let mut rng = Rng64::seed_from_u64(0xc0de_0002);
    for case in 0..CASES {
        let params = random_params(&mut rng);
        let stream: Vec<Access> = (0..50u64)
            .map(|i| Access::instruction((0x40 + params.stride.get() * i) & params.width.mask()))
            .collect();
        for kind in CodeKind::all() {
            let mut enc = kind.encoder(params).unwrap();
            let first: Vec<BusState> = stream.iter().map(|&a| enc.encode(a)).collect();
            enc.reset();
            let second: Vec<BusState> = stream.iter().map(|&a| enc.encode(a)).collect();
            assert_eq!(first, second, "case {case}, {kind}");
        }
    }
}

/// Bus-invert never toggles more than floor(N/2) + 1 lines per cycle.
#[test]
fn bus_invert_transition_bound() {
    let mut rng = Rng64::seed_from_u64(0xc0de_0003);
    for case in 0..CASES {
        let bits = rng.gen_range(1u32..=64);
        let width = BusWidth::new(bits).unwrap();
        let mut enc = CodeKind::BusInvert
            .encoder(CodeParams {
                width,
                stride: Stride::UNIT,
            })
            .unwrap();
        let mut prev = BusState::reset();
        for _ in 0..rng.gen_range(1usize..300) {
            let word = enc.encode(Access::data(rng.gen::<u64>() & width.mask()));
            assert!(
                word.transitions_from(prev) <= bits / 2 + 1,
                "case {case}, width {bits}"
            );
            prev = word;
        }
    }
}

/// On a pure in-sequence run every sequential code beats or matches
/// binary, and T0-family codes emit (almost) nothing.
#[test]
fn sequential_codes_win_on_runs() {
    let mut rng = Rng64::seed_from_u64(0xc0de_0004);
    for case in 0..CASES {
        let params = random_params(&mut rng);
        let start = rng.gen::<u64>();
        let stream: Vec<Access> = (0..200u64)
            .map(|i| {
                Access::instruction(
                    start.wrapping_add(params.stride.get() * i) & params.width.mask(),
                )
            })
            .collect();
        let binary = binary_reference(params.width, stream.iter().copied());
        for kind in [
            CodeKind::T0,
            CodeKind::DualT0,
            CodeKind::T0Bi,
            CodeKind::DualT0Bi,
        ] {
            let mut enc = kind.encoder(params).unwrap();
            let stats = count_transitions(enc.as_mut(), stream.iter().copied());
            // At most the initial drive plus the INC assertion.
            assert!(
                stats.total() <= u64::from(params.width.bits()) + 2,
                "case {case}, {kind}: {} transitions",
                stats.total()
            );
            assert!(stats.total() <= binary.total() + 2, "case {case}, {kind}");
        }
    }
}

/// Gray coding costs exactly one transition per in-sequence address.
#[test]
fn gray_costs_one_per_sequential_step() {
    let mut rng = Rng64::seed_from_u64(0xc0de_0005);
    for case in 0..CASES {
        let params = random_params(&mut rng);
        let start = rng.gen::<u64>();
        let mut enc = CodeKind::Gray.encoder(params).unwrap();
        let mask = params.width.mask();
        let mut prev = enc.encode(Access::instruction(start & mask));
        for i in 1..100u64 {
            let addr = start.wrapping_add(params.stride.get() * i) & mask;
            let word = enc.encode(Access::instruction(addr));
            assert_eq!(word.transitions_from(prev), 1, "case {case}, step {i}");
            prev = word;
        }
    }
}

/// A trained Beach transform is always invertible, whatever the
/// training stream.
#[test]
fn beach_training_is_always_invertible() {
    let mut rng = Rng64::seed_from_u64(0xc0de_0006);
    for case in 0..CASES {
        let bits = rng.gen_range(1u32..=64);
        let width = BusWidth::new(bits).unwrap();
        let profile: Vec<u64> = (0..rng.gen_range(0usize..200))
            .map(|_| rng.gen::<u64>())
            .collect();
        let code = BeachCode::train(width, profile.iter().copied());
        let mut enc = code.clone().into_encoder();
        let mut dec = code.into_decoder();
        for _ in 0..rng.gen_range(1usize..100) {
            let addr = rng.gen::<u64>() & width.mask();
            let word = buscode_core::Encoder::encode(&mut enc, Access::data(addr));
            let back = buscode_core::Decoder::decode(&mut dec, word, AccessKind::Data).unwrap();
            assert_eq!(back, addr, "case {case}, width {bits}");
        }
    }
}

/// Total transitions are invariant under re-running the same encoder
/// after reset (determinism), for interleaved muxed streams.
#[test]
fn transition_counts_are_deterministic() {
    let mut rng = Rng64::seed_from_u64(0xc0de_0007);
    for case in 0..CASES {
        let params = random_params(&mut rng);
        let mask = params.width.mask();
        let stream: Vec<Access> = (0..120u64)
            .map(|i| {
                if i % 3 == 0 {
                    Access::data((i * 977) & mask)
                } else {
                    Access::instruction((0x80 + params.stride.get() * i) & mask)
                }
            })
            .collect();
        for kind in CodeKind::all() {
            let mut enc = kind.encoder(params).unwrap();
            let a = count_transitions(enc.as_mut(), stream.iter().copied());
            enc.reset();
            let b = count_transitions(enc.as_mut(), stream.iter().copied());
            assert_eq!(a, b, "case {case}, {kind}");
        }
    }
}
