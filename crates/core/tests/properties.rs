//! Property-based tests over every code: round-trip correctness, invariant
//! bounds, and reset semantics, on arbitrary widths, strides and streams.

use buscode_core::codes::BeachCode;
use buscode_core::metrics::{binary_reference, count_transitions, verify_round_trip};
use buscode_core::{Access, AccessKind, BusState, BusWidth, CodeKind, CodeParams, Stride};
use proptest::prelude::*;

/// A strategy producing a valid (width, stride) pair.
fn params_strategy() -> impl Strategy<Value = CodeParams> {
    (1u32..=64, 0u32..6).prop_filter_map("stride must fit width", |(bits, k)| {
        let width = BusWidth::new(bits).ok()?;
        let stride = Stride::new(1u64 << k, width).ok()?;
        Some(CodeParams { width, stride })
    })
}

/// Expands raw move descriptors into a realistic mixed stream: sequential
/// runs, local jumps, repeats, far jumps, and interleaved data accesses.
fn build_stream(params: CodeParams, start: u64, moves: &[(u8, u64, bool)]) -> Vec<Access> {
    let mask = params.width.mask();
    let stride = params.stride.get();
    let mut addr = start & mask;
    let mut out = Vec::with_capacity(moves.len());
    for &(kind, jump, is_data) in moves {
        addr = match kind {
            // 60%: in-sequence step.
            0..=5 => addr.wrapping_add(stride) & mask,
            // 20%: short local jump.
            6..=7 => addr.wrapping_add((jump % 64) * stride) & mask,
            // 10%: repeat the same address.
            8 => addr,
            // 10%: arbitrary far jump.
            _ => jump & mask,
        };
        out.push(if is_data {
            Access::data(addr)
        } else {
            Access::instruction(addr)
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(encode(stream)) == stream, for every code, width, stride.
    #[test]
    fn every_code_round_trips(
        params in params_strategy(),
        start in any::<u64>(),
        moves in prop::collection::vec((0u8..10, any::<u64>(), prop::bool::ANY), 1..200),
    ) {
        let stream = build_stream(params, start, &moves);
        for kind in CodeKind::all() {
            let mut enc = kind.encoder(params).unwrap();
            let mut dec = kind.decoder(params).unwrap();
            let result = verify_round_trip(enc.as_mut(), dec.as_mut(), stream.iter().copied());
            prop_assert!(result.is_ok(), "{kind}: {:?}", result.err());
        }
    }

    /// Resetting both halves restores exact reproducibility.
    #[test]
    fn reset_restores_initial_behaviour(params in params_strategy()) {
        let stream: Vec<Access> = (0..50u64)
            .map(|i| Access::instruction((0x40 + params.stride.get() * i) & params.width.mask()))
            .collect();
        for kind in CodeKind::all() {
            let mut enc = kind.encoder(params).unwrap();
            let first: Vec<BusState> =
                stream.iter().map(|&a| enc.encode(a)).collect();
            enc.reset();
            let second: Vec<BusState> =
                stream.iter().map(|&a| enc.encode(a)).collect();
            prop_assert_eq!(&first, &second, "{}", kind);
        }
    }

    /// Bus-invert never toggles more than floor(N/2) + 1 lines per cycle.
    #[test]
    fn bus_invert_transition_bound(
        bits in 1u32..=64,
        addrs in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let width = BusWidth::new(bits).unwrap();
        let mut enc = CodeKind::BusInvert
            .encoder(CodeParams { width, stride: Stride::UNIT })
            .unwrap();
        let mut prev = BusState::reset();
        for addr in addrs {
            let word = enc.encode(Access::data(addr & width.mask()));
            prop_assert!(word.transitions_from(prev) <= bits / 2 + 1);
            prev = word;
        }
    }

    /// On a pure in-sequence run every sequential code beats or matches
    /// binary, and T0-family codes emit (almost) nothing.
    #[test]
    fn sequential_codes_win_on_runs(params in params_strategy(), start in any::<u64>()) {
        let stream: Vec<Access> = (0..200u64)
            .map(|i| {
                Access::instruction(
                    start.wrapping_add(params.stride.get() * i) & params.width.mask(),
                )
            })
            .collect();
        let binary = binary_reference(params.width, stream.iter().copied());
        for kind in [CodeKind::T0, CodeKind::DualT0, CodeKind::T0Bi, CodeKind::DualT0Bi] {
            let mut enc = kind.encoder(params).unwrap();
            let stats = count_transitions(enc.as_mut(), stream.iter().copied());
            // At most the initial drive plus the INC assertion.
            prop_assert!(
                stats.total() <= u64::from(params.width.bits()) + 2,
                "{kind}: {} transitions", stats.total()
            );
            prop_assert!(stats.total() <= binary.total() + 2, "{kind}");
        }
    }

    /// Gray coding costs exactly one transition per in-sequence address.
    #[test]
    fn gray_costs_one_per_sequential_step(
        params in params_strategy(),
        start in any::<u64>(),
    ) {
        let mut enc = CodeKind::Gray.encoder(params).unwrap();
        let mask = params.width.mask();
        let mut prev = enc.encode(Access::instruction(start & mask));
        for i in 1..100u64 {
            let addr = start.wrapping_add(params.stride.get() * i) & mask;
            let word = enc.encode(Access::instruction(addr));
            prop_assert_eq!(word.transitions_from(prev), 1);
            prev = word;
        }
    }

    /// A trained Beach transform is always invertible, whatever the
    /// training stream.
    #[test]
    fn beach_training_is_always_invertible(
        bits in 1u32..=64,
        profile in prop::collection::vec(any::<u64>(), 0..200),
        probes in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let width = BusWidth::new(bits).unwrap();
        let code = BeachCode::train(width, profile.iter().copied());
        let mut enc = code.clone().into_encoder();
        let mut dec = code.into_decoder();
        for probe in probes {
            let addr = probe & width.mask();
            let word = buscode_core::Encoder::encode(&mut enc, Access::data(addr));
            let back = buscode_core::Decoder::decode(&mut dec, word, AccessKind::Data).unwrap();
            prop_assert_eq!(back, addr);
        }
    }

    /// Total transitions are invariant under re-running the same encoder
    /// after reset (determinism), for interleaved muxed streams.
    #[test]
    fn transition_counts_are_deterministic(params in params_strategy()) {
        let mask = params.width.mask();
        let stream: Vec<Access> = (0..120u64)
            .map(|i| {
                if i % 3 == 0 {
                    Access::data((i * 977) & mask)
                } else {
                    Access::instruction((0x80 + params.stride.get() * i) & mask)
                }
            })
            .collect();
        for kind in CodeKind::all() {
            let mut enc = kind.encoder(params).unwrap();
            let a = count_transitions(enc.as_mut(), stream.iter().copied());
            enc.reset();
            let b = count_transitions(enc.as_mut(), stream.iter().copied());
            prop_assert_eq!(a, b, "{}", kind);
        }
    }
}
