//! Block-API ↔ per-word equivalence properties.
//!
//! The block API's contract is exact cycle equivalence: for ANY
//! partitioning of a stream into blocks (including empty and single-word
//! blocks), `encode_block` / `count_block` / `activity_block` /
//! `decode_block` must produce the same bus words, transition counts,
//! per-line profiles and decoded addresses as the word-at-a-time path.
//! These properties are exercised for every code, bare and hardened, on
//! narrow and full-width buses, with randomized block boundaries.

use buscode_core::metrics::{
    count_transitions_per_word, count_transitions_slice, line_activity_per_word,
    line_activity_slice, LineActivity, TransitionStats,
};
use buscode_core::rng::Rng64;
use buscode_core::{Access, AccessKind, BusState, CodeKind, CodeParams, Decoder, Encoder};

const CASES: usize = 3;
const STREAM_LEN: u64 = 400;

/// (width bits, stride) pairs: tiny buses exercise masking edge cases,
/// 32 is the paper's MIPS bus with the packed kernels.
const SHAPES: &[(u32, u64)] = &[(4, 2), (8, 4), (32, 4)];

fn mixed_stream(rng: &mut Rng64, params: CodeParams, n: u64) -> Vec<Access> {
    let mask = params.width.mask();
    let stride = params.stride.get();
    let mut addr = 0x40u64 & mask;
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.6) {
                addr = params.width.wrapping_add(addr, stride);
                Access::instruction(addr)
            } else {
                addr = rng.gen::<u64>() & mask;
                Access::data(addr)
            }
        })
        .collect()
}

/// Cuts `s` into random blocks, deliberately including empty ones.
fn random_blocks<'a>(rng: &mut Rng64, s: &'a [Access]) -> Vec<&'a [Access]> {
    let mut blocks = Vec::new();
    let mut at = 0usize;
    while at < s.len() {
        let len = (rng.gen::<u64>() % 70) as usize;
        let end = (at + len).min(s.len());
        blocks.push(&s[at..end]);
        at = end;
    }
    blocks.push(&s[s.len()..]); // trailing empty block
    blocks
}

fn for_each_codec(mut f: impl FnMut(CodeKind, CodeParams, bool)) {
    for &(bits, stride) in SHAPES {
        let params = CodeParams::new(bits, stride).expect("valid shape");
        for kind in CodeKind::all() {
            f(kind, params, false);
            f(kind, params, true);
        }
    }
}

#[test]
fn encode_block_matches_per_word_at_random_boundaries() {
    let mut rng = Rng64::seed_from_u64(0xb10c_0001);
    for_each_codec(|kind, params, hardened| {
        for case in 0..CASES {
            let stream = mixed_stream(&mut rng, params, STREAM_LEN);
            let ctx = format!("{kind} hardened={hardened} {params:?} case {case}");
            let (reference, blocked) = if hardened {
                let mut enc = kind.hardened_encoder(params, 16).unwrap();
                let reference: Vec<BusState> = stream
                    .iter()
                    .map(|&a| buscode_core::Encoder::encode(&mut enc, a))
                    .collect();
                enc.reset();
                let mut blocked = Vec::new();
                for blk in random_blocks(&mut rng, &stream) {
                    buscode_core::Encoder::encode_block(&mut enc, blk, &mut blocked);
                }
                (reference, blocked)
            } else {
                let mut enc = kind.encoder(params).unwrap();
                let reference: Vec<BusState> = stream.iter().map(|&a| enc.encode(a)).collect();
                enc.reset();
                let mut blocked = Vec::new();
                for blk in random_blocks(&mut rng, &stream) {
                    enc.encode_block(blk, &mut blocked);
                }
                (reference, blocked)
            };
            assert_eq!(reference, blocked, "{ctx}");
        }
    });
}

#[test]
fn count_block_matches_per_word_at_random_boundaries() {
    let mut rng = Rng64::seed_from_u64(0xb10c_0002);
    for_each_codec(|kind, params, hardened| {
        for case in 0..CASES {
            let stream = mixed_stream(&mut rng, params, STREAM_LEN);
            let ctx = format!("{kind} hardened={hardened} {params:?} case {case}");
            let mut enc: Box<dyn buscode_core::Encoder> = if hardened {
                Box::new(kind.hardened_encoder(params, 16).unwrap())
            } else {
                kind.encoder(params).unwrap()
            };
            let reference = count_transitions_per_word(enc.as_mut(), stream.iter().copied());
            enc.reset();
            let mut stats = TransitionStats::default();
            let mut prev = BusState::reset();
            for blk in random_blocks(&mut rng, &stream) {
                enc.count_block(blk, &mut prev, &mut stats);
            }
            assert_eq!(reference, stats, "{ctx}");
            enc.reset();
            assert_eq!(
                reference,
                count_transitions_slice(enc.as_mut(), &stream),
                "{ctx} (slice)"
            );
        }
    });
}

#[test]
fn activity_block_matches_per_word_at_random_boundaries() {
    let mut rng = Rng64::seed_from_u64(0xb10c_0003);
    for_each_codec(|kind, params, hardened| {
        for case in 0..CASES {
            let stream = mixed_stream(&mut rng, params, STREAM_LEN);
            let ctx = format!("{kind} hardened={hardened} {params:?} case {case}");
            let mut enc: Box<dyn buscode_core::Encoder> = if hardened {
                Box::new(kind.hardened_encoder(params, 16).unwrap())
            } else {
                kind.encoder(params).unwrap()
            };
            let reference = line_activity_per_word(enc.as_mut(), stream.iter().copied());
            enc.reset();
            let mut activity = LineActivity::for_encoder(enc.as_ref());
            let mut prev = BusState::reset();
            for blk in random_blocks(&mut rng, &stream) {
                enc.activity_block(blk, &mut prev, &mut activity);
            }
            assert_eq!(reference, activity, "{ctx}");
            enc.reset();
            assert_eq!(
                reference,
                line_activity_slice(enc.as_mut(), &stream),
                "{ctx} (slice)"
            );
            // The profile's totals must agree with the transition counter.
            enc.reset();
            let stats = count_transitions_slice(enc.as_mut(), &stream);
            assert_eq!(reference.total(), stats.total(), "{ctx} (total)");
            assert_eq!(reference.cycles, stats.cycles, "{ctx} (cycles)");
        }
    });
}

#[test]
fn decode_block_round_trips_at_random_boundaries() {
    let mut rng = Rng64::seed_from_u64(0xb10c_0004);
    for_each_codec(|kind, params, hardened| {
        let stream = mixed_stream(&mut rng, params, STREAM_LEN);
        let ctx = format!("{kind} hardened={hardened} {params:?}");
        let mask = params.width.mask();
        let (words, decoded) = if hardened {
            let mut enc = kind.hardened_encoder(params, 16).unwrap();
            let mut dec = kind.hardened_decoder(params, 16).unwrap();
            let mut words = Vec::new();
            buscode_core::Encoder::encode_block(&mut enc, &stream, &mut words);
            let mut decoded = Vec::new();
            let mut at = 0usize;
            for blk in random_blocks(&mut rng, &stream) {
                let kinds: Vec<AccessKind> = blk.iter().map(|a| a.kind).collect();
                buscode_core::Decoder::decode_block(
                    &mut dec,
                    &words[at..at + blk.len()],
                    &kinds,
                    &mut decoded,
                )
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                at += blk.len();
            }
            (words, decoded)
        } else {
            let mut enc = kind.encoder(params).unwrap();
            let mut dec = kind.decoder(params).unwrap();
            let mut words = Vec::new();
            enc.encode_block(&stream, &mut words);
            let mut decoded = Vec::new();
            let mut at = 0usize;
            for blk in random_blocks(&mut rng, &stream) {
                let kinds: Vec<AccessKind> = blk.iter().map(|a| a.kind).collect();
                dec.decode_block(&words[at..at + blk.len()], &kinds, &mut decoded)
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                at += blk.len();
            }
            (words, decoded)
        };
        assert_eq!(words.len(), decoded.len(), "{ctx}");
        for (i, (&got, access)) in decoded.iter().zip(&stream).enumerate() {
            assert_eq!(got, access.address & mask, "{ctx}, cycle {i}");
        }
    });
}
