//! The [`Encoder`] / [`Decoder`] traits every bus code implements, and the
//! [`CodeKind`] factory used by experiment harnesses to sweep over codes.

use crate::bus::{Access, BusState, BusWidth, Stride};
use crate::error::CodecError;
use crate::metrics::{LineActivity, TransitionStats};

/// A stateful address-bus encoder.
///
/// An encoder sits inside the processor, immediately before the bus drivers.
/// Each clock cycle it receives the address the core wants to transmit and
/// produces the [`BusState`] actually driven onto the wires. Implementations
/// start from the hardware-reset bus state ([`BusState::reset`], all lines
/// low) and may keep arbitrary internal registers.
///
/// Encoding is infallible: parameters are validated at construction, and
/// addresses are masked to the configured [`BusWidth`] (the core cannot emit
/// a wider address than its own bus).
///
/// # Examples
///
/// ```
/// use buscode_core::codes::T0Encoder;
/// use buscode_core::{Access, BusWidth, Encoder, Stride};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = T0Encoder::new(BusWidth::MIPS, Stride::WORD)?;
/// let first = enc.encode(Access::instruction(0x100));
/// let second = enc.encode(Access::instruction(0x104)); // sequential: frozen
/// assert_eq!(second.payload, first.payload);
/// assert_eq!(second.aux, 1); // INC asserted
/// # Ok(())
/// # }
/// ```
pub trait Encoder {
    /// A short stable identifier for the code (for reports and tables).
    fn name(&self) -> &'static str;

    /// The payload width of the bus this encoder drives.
    fn width(&self) -> BusWidth;

    /// How many redundant lines this code adds to the bus (0 for
    /// irredundant codes such as binary or Gray).
    fn aux_line_count(&self) -> u32;

    /// Encodes one bus transaction, advancing the internal state.
    ///
    /// The address is masked to [`Encoder::width`] before encoding.
    fn encode(&mut self, access: Access) -> BusState;

    /// Encodes a whole block of transactions, appending one [`BusState`]
    /// per access to `out`.
    ///
    /// This is the bulk entry point the sweep engine and the transition
    /// kernels drive. The contract is exact cycle equivalence with the
    /// per-word path: state is carried across block boundaries, so any
    /// partitioning of a stream into blocks (including empty and
    /// single-word blocks) produces the same bus words as calling
    /// [`Encoder::encode`] once per access.
    ///
    /// The default implementation loops over [`Encoder::encode`]; because
    /// default trait methods are monomorphized per implementing type, the
    /// loop is statically dispatched even when called through
    /// `dyn Encoder` — one virtual call per block, not per word. Cheap
    /// codes additionally override this with fused loops.
    fn encode_block(&mut self, accesses: &[Access], out: &mut Vec<BusState>) {
        out.reserve(accesses.len());
        for &access in accesses {
            out.push(self.encode(access));
        }
    }

    /// Encodes a block and accumulates its line transitions in one pass,
    /// without materializing the bus words for the caller.
    ///
    /// `prev` is the last bus word before the block ([`BusState::reset`]
    /// at stream start) and is left at the block's final word; `stats`
    /// receives the block's cycle count and payload/aux transitions.
    /// Exactly equivalent to [`Encoder::encode_block`] followed by
    /// [`TransitionStats::accumulate_block`] — this is the packed kernel
    /// behind [`count_transitions`][crate::metrics::count_transitions].
    ///
    /// The default implementation does just that through a scratch
    /// buffer. The irredundant stateless codes (binary, Gray) override it
    /// with fused loops that keep the whole encode-XOR-popcount chain in
    /// registers, never touching a bus-word buffer at all.
    fn count_block(
        &mut self,
        accesses: &[Access],
        prev: &mut BusState,
        stats: &mut TransitionStats,
    ) {
        let mut words = Vec::with_capacity(accesses.len());
        self.encode_block(accesses, &mut words);
        stats.accumulate_block(&words, prev);
    }

    /// Encodes a block and accumulates *per-line* transition counts in one
    /// pass — the profile counterpart of [`Encoder::count_block`].
    ///
    /// `activity` must be shaped for this encoder
    /// ([`LineActivity::for_encoder`]): `payload` holds one counter per
    /// payload line (LSB-first) and `aux` one per redundant line. `prev`
    /// carries the last bus word across block boundaries exactly as in
    /// [`Encoder::count_block`], so any partitioning of a stream yields
    /// identical counts.
    ///
    /// The default implementation encodes through a scratch buffer and
    /// walks the set bits of each XOR word. Binary and Gray override it
    /// with the positional carry-save kernel, which runs within a few
    /// percent of their total-count kernels.
    fn activity_block(
        &mut self,
        accesses: &[Access],
        prev: &mut BusState,
        activity: &mut LineActivity,
    ) {
        let mut words = Vec::with_capacity(accesses.len());
        self.encode_block(accesses, &mut words);
        activity.accumulate_block(&words, prev);
    }

    /// Returns the encoder to its hardware-reset state (all registers and
    /// the modelled bus lines low).
    fn reset(&mut self);
}

impl<E: Encoder + ?Sized> Encoder for Box<E> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn width(&self) -> BusWidth {
        (**self).width()
    }

    fn aux_line_count(&self) -> u32 {
        (**self).aux_line_count()
    }

    fn encode(&mut self, access: Access) -> BusState {
        (**self).encode(access)
    }

    fn encode_block(&mut self, accesses: &[Access], out: &mut Vec<BusState>) {
        (**self).encode_block(accesses, out)
    }

    fn count_block(
        &mut self,
        accesses: &[Access],
        prev: &mut BusState,
        stats: &mut TransitionStats,
    ) {
        (**self).count_block(accesses, prev, stats)
    }

    fn activity_block(
        &mut self,
        accesses: &[Access],
        prev: &mut BusState,
        activity: &mut LineActivity,
    ) {
        (**self).activity_block(accesses, prev, activity)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// A stateful address-bus decoder.
///
/// The decoder sits inside the memory or I/O controller at the receiving end
/// of the bus and reconstructs the original address stream from the encoded
/// line values (plus the standard `SEL` signal carried in
/// [`Access::kind`][crate::Access], which multiplexed-bus codes consume).
///
/// # Errors
///
/// [`Decoder::decode`] reports [`CodecError::ProtocolViolation`] when the
/// observed lines cannot have been produced by a conforming encoder (for
/// example, an asserted `INC` line before any reference address has been
/// established). A decoder paired with the matching encoder of this crate
/// never returns an error.
pub trait Decoder {
    /// A short stable identifier matching the paired encoder's
    /// [`Encoder::name`].
    fn name(&self) -> &'static str;

    /// The payload width of the bus this decoder listens to.
    fn width(&self) -> BusWidth;

    /// Decodes one cycle's bus lines back into an address.
    ///
    /// `kind` carries the `SEL` control signal, which is part of the
    /// standard bus interface (it exists with or without encoding).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::ProtocolViolation`] if the lines are
    /// inconsistent with the code's protocol in the current state.
    fn decode(&mut self, word: BusState, kind: crate::AccessKind) -> Result<u64, CodecError>;

    /// Decodes a whole block of bus words, appending one address per word
    /// to `out`. `kinds` carries the per-cycle `SEL` values and must be at
    /// least as long as `words`; extra elements are ignored.
    ///
    /// Cycle-for-cycle equivalent to calling [`Decoder::decode`] once per
    /// word, with state carried across block boundaries. On the first
    /// protocol error decoding stops: `out` keeps the successfully decoded
    /// prefix (so the failing cycle's offset within the block is the
    /// number of addresses this call appended) and the decoder is left in
    /// the state the failing [`Decoder::decode`] call produced.
    ///
    /// # Errors
    ///
    /// Returns the first [`CodecError::ProtocolViolation`] encountered, as
    /// the per-word path would.
    fn decode_block(
        &mut self,
        words: &[BusState],
        kinds: &[crate::AccessKind],
        out: &mut Vec<u64>,
    ) -> Result<(), CodecError> {
        out.reserve(words.len());
        for (&word, &kind) in words.iter().zip(kinds) {
            out.push(self.decode(word, kind)?);
        }
        Ok(())
    }

    /// Returns the decoder to its hardware-reset state.
    fn reset(&mut self);

    /// How many transmitted words this decoder has repaired in-flight
    /// since construction (forward error correction telemetry).
    ///
    /// Only correcting decoders — the
    /// [`EccHardened`][crate::codes::EccHardened] wrapper — report a
    /// nonzero count; the default is 0. Supervisors use the delta across
    /// a decode call to observe faults that correction would otherwise
    /// hide from the error path.
    fn corrected_count(&self) -> u64 {
        0
    }
}

impl<D: Decoder + ?Sized> Decoder for Box<D> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn width(&self) -> BusWidth {
        (**self).width()
    }

    fn decode(&mut self, word: BusState, kind: crate::AccessKind) -> Result<u64, CodecError> {
        (**self).decode(word, kind)
    }

    fn decode_block(
        &mut self,
        words: &[BusState],
        kinds: &[crate::AccessKind],
        out: &mut Vec<u64>,
    ) -> Result<(), CodecError> {
        (**self).decode_block(words, kinds, out)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn corrected_count(&self) -> u64 {
        (**self).corrected_count()
    }
}

/// Construction parameters shared by every code.
///
/// Codes that do not use a stride (binary, bus-invert, Beach) simply ignore
/// it.
///
/// # Examples
///
/// ```
/// use buscode_core::{BusWidth, CodeParams, Stride};
///
/// let params = CodeParams::default(); // 32-bit bus, stride 4 (MIPS)
/// assert_eq!(params.width, BusWidth::MIPS);
/// assert_eq!(params.stride, Stride::WORD);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CodeParams {
    /// The payload bus width.
    pub width: BusWidth,
    /// The in-sequence increment used by sequential codes.
    pub stride: Stride,
}

impl CodeParams {
    /// Creates parameters from raw values.
    ///
    /// # Errors
    ///
    /// Returns an error if the width or stride is invalid (see
    /// [`BusWidth::new`] and [`Stride::new`]).
    pub fn new(width_bits: u32, stride: u64) -> Result<Self, CodecError> {
        let width = BusWidth::new(width_bits)?;
        let stride = Stride::new(stride, width)?;
        Ok(CodeParams { width, stride })
    }
}

/// Every bus code in this crate, as a value.
///
/// `CodeKind` lets experiment harnesses sweep codes uniformly through boxed
/// [`Encoder`] / [`Decoder`] pairs; see [`CodeKind::encoder`].
///
/// The first seven variants are the codes of the DATE'98 paper (Sections 2
/// and 3); the remainder are extensions from the follow-on literature the
/// paper seeds, kept here for ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CodeKind {
    /// Plain binary transmission (the paper's reference encoding).
    Binary,
    /// Binary-reflected Gray code, stride-aware (paper Section 1, refs 4-5).
    Gray,
    /// Bus-invert code of Stan and Burleson (paper Section 2.1).
    BusInvert,
    /// The asymptotic-zero-transition T0 code (paper Section 2.2).
    T0,
    /// The combined T0 + bus-invert code with `INC` and `INV` lines
    /// (paper Section 3.1).
    T0Bi,
    /// T0 gated by the `SEL` signal for multiplexed buses
    /// (paper Section 3.2).
    DualT0,
    /// The single-redundant-line `INCV` combination of dual T0 and
    /// bus-invert (paper Section 3.3) — the paper's best code for muxed buses.
    DualT0Bi,
    /// Extension: T0-XOR decorrelation (irredundant T0 variant).
    T0Xor,
    /// Extension: offset (difference) encoding.
    Offset,
    /// Extension: simplified working-zone encoding.
    WorkingZone,
    /// Extension: simplified self-trained Beach code (paper ref 7).
    Beach,
    /// Extension: adaptive self-organizing-list encoding.
    SelfOrganizing,
}

impl CodeKind {
    /// The codes evaluated in the paper, in table order.
    pub fn paper_codes() -> &'static [CodeKind] {
        &[
            CodeKind::Binary,
            CodeKind::Gray,
            CodeKind::BusInvert,
            CodeKind::T0,
            CodeKind::T0Bi,
            CodeKind::DualT0,
            CodeKind::DualT0Bi,
        ]
    }

    /// The extension codes implemented beyond the paper.
    pub fn extension_codes() -> &'static [CodeKind] {
        &[
            CodeKind::T0Xor,
            CodeKind::Offset,
            CodeKind::WorkingZone,
            CodeKind::Beach,
            CodeKind::SelfOrganizing,
        ]
    }

    /// All codes, paper codes first.
    pub fn all() -> Vec<CodeKind> {
        let mut v = Self::paper_codes().to_vec();
        v.extend_from_slice(Self::extension_codes());
        v
    }

    /// The short name used in reports; matches [`Encoder::name`].
    pub fn name(self) -> &'static str {
        match self {
            CodeKind::Binary => "binary",
            CodeKind::Gray => "gray",
            CodeKind::BusInvert => "bus-invert",
            CodeKind::T0 => "t0",
            CodeKind::T0Bi => "t0-bi",
            CodeKind::DualT0 => "dual-t0",
            CodeKind::DualT0Bi => "dual-t0-bi",
            CodeKind::T0Xor => "t0-xor",
            CodeKind::Offset => "offset",
            CodeKind::WorkingZone => "working-zone",
            CodeKind::Beach => "beach",
            CodeKind::SelfOrganizing => "self-org",
        }
    }

    /// Builds the encoder for this code.
    ///
    /// The Beach code is stream-trained; this factory returns an untrained
    /// (identity-mapped) instance — use
    /// [`BeachCode::train`][crate::codes::BeachCode::train] for a trained one.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the code's constructor.
    pub fn encoder(self, params: CodeParams) -> Result<Box<dyn Encoder>, CodecError> {
        use crate::codes::*;
        Ok(match self {
            CodeKind::Binary => Box::new(BinaryEncoder::new(params.width)),
            CodeKind::Gray => Box::new(GrayEncoder::new(params.width, params.stride)?),
            CodeKind::BusInvert => Box::new(BusInvertEncoder::new(params.width)),
            CodeKind::T0 => Box::new(T0Encoder::new(params.width, params.stride)?),
            CodeKind::T0Bi => Box::new(T0BiEncoder::new(params.width, params.stride)?),
            CodeKind::DualT0 => Box::new(DualT0Encoder::new(params.width, params.stride)?),
            CodeKind::DualT0Bi => Box::new(DualT0BiEncoder::new(params.width, params.stride)?),
            CodeKind::T0Xor => Box::new(T0XorEncoder::new(params.width, params.stride)?),
            CodeKind::Offset => Box::new(OffsetEncoder::new(params.width)),
            CodeKind::WorkingZone => {
                Box::new(WorkingZoneEncoder::new(params.width, params.stride, 4)?)
            }
            CodeKind::Beach => Box::new(BeachCode::identity(params.width).into_encoder()),
            CodeKind::SelfOrganizing => {
                // Scale the geometry to the bus: 8 offset bits and 16 list
                // entries on wide buses, shrinking gracefully on narrow ones.
                let low_bits = 8.min(params.width.bits() - 1);
                let entries = 16.min(params.width.bits() - low_bits);
                Box::new(SelfOrganizingEncoder::new(params.width, low_bits, entries)?)
            }
        })
    }

    /// Builds the decoder paired with [`CodeKind::encoder`].
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the code's constructor.
    pub fn decoder(self, params: CodeParams) -> Result<Box<dyn Decoder>, CodecError> {
        use crate::codes::*;
        Ok(match self {
            CodeKind::Binary => Box::new(BinaryDecoder::new(params.width)),
            CodeKind::Gray => Box::new(GrayDecoder::new(params.width, params.stride)?),
            CodeKind::BusInvert => Box::new(BusInvertDecoder::new(params.width)),
            CodeKind::T0 => Box::new(T0Decoder::new(params.width, params.stride)?),
            CodeKind::T0Bi => Box::new(T0BiDecoder::new(params.width, params.stride)?),
            CodeKind::DualT0 => Box::new(DualT0Decoder::new(params.width, params.stride)?),
            CodeKind::DualT0Bi => Box::new(DualT0BiDecoder::new(params.width, params.stride)?),
            CodeKind::T0Xor => Box::new(T0XorDecoder::new(params.width, params.stride)?),
            CodeKind::Offset => Box::new(OffsetDecoder::new(params.width)),
            CodeKind::WorkingZone => {
                Box::new(WorkingZoneDecoder::new(params.width, params.stride, 4)?)
            }
            CodeKind::Beach => Box::new(BeachCode::identity(params.width).into_decoder()),
            CodeKind::SelfOrganizing => {
                let low_bits = 8.min(params.width.bits() - 1);
                let entries = 16.min(params.width.bits() - low_bits);
                Box::new(SelfOrganizingDecoder::new(params.width, low_bits, entries)?)
            }
        })
    }
}

impl core::fmt::Display for CodeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_codes_lead_all() {
        let all = CodeKind::all();
        assert_eq!(&all[..7], CodeKind::paper_codes());
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn factory_builds_every_code() {
        let params = CodeParams::default();
        for kind in CodeKind::all() {
            let enc = kind.encoder(params).unwrap();
            let dec = kind.decoder(params).unwrap();
            assert_eq!(enc.name(), kind.name());
            assert_eq!(dec.name(), kind.name());
            assert_eq!(enc.width(), params.width);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = CodeKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CodeKind::all().len());
    }

    #[test]
    fn params_validation() {
        assert!(CodeParams::new(32, 4).is_ok());
        assert!(CodeParams::new(0, 4).is_err());
        assert!(CodeParams::new(32, 3).is_err());
    }
}
