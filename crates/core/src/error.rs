//! Error types for the bus-encoding toolkit.

use core::fmt;

/// Errors produced when constructing or operating a bus codec.
///
/// All fallible public functions in this crate return this type. The
/// `Display` representation is a lowercase sentence without trailing
/// punctuation, suitable for wrapping into higher-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The requested bus width is outside the supported `1..=64` range.
    InvalidWidth {
        /// The rejected width, in bus lines.
        bits: u32,
    },
    /// The stride is not a power of two, is zero, or does not fit the bus.
    InvalidStride {
        /// The rejected stride, in address units.
        stride: u64,
        /// The bus width the stride was checked against.
        width: u32,
    },
    /// An address does not fit on the configured bus width.
    AddressOutOfRange {
        /// The rejected address.
        address: u64,
        /// The bus width the address was checked against.
        width: u32,
    },
    /// A decoder received a word that no conforming encoder can emit in the
    /// current state (for example an asserted `INC` line on the very first
    /// cycle, when no reference address exists yet).
    ProtocolViolation {
        /// The name of the code whose protocol was violated.
        code: &'static str,
        /// A short description of the violated rule.
        reason: &'static str,
    },
    /// A decoded stream did not match the original stream during round-trip
    /// verification.
    RoundTripMismatch {
        /// Zero-based cycle index of the first mismatch.
        cycle: u64,
        /// The address fed to the encoder.
        expected: u64,
        /// The address produced by the decoder.
        decoded: u64,
    },
    /// A configuration parameter outside the codec's documented domain.
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// A short description of the constraint that failed, including
        /// the offending value where the caller knows it.
        reason: String,
    },
    /// A [`StateImage`][crate::snapshot::StateImage] could not be restored
    /// into this codec (wrong code, wrong word count, or out-of-domain
    /// state words).
    SnapshotMismatch {
        /// The code the restoring codec implements.
        code: &'static str,
        /// A short description of the mismatch.
        reason: &'static str,
    },
}

/// How a [`CodecError`] observed mid-stream should be recovered from.
///
/// This is the taxonomy the `buscode-pipeline` supervisor drives its
/// policies off: each class maps to one recovery action (retry, forced
/// resync, abort). The classification is conservative — when in doubt an
/// error is promoted to the more severe class, never demoted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecoveryClass {
    /// A single-word fault with the codec state still valid: the failed
    /// word can simply be retried (retransmitted). The hardened wrapper's
    /// aux-parity detection is the canonical example — it reports the
    /// corruption at the cycle it happens and leaves the inner decoder
    /// state untouched.
    Transient,
    /// Encoder and decoder state have (or may have) diverged: retrying the
    /// same word cannot help, and every later relative decode is suspect.
    /// Recovery requires a forced resync — resetting both halves so the
    /// next word is a self-contained plain transmission.
    Desync,
    /// A construction or configuration error: no amount of retrying or
    /// resyncing produces a working codec. The stream must abort.
    Fatal,
}

impl fmt::Display for RecoveryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryClass::Transient => "transient",
            RecoveryClass::Desync => "desync",
            RecoveryClass::Fatal => "fatal",
        })
    }
}

impl CodecError {
    /// Classifies this error for stream-level recovery.
    ///
    /// - [`Transient`][RecoveryClass::Transient]: the hardened wrapper's
    ///   parity detection and the ECC wrapper's double-error detection
    ///   (`ProtocolViolation` with code `"hardened"` or `"ecc"`, which by
    ///   construction leave the inner decoder untouched) and
    ///   out-of-range input addresses;
    /// - [`Desync`][RecoveryClass::Desync]: every other protocol
    ///   violation and round-trip mismatches — the decoder's references
    ///   can no longer be trusted;
    /// - [`Fatal`][RecoveryClass::Fatal]: parameter, width, stride, and
    ///   snapshot-restore errors.
    pub fn recovery_class(&self) -> RecoveryClass {
        match self {
            CodecError::ProtocolViolation { code, .. } if *code == "hardened" || *code == "ecc" => {
                RecoveryClass::Transient
            }
            CodecError::AddressOutOfRange { .. } => RecoveryClass::Transient,
            CodecError::ProtocolViolation { .. } | CodecError::RoundTripMismatch { .. } => {
                RecoveryClass::Desync
            }
            CodecError::InvalidWidth { .. }
            | CodecError::InvalidStride { .. }
            | CodecError::InvalidParameter { .. }
            | CodecError::SnapshotMismatch { .. } => RecoveryClass::Fatal,
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidWidth { bits } => {
                write!(f, "bus width {bits} is outside the supported range 1..=64")
            }
            CodecError::InvalidStride { stride, width } => write!(
                f,
                "stride {stride} is not a nonzero power of two fitting a {width}-bit bus"
            ),
            CodecError::AddressOutOfRange { address, width } => {
                write!(f, "address {address:#x} does not fit on a {width}-bit bus")
            }
            CodecError::ProtocolViolation { code, reason } => {
                write!(f, "{code} protocol violation: {reason}")
            }
            CodecError::RoundTripMismatch {
                cycle,
                expected,
                decoded,
            } => write!(
                f,
                "round-trip mismatch at cycle {cycle}: expected {expected:#x}, decoded {decoded:#x}"
            ),
            CodecError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            CodecError::SnapshotMismatch { code, reason } => {
                write!(f, "{code} snapshot mismatch: {reason}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let cases: Vec<CodecError> = vec![
            CodecError::InvalidWidth { bits: 65 },
            CodecError::InvalidStride {
                stride: 3,
                width: 32,
            },
            CodecError::AddressOutOfRange {
                address: 0x1_0000_0000,
                width: 32,
            },
            CodecError::ProtocolViolation {
                code: "t0",
                reason: "inc asserted on first cycle",
            },
            CodecError::RoundTripMismatch {
                cycle: 7,
                expected: 1,
                decoded: 2,
            },
            CodecError::InvalidParameter {
                name: "zones",
                reason: "must be nonzero".to_string(),
            },
            CodecError::SnapshotMismatch {
                code: "t0",
                reason: "expected 4 state words",
            },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodecError>();
    }

    #[test]
    fn recovery_classes_cover_the_taxonomy() {
        // Hardened parity detection is retryable: the wrapper documents
        // that the inner decoder state is untouched on a parity error.
        assert_eq!(
            CodecError::ProtocolViolation {
                code: "hardened",
                reason: "aux parity mismatch",
            }
            .recovery_class(),
            RecoveryClass::Transient
        );
        assert_eq!(
            CodecError::AddressOutOfRange {
                address: 0x1_0000_0000,
                width: 32,
            }
            .recovery_class(),
            RecoveryClass::Transient
        );
        // Any inner-code protocol violation means the decoder state is
        // suspect.
        assert_eq!(
            CodecError::ProtocolViolation {
                code: "t0",
                reason: "inc asserted on first cycle",
            }
            .recovery_class(),
            RecoveryClass::Desync
        );
        assert_eq!(
            CodecError::RoundTripMismatch {
                cycle: 3,
                expected: 1,
                decoded: 2,
            }
            .recovery_class(),
            RecoveryClass::Desync
        );
        for fatal in [
            CodecError::InvalidWidth { bits: 65 },
            CodecError::InvalidStride {
                stride: 3,
                width: 32,
            },
            CodecError::InvalidParameter {
                name: "refresh",
                reason: "must be nonzero".to_string(),
            },
            CodecError::SnapshotMismatch {
                code: "t0",
                reason: "wrong code",
            },
        ] {
            assert_eq!(fatal.recovery_class(), RecoveryClass::Fatal, "{fatal}");
        }
    }

    /// Exhaustive classification coverage: every variant is matched
    /// explicitly, with no wildcard arm, against the class
    /// `recovery_class` assigns. Adding a `CodecError` variant without
    /// deciding its recovery class breaks this match at compile time —
    /// the taxonomy can never silently lag the error type.
    #[test]
    fn every_variant_has_a_deliberate_recovery_class() {
        let cases: Vec<CodecError> = vec![
            CodecError::InvalidWidth { bits: 65 },
            CodecError::InvalidStride {
                stride: 3,
                width: 32,
            },
            CodecError::AddressOutOfRange {
                address: 0x10,
                width: 4,
            },
            CodecError::ProtocolViolation {
                code: "hardened",
                reason: "aux parity mismatch",
            },
            CodecError::ProtocolViolation {
                code: "ecc",
                reason: "double-line error detected",
            },
            CodecError::ProtocolViolation {
                code: "t0",
                reason: "inc asserted on first cycle",
            },
            CodecError::RoundTripMismatch {
                cycle: 3,
                expected: 1,
                decoded: 2,
            },
            CodecError::InvalidParameter {
                name: "refresh",
                reason: "must be nonzero".to_string(),
            },
            CodecError::SnapshotMismatch {
                code: "t0",
                reason: "wrong code",
            },
        ];
        for err in cases {
            let expected = match &err {
                CodecError::InvalidWidth { .. } => RecoveryClass::Fatal,
                CodecError::InvalidStride { .. } => RecoveryClass::Fatal,
                CodecError::AddressOutOfRange { .. } => RecoveryClass::Transient,
                CodecError::ProtocolViolation { code, .. } => {
                    if *code == "hardened" || *code == "ecc" {
                        RecoveryClass::Transient
                    } else {
                        RecoveryClass::Desync
                    }
                }
                CodecError::RoundTripMismatch { .. } => RecoveryClass::Desync,
                CodecError::InvalidParameter { .. } => RecoveryClass::Fatal,
                CodecError::SnapshotMismatch { .. } => RecoveryClass::Fatal,
            };
            assert_eq!(err.recovery_class(), expected, "{err}");
        }
    }

    #[test]
    fn recovery_class_orders_by_severity() {
        assert!(RecoveryClass::Transient < RecoveryClass::Desync);
        assert!(RecoveryClass::Desync < RecoveryClass::Fatal);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CodecError::InvalidWidth { bits: 0 },
            CodecError::InvalidWidth { bits: 0 }
        );
        assert_ne!(
            CodecError::InvalidWidth { bits: 0 },
            CodecError::InvalidWidth { bits: 65 }
        );
    }
}
