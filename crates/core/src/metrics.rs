//! Transition counting and round-trip evaluation of bus codes.
//!
//! The paper's figure of merit is the number of bus-line transitions needed
//! to transmit an address stream — a direct proxy for I/O power since
//! `P = 0.5 * C * Vdd^2 * f * E(transitions)` for a line of capacitance
//! `C`. These helpers run an encoder over a stream, count transitions over
//! *all* lines (payload plus redundant), and optionally verify the paired
//! decoder reproduces the stream exactly.

use crate::bus::{Access, BusState};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// Transition statistics of one encoder over one stream.
///
/// Counting starts from the hardware-reset bus state (all lines low), the
/// same state encoders initialize their internal reference to, so the
/// per-cycle bound invariants of bounded codes (for example bus-invert)
/// hold exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransitionStats {
    /// Number of bus cycles (stream length).
    pub cycles: u64,
    /// Transitions observed on the payload lines.
    pub payload_transitions: u64,
    /// Transitions observed on the redundant lines.
    pub aux_transitions: u64,
}

impl TransitionStats {
    /// Total transitions over all lines.
    #[inline]
    #[must_use]
    pub fn total(&self) -> u64 {
        self.payload_transitions + self.aux_transitions
    }

    /// Average transitions per clock cycle (the paper's Table 1 metric).
    ///
    /// Returns 0 for an empty stream.
    #[must_use]
    pub fn per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total() as f64 / self.cycles as f64
        }
    }

    /// Percentage of transitions saved relative to `reference`
    /// (the paper's "Savings" columns, reference = binary).
    ///
    /// Returns 0 when the reference saw no transitions.
    #[must_use]
    pub fn savings_vs(&self, reference: &TransitionStats) -> f64 {
        if reference.total() == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.total() as f64 / reference.total() as f64)
        }
    }

    fn record(&mut self, word: BusState, prev: BusState) {
        self.cycles += 1;
        self.payload_transitions += u64::from((word.payload ^ prev.payload).count_ones());
        self.aux_transitions += u64::from((word.aux ^ prev.aux).count_ones());
    }

    /// Accumulates the transitions of a whole block of bus words in one
    /// packed pass: each cycle is a u64 XOR against the previous word plus
    /// a `count_ones`, with no per-word dispatch.
    ///
    /// `prev` is the last word before the block (the hardware-reset state
    /// for the first block) and is left at the block's final word, so
    /// consecutive blocks chain exactly like the per-word path.
    pub fn accumulate_block(&mut self, words: &[BusState], prev: &mut BusState) {
        let mut last = *prev;
        let mut payload = 0u64;
        let mut aux = 0u64;
        for &word in words {
            payload += u64::from((word.payload ^ last.payload).count_ones());
            aux += u64::from((word.aux ^ last.aux).count_ones());
            last = word;
        }
        self.cycles += words.len() as u64;
        self.payload_transitions += payload;
        self.aux_transitions += aux;
        *prev = last;
    }
}

impl core::fmt::Display for TransitionStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} transitions over {} cycles ({:.3}/cycle)",
            self.total(),
            self.cycles,
            self.per_cycle()
        )
    }
}

/// Runs `encoder` over `stream` and counts line transitions.
///
/// The encoder is **not** reset first; callers sweeping several streams
/// through one encoder should call [`Encoder::reset`] between streams.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::T0Encoder;
/// use buscode_core::metrics::count_transitions;
/// use buscode_core::{Access, BusWidth, Stride};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = T0Encoder::new(BusWidth::MIPS, Stride::WORD)?;
/// let run = (0..100u64).map(|i| Access::instruction(0x100 + 4 * i));
/// let stats = count_transitions(&mut enc, run);
/// assert!(stats.per_cycle() < 0.2); // near-zero on a consecutive run
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn count_transitions<I>(encoder: &mut dyn Encoder, stream: I) -> TransitionStats
where
    I: IntoIterator<Item = Access>,
{
    // Chunk the stream through the block path: one virtual dispatch and
    // one packed encode-XOR-popcount kernel per block instead of per
    // cycle (see [`Encoder::count_block`]).
    let mut stats = TransitionStats::default();
    let mut prev = BusState::reset();
    let mut accesses: Vec<Access> = Vec::with_capacity(METRICS_BLOCK);
    let mut stream = stream.into_iter();
    loop {
        accesses.clear();
        accesses.extend(stream.by_ref().take(METRICS_BLOCK));
        if accesses.is_empty() {
            return stats;
        }
        encoder.count_block(&accesses, &mut prev, &mut stats);
    }
}

/// Block size used when chunking iterator streams through the block API:
/// large enough to amortize dispatch, small enough that the access and
/// bus-word buffers stay cache-resident.
const METRICS_BLOCK: usize = 8 * 1024;

/// Slice fast path of [`count_transitions`]: the accesses are already in
/// memory, so sub-slices feed [`Encoder::count_block`] directly with no
/// staging buffer. This is the fastest way to count transitions of a
/// buffered stream — for the codes with packed `count_block` kernels
/// (binary, Gray) it runs at the kernel's full rate.
///
/// Semantically identical to `count_transitions(encoder,
/// accesses.iter().copied())`.
#[must_use]
pub fn count_transitions_slice(encoder: &mut dyn Encoder, accesses: &[Access]) -> TransitionStats {
    let mut stats = TransitionStats::default();
    let mut prev = BusState::reset();
    // Still chunked, so codes relying on the default buffering
    // `count_block` keep their scratch allocation bounded.
    for block in accesses.chunks(METRICS_BLOCK) {
        encoder.count_block(block, &mut prev, &mut stats);
    }
    stats
}

/// The original cycle-at-a-time transition counter: one virtual
/// [`Encoder::encode`] call and one stats update per bus cycle.
///
/// Semantically identical to [`count_transitions`]; kept as the reference
/// for equivalence tests and as the baseline the engine throughput
/// harness measures the block kernels against.
#[doc(hidden)]
pub fn count_transitions_per_word<I>(encoder: &mut dyn Encoder, stream: I) -> TransitionStats
where
    I: IntoIterator<Item = Access>,
{
    let mut stats = TransitionStats::default();
    let mut prev = BusState::reset();
    for access in stream {
        let word = encoder.encode(access);
        stats.record(word, prev);
        prev = word;
    }
    stats
}

/// Runs `encoder` and `decoder` back to back over `stream`, counting
/// transitions and verifying the decoded address matches at every cycle.
///
/// # Errors
///
/// Returns [`CodecError::RoundTripMismatch`] at the first differing cycle,
/// or any protocol error the decoder reports.
pub fn verify_round_trip<I>(
    encoder: &mut dyn Encoder,
    decoder: &mut dyn Decoder,
    stream: I,
) -> Result<TransitionStats, CodecError>
where
    I: IntoIterator<Item = Access>,
{
    let width_mask = encoder.width().mask();
    let mut stats = TransitionStats::default();
    let mut prev = BusState::reset();
    let mut accesses: Vec<Access> = Vec::with_capacity(METRICS_BLOCK);
    let mut kinds = Vec::with_capacity(METRICS_BLOCK);
    let mut words: Vec<BusState> = Vec::with_capacity(METRICS_BLOCK);
    let mut decoded: Vec<u64> = Vec::with_capacity(METRICS_BLOCK);
    let mut stream = stream.into_iter();
    let mut base = 0u64;
    loop {
        accesses.clear();
        accesses.extend(stream.by_ref().take(METRICS_BLOCK));
        if accesses.is_empty() {
            return Ok(stats);
        }
        kinds.clear();
        kinds.extend(accesses.iter().map(|a| a.kind));
        words.clear();
        encoder.encode_block(&accesses, &mut words);
        decoded.clear();
        let decode_result = decoder.decode_block(&words, &kinds, &mut decoded);
        // Check the decoded prefix first: a mismatch earlier in the block
        // outranks a protocol error later in it, exactly as the per-word
        // path would report them.
        for (i, (&got, access)) in decoded.iter().zip(&accesses).enumerate() {
            let expected = access.address & width_mask;
            if got != expected {
                return Err(CodecError::RoundTripMismatch {
                    cycle: base + i as u64,
                    expected,
                    decoded: got,
                });
            }
        }
        decode_result?;
        stats.accumulate_block(&words, &mut prev);
        base += accesses.len() as u64;
    }
}

/// Per-line switching activity of an encoder over a stream.
///
/// Bus lines are physically different wires: the low-order lines of a
/// sequential stream toggle constantly while the high-order lines are
/// almost static. Per-line activities drive non-uniform capacitance
/// models (outer pad rows, longer routes) and expose *where* a code's
/// savings land.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LineActivity {
    /// Transition count per payload line, LSB-first.
    pub payload: Vec<u64>,
    /// Transition count per redundant line, LSB-first.
    pub aux: Vec<u64>,
    /// Number of cycles observed.
    pub cycles: u64,
}

impl LineActivity {
    /// Creates a zeroed activity record shaped for `encoder`: one payload
    /// counter per bus line and one aux counter per redundant line.
    #[must_use]
    pub fn for_encoder(encoder: &dyn Encoder) -> LineActivity {
        LineActivity {
            payload: vec![0; encoder.width().bits() as usize],
            aux: vec![0; encoder.aux_line_count() as usize],
            cycles: 0,
        }
    }

    /// Accumulates the per-line transitions of a whole block of bus words:
    /// each cycle XORs against the previous word and walks the set bits —
    /// most cycles flip a handful of lines on a 32-line bus, so the sparse
    /// walk beats scanning every line every cycle.
    ///
    /// `prev` is the last word before the block ([`BusState::reset`] at
    /// stream start) and is left at the block's final word. Flips on lines
    /// beyond the `payload`/`aux` vector lengths are ignored.
    pub fn accumulate_block(&mut self, words: &[BusState], prev: &mut BusState) {
        let mut last = *prev;
        for &word in words {
            let mut payload_flips = word.payload ^ last.payload;
            while payload_flips != 0 {
                let i = payload_flips.trailing_zeros() as usize;
                if let Some(slot) = self.payload.get_mut(i) {
                    *slot += 1;
                }
                payload_flips &= payload_flips - 1;
            }
            let mut aux_flips = word.aux ^ last.aux;
            while aux_flips != 0 {
                let i = aux_flips.trailing_zeros() as usize;
                if let Some(slot) = self.aux.get_mut(i) {
                    *slot += 1;
                }
                aux_flips &= aux_flips - 1;
            }
            last = word;
        }
        self.cycles += words.len() as u64;
        *prev = last;
    }

    /// Per-payload-line activity in transitions per cycle.
    #[must_use]
    pub fn payload_activity(&self) -> Vec<f64> {
        self.payload
            .iter()
            .map(|&t| {
                if self.cycles == 0 {
                    0.0
                } else {
                    t as f64 / self.cycles as f64
                }
            })
            .collect()
    }

    /// Total transitions over all lines.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.payload.iter().chain(&self.aux).sum()
    }
}

/// Measures per-line transition counts of `encoder` over `stream`.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::BinaryEncoder;
/// use buscode_core::metrics::line_activity;
/// use buscode_core::{Access, BusWidth};
///
/// let mut enc = BinaryEncoder::new(BusWidth::MIPS);
/// let stream = (0..256u64).map(Access::instruction);
/// let lines = line_activity(&mut enc, stream);
/// let act = lines.payload_activity();
/// assert!(act[0] > act[7]); // low-order lines toggle more while counting
/// ```
#[must_use]
pub fn line_activity<I>(encoder: &mut dyn Encoder, stream: I) -> LineActivity
where
    I: IntoIterator<Item = Access>,
{
    let mut activity = LineActivity::for_encoder(encoder);
    let mut prev = BusState::reset();
    let mut accesses: Vec<Access> = Vec::with_capacity(METRICS_BLOCK);
    let mut stream = stream.into_iter();
    loop {
        accesses.clear();
        accesses.extend(stream.by_ref().take(METRICS_BLOCK));
        if accesses.is_empty() {
            return activity;
        }
        encoder.activity_block(&accesses, &mut prev, &mut activity);
    }
}

/// Slice fast path of [`line_activity`]: sub-slices feed
/// [`Encoder::activity_block`] directly with no staging buffer — for the
/// codes with packed positional kernels (binary, Gray) this computes the
/// full per-line profile at nearly the total-count kernel's rate.
///
/// Semantically identical to `line_activity(encoder,
/// accesses.iter().copied())`.
#[must_use]
pub fn line_activity_slice(encoder: &mut dyn Encoder, accesses: &[Access]) -> LineActivity {
    let mut activity = LineActivity::for_encoder(encoder);
    let mut prev = BusState::reset();
    for block in accesses.chunks(METRICS_BLOCK) {
        encoder.activity_block(block, &mut prev, &mut activity);
    }
    activity
}

/// The original cycle-at-a-time line-activity profiler: one virtual
/// [`Encoder::encode`] call per bus cycle, then a dense scan of every
/// line's flip bit.
///
/// Semantically identical to [`line_activity`]; kept as the reference for
/// equivalence tests and as the baseline the engine throughput harness
/// measures the positional block kernels against.
#[doc(hidden)]
pub fn line_activity_per_word<I>(encoder: &mut dyn Encoder, stream: I) -> LineActivity
where
    I: IntoIterator<Item = Access>,
{
    let mut activity = LineActivity::for_encoder(encoder);
    let mut prev = BusState::reset();
    for access in stream {
        let word = encoder.encode(access);
        let payload_flips = word.payload ^ prev.payload;
        let aux_flips = word.aux ^ prev.aux;
        for (i, slot) in activity.payload.iter_mut().enumerate() {
            *slot += (payload_flips >> i) & 1;
        }
        for (i, slot) in activity.aux.iter_mut().enumerate() {
            *slot += (aux_flips >> i) & 1;
        }
        activity.cycles += 1;
        prev = word;
    }
    activity
}

/// Convenience: the binary (reference) transition count of a stream.
///
/// Every "Savings" column of the paper's tables is computed against this.
#[must_use]
pub fn binary_reference<I>(width: crate::BusWidth, stream: I) -> TransitionStats
where
    I: IntoIterator<Item = Access>,
{
    let mut enc = crate::codes::BinaryEncoder::new(width);
    count_transitions(&mut enc, stream)
}

/// One row of a paper-style comparison: a code's transitions and its
/// savings against binary on the same stream.
#[derive(Clone, Debug, PartialEq)]
pub struct CodeReport {
    /// The code's short name.
    pub code: &'static str,
    /// The code's transition statistics.
    pub stats: TransitionStats,
    /// Percent savings versus binary on the same stream.
    pub savings_percent: f64,
}

/// Evaluates several codes on one stream against the binary reference.
///
/// Encoders are reset before evaluation. The stream is buffered internally
/// so it can be replayed per code.
#[must_use]
pub fn compare_codes(encoders: &mut [Box<dyn Encoder>], stream: &[Access]) -> Vec<CodeReport> {
    let reference = if let Some(first) = encoders.first() {
        binary_reference(first.width(), stream.iter().copied())
    } else {
        TransitionStats::default()
    };
    encoders
        .iter_mut()
        .map(|enc| {
            enc.reset();
            let stats = count_transitions(enc.as_mut(), stream.iter().copied());
            CodeReport {
                code: enc.name(),
                stats,
                savings_percent: stats.savings_vs(&reference),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::{BinaryEncoder, T0Decoder, T0Encoder};
    use crate::{BusWidth, Stride};

    fn seq_stream(n: u64) -> Vec<Access> {
        (0..n)
            .map(|i| Access::instruction(0x1000 + 4 * i))
            .collect()
    }

    #[test]
    fn empty_stream_yields_zero_stats() {
        let mut enc = BinaryEncoder::new(BusWidth::MIPS);
        let stats = count_transitions(&mut enc, std::iter::empty());
        assert_eq!(stats, TransitionStats::default());
        assert_eq!(stats.per_cycle(), 0.0);
    }

    #[test]
    fn counting_includes_first_word_from_reset() {
        let mut enc = BinaryEncoder::new(BusWidth::MIPS);
        let stats = count_transitions(&mut enc, [Access::instruction(0b111)]);
        assert_eq!(stats.total(), 3);
        assert_eq!(stats.cycles, 1);
    }

    #[test]
    fn aux_and_payload_counted_separately() {
        let mut enc = T0Encoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let stats = count_transitions(&mut enc, seq_stream(100));
        // After the first word, the whole run is frozen: only the initial
        // payload drive and one INC assertion.
        assert_eq!(stats.aux_transitions, 1);
        assert_eq!(stats.payload_transitions, 0x1000u64.count_ones() as u64);
    }

    #[test]
    fn round_trip_passes_for_matched_pair() {
        let mut enc = T0Encoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let mut dec = T0Decoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let stats = verify_round_trip(&mut enc, &mut dec, seq_stream(500)).unwrap();
        assert_eq!(stats.cycles, 500);
    }

    #[test]
    fn round_trip_detects_mismatched_stride() {
        let w = BusWidth::MIPS;
        let mut enc = T0Encoder::new(w, Stride::WORD).unwrap();
        let mut dec = T0Decoder::new(w, Stride::new(8, w).unwrap()).unwrap();
        let err = verify_round_trip(&mut enc, &mut dec, seq_stream(10)).unwrap_err();
        assert!(matches!(err, CodecError::RoundTripMismatch { .. }));
    }

    #[test]
    fn savings_formula() {
        let reference = TransitionStats {
            cycles: 10,
            payload_transitions: 100,
            aux_transitions: 0,
        };
        let coded = TransitionStats {
            cycles: 10,
            payload_transitions: 60,
            aux_transitions: 5,
        };
        assert!((coded.savings_vs(&reference) - 35.0).abs() < 1e-9);
        assert_eq!(coded.savings_vs(&TransitionStats::default()), 0.0);
    }

    #[test]
    fn compare_codes_reports_against_binary() {
        use crate::{CodeKind, CodeParams};
        let params = CodeParams::default();
        let mut encoders: Vec<Box<dyn Encoder>> = vec![
            CodeKind::Binary.encoder(params).unwrap(),
            CodeKind::T0.encoder(params).unwrap(),
        ];
        let stream = seq_stream(1000);
        let reports = compare_codes(&mut encoders, &stream);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].savings_percent.abs() < 1e-9); // binary vs itself
        assert!(reports[1].savings_percent > 90.0); // T0 on a pure run
    }

    #[test]
    fn line_activity_totals_match_stream_stats() {
        let mut enc = T0Encoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let lines = line_activity(&mut enc, seq_stream(500));
        enc.reset();
        let stats = count_transitions(&mut enc, seq_stream(500));
        assert_eq!(lines.total(), stats.total());
        assert_eq!(lines.cycles, stats.cycles);
        assert_eq!(lines.aux.len(), 1);
    }

    #[test]
    fn line_activity_shape_on_counting_stream() {
        let mut enc = BinaryEncoder::new(BusWidth::new(8).unwrap());
        let stream: Vec<Access> = (0..256u64).map(Access::data).collect();
        let lines = line_activity(&mut enc, stream);
        // A counter from 0 to 255: line i toggles floor(255 / 2^i) times
        // (the first word leaves the reset state without any flips).
        for i in 0..8usize {
            assert_eq!(lines.payload[i], 255 >> i, "line {i}");
        }
    }

    #[test]
    fn line_activity_empty_stream() {
        let mut enc = BinaryEncoder::new(BusWidth::MIPS);
        let lines = line_activity(&mut enc, std::iter::empty());
        assert_eq!(lines.total(), 0);
        assert!(lines.payload_activity().iter().all(|&a| a == 0.0));
    }

    #[test]
    fn display_is_informative() {
        let stats = TransitionStats {
            cycles: 2,
            payload_transitions: 3,
            aux_transitions: 1,
        };
        let s = stats.to_string();
        assert!(s.contains('4') && s.contains('2'));
    }
}
