//! # buscode-core
//!
//! Low-power address-bus encoding schemes, reproducing
//! *Benini, De Micheli, Macii, Sciuto, Silvano — "Address Bus Encoding
//! Techniques for System-Level Power Optimization", DATE 1998*.
//!
//! System-level buses drive capacitances up to three orders of magnitude
//! larger than internal nodes, so the number of bus-line *transitions* per
//! clock dominates a chip's I/O power. This crate implements every code the
//! paper discusses — the binary reference, the Gray code, Stan & Burleson's
//! bus-invert, the authors' T0 code, and the paper's three novel mixed
//! codes (T0_BI, dual T0, dual T0_BI) — plus four extension codes from the
//! follow-on literature, behind a uniform [`Encoder`] / [`Decoder`]
//! interface, together with transition metrics and the paper's analytical
//! models.
//!
//! ## Quick start
//!
//! ```
//! use buscode_core::codes::{DualT0BiDecoder, DualT0BiEncoder};
//! use buscode_core::metrics::{binary_reference, verify_round_trip};
//! use buscode_core::{Access, BusWidth, Stride};
//!
//! # fn main() -> Result<(), buscode_core::CodecError> {
//! // A toy multiplexed stream: a loop of instruction fetches with an
//! // interleaved data access.
//! let mut stream = Vec::new();
//! for i in 0..64u64 {
//!     stream.push(Access::instruction(0x400 + 4 * i));
//!     if i % 4 == 3 {
//!         stream.push(Access::data(0x1_0000 + 16 * i));
//!     }
//! }
//!
//! let width = BusWidth::MIPS;
//! let mut enc = DualT0BiEncoder::new(width, Stride::WORD)?;
//! let mut dec = DualT0BiDecoder::new(width, Stride::WORD)?;
//! let coded = verify_round_trip(&mut enc, &mut dec, stream.iter().copied())?;
//! let binary = binary_reference(width, stream.iter().copied());
//! assert!(coded.total() < binary.total()); // fewer transitions than binary
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! - [`codes`] — the encoding schemes themselves;
//! - [`metrics`] — transition counting, savings, round-trip verification;
//! - [`analysis`] — the closed-form models of the paper's Table 1;
//! - the crate root — bus vocabulary types ([`BusWidth`], [`Stride`],
//!   [`Access`], [`BusState`]) and the [`Encoder`] / [`Decoder`] traits.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod analysis;
mod bus;
pub mod check;
pub mod codes;
mod error;
mod kernels;
pub mod metrics;
pub mod rng;
pub mod snapshot;
pub mod stream;
pub mod sym;
mod tier;
mod traits;

pub use bus::{hamming, Access, AccessKind, BusState, BusWidth, Stride};
pub use error::{CodecError, RecoveryClass};
pub use metrics::TransitionStats;
pub use snapshot::{Snapshot, SnapshotDecoder, SnapshotEncoder, StateImage};
pub use stream::{DecoderExt, EncoderExt};
pub use tier::Tier;
pub use traits::{CodeKind, CodeParams, Decoder, Encoder};
