//! Packed popcount kernels behind the fused [`Encoder::count_block`]
//! fast paths.
//!
//! [`Encoder::count_block`]: crate::Encoder::count_block
//!
//! Transition counting reduces to "popcount the XOR of consecutive bus
//! words". Two structural facts let the hot codes go far beyond a
//! word-at-a-time loop:
//!
//! 1. **Packing.** For buses up to 32 lines wide, the XOR diff of two
//!    consecutive words fits in 32 bits, so two diffs pack into one `u64`
//!    and a single `count_ones` covers two bus cycles.
//! 2. **Carry-save accumulation (Harley–Seal).** A tree of carry-save
//!    adders compresses 32 packed words into running `ones`/`twos`/
//!    `fours`/`eights`/`sixteens` bit-planes plus one weight-32 output,
//!    so only one `count_ones` is paid per 32 packed words (64 bus
//!    cycles); the bit-planes are popcounted once at the end with their
//!    weights.
//!
//! On the baseline `x86-64` target (no native `popcnt`), where
//! `count_ones` compiles to a ~12-op bit-twiddling sequence, this is
//! worth ~4-5x over the per-word path. Everything here is safe scalar
//! Rust; no SIMD intrinsics or feature detection.
//!
//! Two measured codegen lessons shaped the implementation:
//!
//! * Packed diffs are fed **straight into the carry-save tree** as they
//!   are formed. An earlier version staged them through a `[u64; 32]`
//!   buffer; the store/reload round-trip cost ~2 extra ops per pair.
//!   Within a 64-access block the pairs are addressed with *constant*
//!   indices (via `pk!`), which LLVM proves in-bounds against the
//!   `chunks_exact(64)` slice — run-time index arithmetic here left
//!   bounds checks in the hot loop and cost ~25% of the kernel's
//!   throughput.
//! * The mask/Gray variants are specialized with const generics so the
//!   plain-binary path does not pay the 3-op Gray transform just to XOR
//!   with a zero mask at run time.

use crate::bus::Access;

/// One carry-save adder step: compresses three addends of equal weight
/// into a same-weight sum and a double-weight carry.
#[inline(always)]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let u = a ^ b;
    (u ^ c, (a & b) | (u & c))
}

/// The carry-save bit-planes threaded across 64-access blocks.
///
/// Because a carry-save adder works each bit lane independently, bit `i`
/// of `ones`/`twos`/`fours`/`eights`/`sixteens` is the partial count (in
/// carry-save binary, mod 32) of set diff bits *at position `i`* — the
/// planes are positional, which is what lets one kernel serve both the
/// total count and the per-line activity profile.
#[derive(Default)]
struct Planes {
    ones: u64,
    twos: u64,
    fours: u64,
    eights: u64,
    sixteens: u64,
}

impl Planes {
    /// Folds the bit-planes into a total transition count.
    #[inline(always)]
    fn total(&self) -> u64 {
        16 * u64::from(self.sixteens.count_ones())
            + 8 * u64::from(self.eights.count_ones())
            + 4 * u64::from(self.fours.count_ones())
            + 2 * u64::from(self.twos.count_ones())
            + u64::from(self.ones.count_ones())
    }

    /// Folds the bit-planes into per-position counts. Positions `i` and
    /// `i + 32` of a packed word carry the same bus line, so both halves
    /// fold onto line `i & 31`.
    fn fold_lines(&self, counts: &mut [u64; 32]) {
        for i in 0..64 {
            let u = (self.ones >> i & 1)
                + 2 * (self.twos >> i & 1)
                + 4 * (self.fours >> i & 1)
                + 8 * (self.eights >> i & 1)
                + 16 * (self.sixteens >> i & 1);
            counts[i & 31] += u;
        }
    }
}

/// Consumer of the weight-32 carry words the tree emits once per
/// 64-access block — the only point where positional information would
/// otherwise be lost.
trait Sink32 {
    fn push32(&mut self, s32: u64);
}

/// Total-count sink: a weight-32 carry contributes 32 transitions per
/// set bit, position-blind.
#[derive(Default)]
struct TotalSink {
    count32: u64,
}

impl Sink32 for TotalSink {
    #[inline(always)]
    fn push32(&mut self, s32: u64) {
        self.count32 += u64::from(s32.count_ones());
    }
}

/// Positional sink: accumulates weight-32 carry words into a second
/// level of carry-save planes (each unit worth 32 transitions) and
/// harvests them into per-line counters before they can overflow —
/// every 31 pushes, i.e. every 1984 accesses. Amortized cost is well
/// under one op per access.
#[derive(Default)]
struct PosSink {
    planes: Planes,
    pushed: u32,
    /// Per-position units of weight 32, folded to `i & 31` lines.
    units: [u64; 32],
}

impl PosSink {
    fn harvest(&mut self) {
        self.planes.fold_lines(&mut self.units);
        self.planes = Planes::default();
        self.pushed = 0;
    }
}

impl Sink32 for PosSink {
    #[inline(always)]
    fn push32(&mut self, s32: u64) {
        if self.pushed == 31 {
            self.harvest();
        }
        // Ripple-add one word into the five planes; with at most 31
        // units per position the carry dies inside `sixteens`.
        let mut carry = s32;
        let c = self.planes.ones & carry;
        self.planes.ones ^= carry;
        carry = c;
        let c = self.planes.twos & carry;
        self.planes.twos ^= carry;
        carry = c;
        let c = self.planes.fours & carry;
        self.planes.fours ^= carry;
        carry = c;
        let c = self.planes.eights & carry;
        self.planes.eights ^= carry;
        carry = c;
        let c = self.planes.sixteens & carry;
        self.planes.sixteens ^= carry;
        debug_assert_eq!(c, 0);
        self.pushed += 1;
    }
}

/// Packs and accumulates one 64-access block. `blk` must be exactly 64
/// accesses (a `chunks_exact(64)` slice). Returns the raw (unmasked)
/// address of the last access, to seed the next block.
///
/// `FULL` marks a full 32-bit bus mask, where `<< 32` self-masks the
/// high diff; `GRAY` enables the XOR-shift Gray transform on packed
/// diffs.
#[inline(always)]
fn block64<const FULL: bool, const GRAY: bool, S: Sink32>(
    blk: &[Access],
    mask: u64,
    gxm2: u64,
    prev_in: u64,
    pl: &mut Planes,
    sink: &mut S,
) -> u64 {
    let mut prev = prev_in;
    let mut ones = pl.ones;
    let mut twos = pl.twos;
    let mut fours = pl.fours;
    let mut eights = pl.eights;
    // Packs diff pair `j` (accesses 2j and 2j+1). `$j` is always a
    // constant expression, so the indexing folds to check-free loads.
    macro_rules! pk {
        ($j:expr) => {{
            let r0 = blk[2 * ($j)].address;
            let r1 = blk[2 * ($j) + 1].address;
            let hi = if FULL {
                (r1 ^ r0) << 32
            } else {
                ((r1 ^ r0) & mask) << 32
            };
            let mut d = ((r0 ^ prev) & mask) | hi;
            if GRAY {
                d ^= (d >> 1) & gxm2;
            }
            prev = r1;
            d
        }};
    }
    // Compresses packed pairs `$b .. $b + 16` into the running planes
    // and one weight-16 carry word.
    macro_rules! tree16 {
        ($b:expr) => {{
            let (o, t1) = csa(ones, pk!($b), pk!($b + 1));
            let (o, t2) = csa(o, pk!($b + 2), pk!($b + 3));
            let (t2s, f1) = csa(twos, t1, t2);
            let (o, t1) = csa(o, pk!($b + 4), pk!($b + 5));
            let (o, t2) = csa(o, pk!($b + 6), pk!($b + 7));
            let (t2s, f2) = csa(t2s, t1, t2);
            let (f, e1) = csa(fours, f1, f2);
            let (o, t1) = csa(o, pk!($b + 8), pk!($b + 9));
            let (o, t2) = csa(o, pk!($b + 10), pk!($b + 11));
            let (t2s, f1) = csa(t2s, t1, t2);
            let (o, t1) = csa(o, pk!($b + 12), pk!($b + 13));
            let (o, t2) = csa(o, pk!($b + 14), pk!($b + 15));
            let (t2s, f2) = csa(t2s, t1, t2);
            let (f, e2) = csa(f, f1, f2);
            let (e, s16) = csa(eights, e1, e2);
            ones = o;
            twos = t2s;
            fours = f;
            eights = e;
            s16
        }};
    }
    let lo16 = tree16!(0);
    let hi16 = tree16!(16);
    let (s16, s32) = csa(pl.sixteens, lo16, hi16);
    pl.ones = ones;
    pl.twos = twos;
    pl.fours = fours;
    pl.eights = eights;
    pl.sixteens = s16;
    sink.push32(s32);
    prev
}

/// Drives [`block64`] over the exact-64 chunks of `accesses`, dispatching
/// once on the mask/Gray shape, and returns the `chunks_exact` iterator
/// (for its remainder) and the raw last address.
#[inline(always)]
fn run_blocks<'a, S: Sink32>(
    accesses: &'a [Access],
    mask: u64,
    gxm: u64,
    start: u64,
    pl: &mut Planes,
    sink: &mut S,
) -> (core::slice::ChunksExact<'a, Access>, u64) {
    let gxm2 = gxm | (gxm << 32);
    let mut last = start;
    let mut chunks = accesses.chunks_exact(64);
    match (mask == u64::from(u32::MAX), gxm != 0) {
        (true, false) => {
            for blk in &mut chunks {
                last = block64::<true, false, S>(blk, mask, gxm2, last, pl, sink);
            }
        }
        (true, true) => {
            for blk in &mut chunks {
                last = block64::<true, true, S>(blk, mask, gxm2, last, pl, sink);
            }
        }
        (false, false) => {
            for blk in &mut chunks {
                last = block64::<false, false, S>(blk, mask, gxm2, last, pl, sink);
            }
        }
        (false, true) => {
            for blk in &mut chunks {
                last = block64::<false, true, S>(blk, mask, gxm2, last, pl, sink);
            }
        }
    }
    (chunks, last)
}

/// Counts payload transitions of a stream under an XOR-linear encoding,
/// for bus widths of at most 32 lines.
///
/// The encoding is described by `gxm`, the *Gray xor-shift mask*: the
/// encoded bus word of a masked address `x` is `x ^ ((x >> 1) & gxm)`.
/// `gxm = 0` is plain binary; `(mask >> 1) & !low_mask` is the
/// stride-aware Gray code (each bit above the stride boundary absorbs
/// its next-higher neighbour, which is exactly `g ^ (g >> 1)` on the
/// high field). Because the transform is XOR-linear, it commutes with
/// the diff: `enc(a) ^ enc(b) = enc(a ^ b)`, so it is applied to packed
/// diffs rather than to each word.
///
/// `start` is the masked *binary-domain* value of the previous bus word
/// (the all-low reset state for a fresh stream). Returns the payload
/// transition count and the masked binary-domain value of the last word,
/// for chaining across blocks.
#[inline(always)]
pub(crate) fn packed_diff_transitions(
    accesses: &[Access],
    mask: u64,
    gxm: u64,
    start: u64,
) -> (u64, u64) {
    debug_assert!(mask <= u64::from(u32::MAX));
    debug_assert!(gxm & !(mask >> 1) == 0);
    let mut pl = Planes::default();
    let mut sink = TotalSink::default();
    // `last` stays raw (unmasked) between blocks — every diff re-masks
    // after the XOR, so one final mask at the end suffices.
    let (chunks, mut last) = run_blocks(accesses, mask, gxm, start, &mut pl, &mut sink);
    let mut total = 32 * sink.count32 + pl.total();
    for a in chunks.remainder() {
        let d = (a.address ^ last) & mask;
        total += u64::from((d ^ ((d >> 1) & gxm)).count_ones());
        last = a.address;
    }
    (total, last & mask)
}

/// Per-line variant of [`packed_diff_transitions`]: same packed
/// carry-save pass, but the planes are harvested positionally, so
/// `counts[i]` receives the exact transition count of bus line `i`
/// (lines at and above the bus width stay untouched — their diff bits
/// are masked off). Returns the masked binary-domain last word.
///
/// Runs within a few percent of the total-count kernel: the only extra
/// work is one five-step ripple add per 64 accesses plus two cold
/// harvests per 1984.
pub(crate) fn packed_line_transitions(
    accesses: &[Access],
    mask: u64,
    gxm: u64,
    start: u64,
    counts: &mut [u64; 32],
) -> u64 {
    debug_assert!(mask <= u64::from(u32::MAX));
    debug_assert!(gxm & !(mask >> 1) == 0);
    let mut pl = Planes::default();
    let mut sink = PosSink::default();
    let (chunks, mut last) = run_blocks(accesses, mask, gxm, start, &mut pl, &mut sink);
    sink.harvest();
    for (c, &u) in counts.iter_mut().zip(sink.units.iter()) {
        *c += 32 * u;
    }
    pl.fold_lines(counts);
    for a in chunks.remainder() {
        let d = (a.address ^ last) & mask;
        let mut flips = d ^ ((d >> 1) & gxm);
        while flips != 0 {
            counts[flips.trailing_zeros() as usize] += 1;
            flips &= flips - 1;
        }
        last = a.address;
    }
    last & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn packed_diffs_match_scalar_loop_at_all_lengths() {
        let mut rng = Rng64::seed_from_u64(11);
        for (mask, gxm) in [
            (0xffff_ffffu64, 0u64),
            (0xffff_ffff, 0x3fff_fffc),
            (0xffff, 0),
            (0xffff, 0x3ffc),
            (0xf, 0x6),
        ] {
            let accesses: Vec<Access> = (0..193).map(|_| Access::data(rng.gen())).collect();
            for len in [0usize, 1, 31, 32, 63, 64, 65, 128, 193] {
                let s = &accesses[..len];
                let (total, last) = packed_diff_transitions(s, mask, gxm, 0);
                let mut expect = 0u64;
                let mut prev = 0u64;
                for a in s {
                    let w = a.address & mask;
                    let d = w ^ prev;
                    expect += u64::from((d ^ ((d >> 1) & gxm)).count_ones());
                    prev = w;
                }
                assert_eq!(total, expect, "mask {mask:#x} gxm {gxm:#x} len {len}");
                assert_eq!(last, prev, "mask {mask:#x} gxm {gxm:#x} len {len}");
            }
        }
    }

    #[test]
    fn chained_blocks_match_one_shot() {
        let mut rng = Rng64::seed_from_u64(17);
        let accesses: Vec<Access> = (0..500).map(|_| Access::data(rng.gen())).collect();
        for (mask, gxm) in [(0xffff_ffffu64, 0u64), (0xffff_ffff, 0x3fff_fffc)] {
            let (expect, expect_last) = packed_diff_transitions(&accesses, mask, gxm, 0);
            let mut total = 0u64;
            let mut last = 0u64;
            for blk in accesses.chunks(130) {
                let (t, l) = packed_diff_transitions(blk, mask, gxm, last);
                total += t;
                last = l;
            }
            assert_eq!(total, expect, "mask {mask:#x} gxm {gxm:#x}");
            assert_eq!(last, expect_last, "mask {mask:#x} gxm {gxm:#x}");
        }
    }

    #[test]
    fn line_counts_match_dense_reference_and_total() {
        let mut rng = Rng64::seed_from_u64(23);
        // 2500 accesses crosses the positional sink's 1984-access harvest
        // boundary, so mid-stream harvesting is exercised, plus a ragged
        // remainder.
        let accesses: Vec<Access> = (0..2500).map(|_| Access::data(rng.gen())).collect();
        for (mask, gxm) in [
            (0xffff_ffffu64, 0u64),
            (0xffff_ffff, 0x3fff_fffc),
            (0xffff, 0x3ffc),
            (0xf, 0),
        ] {
            for len in [0usize, 1, 63, 64, 65, 1984, 1985, 2047, 2500] {
                let s = &accesses[..len];
                let mut counts = [0u64; 32];
                let last = packed_line_transitions(s, mask, gxm, 0, &mut counts);
                let mut expect = [0u64; 32];
                let mut prev = 0u64;
                for a in s {
                    let w = a.address & mask;
                    let d = w ^ prev;
                    let flips = d ^ ((d >> 1) & gxm);
                    for (i, slot) in expect.iter_mut().enumerate() {
                        *slot += flips >> i & 1;
                    }
                    prev = w;
                }
                assert_eq!(counts, expect, "mask {mask:#x} gxm {gxm:#x} len {len}");
                assert_eq!(last, prev, "mask {mask:#x} gxm {gxm:#x} len {len}");
                let (total, _) = packed_diff_transitions(s, mask, gxm, 0);
                assert_eq!(counts.iter().sum::<u64>(), total);
            }
        }
    }

    #[test]
    fn line_counts_chain_across_blocks() {
        let mut rng = Rng64::seed_from_u64(29);
        let accesses: Vec<Access> = (0..3000).map(|_| Access::data(rng.gen())).collect();
        let (mask, gxm) = (0xffff_ffffu64, 0x3fff_fffcu64);
        let mut expect = [0u64; 32];
        let expect_last = packed_line_transitions(&accesses, mask, gxm, 0, &mut expect);
        let mut counts = [0u64; 32];
        let mut last = 0u64;
        for blk in accesses.chunks(700) {
            last = packed_line_transitions(blk, mask, gxm, last, &mut counts);
        }
        assert_eq!(counts, expect);
        assert_eq!(last, expect_last);
    }

    #[test]
    fn gray_xor_mask_commutes_with_diff() {
        // enc(x) = x ^ ((x >> 1) & gxm) must reproduce the stride-aware
        // Gray word, and its diffs must match diffs of encoded words.
        use crate::codes::gray_encode;
        let mask = 0xffffu64;
        let k = 2u32; // stride 4
        let low_mask = 0x3u64;
        let gxm = (mask >> 1) & !low_mask;
        let mut rng = Rng64::seed_from_u64(13);
        let mut prev_word = 0u64;
        let mut prev_bin = 0u64;
        for _ in 0..1000 {
            let x = rng.gen::<u64>() & mask;
            let word = (gray_encode(x >> k) << k) | (x & low_mask);
            assert_eq!(word, x ^ ((x >> 1) & gxm), "x {x:#x}");
            let d = x ^ prev_bin;
            assert_eq!(word ^ prev_word, d ^ ((d >> 1) & gxm));
            prev_word = word;
            prev_bin = x;
        }
    }
}
