//! Streaming adapters: encode and decode lazily over iterators.
//!
//! For long traces (or traces read incrementally from disk) the whole
//! stream need not be buffered: [`EncoderExt::encode_iter`] and
//! [`DecoderExt::decode_iter`] wrap any access/word iterator into a lazy
//! pipeline that advances the codec one cycle per `next()`.

use crate::bus::{Access, AccessKind, BusState};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// Iterator returned by [`EncoderExt::encode_iter`].
pub struct EncodeIter<'a, I> {
    encoder: &'a mut dyn Encoder,
    stream: I,
}

impl<I> core::fmt::Debug for EncodeIter<'_, I> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EncodeIter")
            .field("encoder", &self.encoder.name())
            .finish_non_exhaustive()
    }
}

impl<I: Iterator<Item = Access>> Iterator for EncodeIter<'_, I> {
    type Item = BusState;

    fn next(&mut self) -> Option<BusState> {
        self.stream.next().map(|access| self.encoder.encode(access))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.stream.size_hint()
    }
}

/// Streaming extension for every [`Encoder`].
pub trait EncoderExt: Encoder {
    /// Lazily encodes `stream`, one bus word per pulled item.
    ///
    /// # Examples
    ///
    /// ```
    /// use buscode_core::codes::T0Encoder;
    /// use buscode_core::stream::EncoderExt;
    /// use buscode_core::{Access, BusWidth, Stride};
    ///
    /// # fn main() -> Result<(), buscode_core::CodecError> {
    /// let mut enc = T0Encoder::new(BusWidth::MIPS, Stride::WORD)?;
    /// let frozen = enc
    ///     .encode_iter((0..1000u64).map(|i| Access::instruction(4 * i)))
    ///     .filter(|word| word.aux & 1 == 1)
    ///     .count();
    /// assert_eq!(frozen, 999); // every word after the first is frozen
    /// # Ok(())
    /// # }
    /// ```
    fn encode_iter<I>(&mut self, stream: I) -> EncodeIter<'_, I::IntoIter>
    where
        I: IntoIterator<Item = Access>,
        Self: Sized,
    {
        EncodeIter {
            encoder: self,
            stream: stream.into_iter(),
        }
    }
}

impl<E: Encoder + ?Sized> EncoderExt for E {}

/// Iterator returned by [`DecoderExt::decode_iter`].
pub struct DecodeIter<'a, I> {
    decoder: &'a mut dyn Decoder,
    words: I,
}

impl<I> core::fmt::Debug for DecodeIter<'_, I> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DecodeIter")
            .field("decoder", &self.decoder.name())
            .finish_non_exhaustive()
    }
}

impl<I: Iterator<Item = (BusState, AccessKind)>> Iterator for DecodeIter<'_, I> {
    type Item = Result<u64, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.words
            .next()
            .map(|(word, kind)| self.decoder.decode(word, kind))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.words.size_hint()
    }
}

/// Streaming extension for every [`Decoder`].
pub trait DecoderExt: Decoder {
    /// Lazily decodes `(word, sel)` pairs, one address per pulled item.
    fn decode_iter<I>(&mut self, words: I) -> DecodeIter<'_, I::IntoIter>
    where
        I: IntoIterator<Item = (BusState, AccessKind)>,
        Self: Sized,
    {
        DecodeIter {
            decoder: self,
            words: words.into_iter(),
        }
    }
}

impl<D: Decoder + ?Sized> DecoderExt for D {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::{DualT0BiDecoder, DualT0BiEncoder};
    use crate::{BusWidth, Stride};

    #[test]
    fn lazy_pipeline_round_trips() {
        let mut enc = DualT0BiEncoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let mut dec = DualT0BiDecoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let stream: Vec<Access> = (0..500u64)
            .map(|i| {
                if i % 3 == 0 {
                    Access::data(0x8000_0000 + 977 * i)
                } else {
                    Access::instruction(0x400 + 4 * i)
                }
            })
            .collect();
        let words: Vec<(BusState, AccessKind)> = enc
            .encode_iter(stream.iter().copied())
            .zip(stream.iter().map(|a| a.kind))
            .collect();
        for (decoded, original) in dec.decode_iter(words).zip(&stream) {
            assert_eq!(decoded.unwrap(), original.address);
        }
    }

    #[test]
    fn adapters_are_lazy() {
        let mut enc = DualT0BiEncoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        // Only two items are pulled from an unbounded source.
        let mut pulled = 0u64;
        let source = std::iter::from_fn(|| {
            pulled += 1;
            Some(Access::instruction(4 * pulled))
        });
        let first_two: Vec<BusState> = enc.encode_iter(source).take(2).collect();
        assert_eq!(first_two.len(), 2);
    }

    #[test]
    fn size_hint_is_forwarded() {
        let mut enc = DualT0BiEncoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let stream: Vec<Access> = (0..7u64).map(Access::instruction).collect();
        let iter = enc.encode_iter(stream);
        assert_eq!(iter.size_hint(), (7, Some(7)));
    }

    #[test]
    fn works_through_trait_objects() {
        use crate::{CodeKind, CodeParams};
        let mut enc = CodeKind::T0.encoder(CodeParams::default()).unwrap();
        let total: u32 = enc
            .encode_iter((0..64u64).map(|i| Access::instruction(4 * i)))
            .map(|w| w.aux as u32 & 1)
            .sum();
        assert_eq!(total, 63);
    }
}
