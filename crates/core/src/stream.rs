//! Streaming adapters: encode and decode lazily over iterators.
//!
//! For long traces (or traces read incrementally from disk) the whole
//! stream need not be buffered: [`EncoderExt::encode_iter`] and
//! [`DecoderExt::decode_iter`] wrap any access/word iterator into a lazy
//! pipeline. Internally the adapters pull the source in chunks of
//! [`STREAM_CHUNK`] items and run them through the block API
//! ([`Encoder::encode_block`] / [`Decoder::decode_block`]), so the streaming
//! and batch paths share one implementation; at most one chunk is buffered
//! at a time.

use crate::bus::{Access, AccessKind, BusState};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// Number of items the streaming adapters pull from the source per refill.
///
/// Large enough that block-specialized codes amortize their per-block setup,
/// small enough that "lazy" still means bounded memory and prompt first
/// output on unbounded sources.
pub const STREAM_CHUNK: usize = 256;

/// Iterator returned by [`EncoderExt::encode_iter`].
pub struct EncodeIter<'a, I> {
    encoder: &'a mut dyn Encoder,
    stream: I,
    accesses: Vec<Access>,
    buffer: Vec<BusState>,
    pos: usize,
}

impl<I> core::fmt::Debug for EncodeIter<'_, I> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EncodeIter")
            .field("encoder", &self.encoder.name())
            .finish_non_exhaustive()
    }
}

impl<I: Iterator<Item = Access>> Iterator for EncodeIter<'_, I> {
    type Item = BusState;

    fn next(&mut self) -> Option<BusState> {
        if self.pos == self.buffer.len() {
            self.accesses.clear();
            self.accesses
                .extend(self.stream.by_ref().take(STREAM_CHUNK));
            if self.accesses.is_empty() {
                return None;
            }
            self.buffer.clear();
            self.encoder.encode_block(&self.accesses, &mut self.buffer);
            self.pos = 0;
        }
        let word = self.buffer.get(self.pos).copied();
        self.pos += 1;
        word
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered = self.buffer.len() - self.pos;
        let (lo, hi) = self.stream.size_hint();
        (
            lo.saturating_add(buffered),
            hi.and_then(|h| h.checked_add(buffered)),
        )
    }
}

/// Streaming extension for every [`Encoder`].
pub trait EncoderExt: Encoder {
    /// Lazily encodes `stream`, one bus word per pulled item.
    ///
    /// # Examples
    ///
    /// ```
    /// use buscode_core::codes::T0Encoder;
    /// use buscode_core::stream::EncoderExt;
    /// use buscode_core::{Access, BusWidth, Stride};
    ///
    /// # fn main() -> Result<(), buscode_core::CodecError> {
    /// let mut enc = T0Encoder::new(BusWidth::MIPS, Stride::WORD)?;
    /// let frozen = enc
    ///     .encode_iter((0..1000u64).map(|i| Access::instruction(4 * i)))
    ///     .filter(|word| word.aux & 1 == 1)
    ///     .count();
    /// assert_eq!(frozen, 999); // every word after the first is frozen
    /// # Ok(())
    /// # }
    /// ```
    #[must_use = "the adapter is lazy: no cycle runs until the iterator is consumed"]
    fn encode_iter<I>(&mut self, stream: I) -> EncodeIter<'_, I::IntoIter>
    where
        I: IntoIterator<Item = Access>,
        Self: Sized,
    {
        EncodeIter {
            encoder: self,
            stream: stream.into_iter(),
            accesses: Vec::new(),
            buffer: Vec::new(),
            pos: 0,
        }
    }
}

impl<E: Encoder + ?Sized> EncoderExt for E {}

/// Iterator returned by [`DecoderExt::decode_iter`].
pub struct DecodeIter<'a, I> {
    decoder: &'a mut dyn Decoder,
    words: I,
    word_buf: Vec<BusState>,
    kind_buf: Vec<AccessKind>,
    addr_buf: Vec<u64>,
    out_buf: Vec<Result<u64, CodecError>>,
    pos: usize,
}

impl<I> core::fmt::Debug for DecodeIter<'_, I> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DecodeIter")
            .field("decoder", &self.decoder.name())
            .finish_non_exhaustive()
    }
}

impl<I: Iterator<Item = (BusState, AccessKind)>> DecodeIter<'_, I> {
    /// Pulls the next chunk and decodes it. Returns `false` at end of input.
    ///
    /// A protocol error inside the chunk does not end the stream: the items
    /// after the failing word are decoded per-word (exactly as a caller of
    /// [`Decoder::decode`] would), so the yielded sequence of `Ok`/`Err`
    /// results is identical to the unchunked per-word path.
    fn refill(&mut self) -> bool {
        self.word_buf.clear();
        self.kind_buf.clear();
        for (word, kind) in self.words.by_ref().take(STREAM_CHUNK) {
            self.word_buf.push(word);
            self.kind_buf.push(kind);
        }
        if self.word_buf.is_empty() {
            return false;
        }
        self.addr_buf.clear();
        self.out_buf.clear();
        let result = self
            .decoder
            .decode_block(&self.word_buf, &self.kind_buf, &mut self.addr_buf);
        self.out_buf.extend(self.addr_buf.drain(..).map(Ok));
        if let Err(error) = result {
            self.out_buf.push(Err(error));
            // Resume after the failing word; the decoder is already in its
            // post-failure state, matching the per-word contract.
            for i in self.out_buf.len()..self.word_buf.len() {
                if let (Some(&word), Some(&kind)) = (self.word_buf.get(i), self.kind_buf.get(i)) {
                    self.out_buf.push(self.decoder.decode(word, kind));
                }
            }
        }
        self.pos = 0;
        true
    }
}

impl<I: Iterator<Item = (BusState, AccessKind)>> Iterator for DecodeIter<'_, I> {
    type Item = Result<u64, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos == self.out_buf.len() && !self.refill() {
            return None;
        }
        let item = self.out_buf.get(self.pos).cloned();
        self.pos += 1;
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered = self.out_buf.len() - self.pos;
        let (lo, hi) = self.words.size_hint();
        (
            lo.saturating_add(buffered),
            hi.and_then(|h| h.checked_add(buffered)),
        )
    }
}

/// Streaming extension for every [`Decoder`].
pub trait DecoderExt: Decoder {
    /// Lazily decodes `(word, sel)` pairs, one address per pulled item.
    #[must_use = "the adapter is lazy: no cycle runs until the iterator is consumed"]
    fn decode_iter<I>(&mut self, words: I) -> DecodeIter<'_, I::IntoIter>
    where
        I: IntoIterator<Item = (BusState, AccessKind)>,
        Self: Sized,
    {
        DecodeIter {
            decoder: self,
            words: words.into_iter(),
            word_buf: Vec::new(),
            kind_buf: Vec::new(),
            addr_buf: Vec::new(),
            out_buf: Vec::new(),
            pos: 0,
        }
    }
}

impl<D: Decoder + ?Sized> DecoderExt for D {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::{DualT0BiDecoder, DualT0BiEncoder, T0Decoder};
    use crate::{BusWidth, Stride};

    #[test]
    fn lazy_pipeline_round_trips() {
        let mut enc = DualT0BiEncoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let mut dec = DualT0BiDecoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let stream: Vec<Access> = (0..500u64)
            .map(|i| {
                if i % 3 == 0 {
                    Access::data(0x8000_0000 + 977 * i)
                } else {
                    Access::instruction(0x400 + 4 * i)
                }
            })
            .collect();
        let words: Vec<(BusState, AccessKind)> = enc
            .encode_iter(stream.iter().copied())
            .zip(stream.iter().map(|a| a.kind))
            .collect();
        for (decoded, original) in dec.decode_iter(words).zip(&stream) {
            assert_eq!(decoded.unwrap(), original.address);
        }
    }

    #[test]
    fn adapters_are_lazy() {
        let mut enc = DualT0BiEncoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        // A bounded prefix is pulled from an unbounded source: at most one
        // chunk, not the whole stream.
        let mut pulled = 0u64;
        let source = std::iter::from_fn(|| {
            pulled += 1;
            Some(Access::instruction(4 * pulled))
        });
        let first_two: Vec<BusState> = enc.encode_iter(source).take(2).collect();
        assert_eq!(first_two.len(), 2);
        assert!(pulled <= STREAM_CHUNK as u64 + 1);
    }

    #[test]
    fn size_hint_is_forwarded() {
        let mut enc = DualT0BiEncoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let stream: Vec<Access> = (0..7u64).map(Access::instruction).collect();
        let iter = enc.encode_iter(stream);
        assert_eq!(iter.size_hint(), (7, Some(7)));
    }

    #[test]
    fn size_hint_counts_buffered_items() {
        let mut enc = DualT0BiEncoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let stream: Vec<Access> = (0..7u64).map(Access::instruction).collect();
        let mut iter = enc.encode_iter(stream);
        let _ = iter.next(); // fills the chunk buffer, consumes one item
        assert_eq!(iter.size_hint(), (6, Some(6)));
    }

    #[test]
    fn works_through_trait_objects() {
        use crate::{CodeKind, CodeParams};
        let mut enc = CodeKind::T0.encoder(CodeParams::default()).unwrap();
        let total: u32 = enc
            .encode_iter((0..64u64).map(|i| Access::instruction(4 * i)))
            .map(|w| w.aux as u32 & 1)
            .sum();
        assert_eq!(total, 63);
    }

    #[test]
    fn decode_errors_interleave_like_the_per_word_path() {
        // First word asserts INC with no reference address: protocol error.
        // The stream must yield that error in place and keep decoding.
        let mut dec = T0Decoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let words = vec![
            (BusState::new(0, 1), AccessKind::Instruction),
            (BusState::new(0x100, 0), AccessKind::Instruction),
            (BusState::new(0x100, 1), AccessKind::Instruction),
        ];
        let results: Vec<Result<u64, CodecError>> = dec.decode_iter(words).collect();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_err());
        assert_eq!(results[1].as_ref().unwrap(), &0x100);
        assert_eq!(results[2].as_ref().unwrap(), &0x104);
    }
}
