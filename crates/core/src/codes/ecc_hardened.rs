//! The `EccHardened` wrapper codec: SEC-DED forward error correction for
//! stateful codes.
//!
//! [`Hardened`][super::Hardened] buys fault *containment* with one parity
//! line: a single in-transit flip is detected at the faulted cycle, but
//! the word is lost and the stream pays a resync window of up to `R`
//! cycles. [`EccHardened`] upgrades the same refresh machinery to fault
//! *correction*: a Hamming SEC-DED code over every transmitted line
//! (payload plus the inner code's redundant lines) corrects any single
//! line flip *in-flight*, at the faulted cycle, with no resync at all —
//! the decoder recovers the exact address and lands in the exact state a
//! clean transmission would have produced. Double flips are beyond the
//! code's correction radius; they are *detected* (never silently decoded)
//! and fall back to the bounded refresh-resync the parity wrapper already
//! provides.
//!
//! # Line layout
//!
//! For a `w`-bit payload and an inner code with `k` redundant lines, the
//! protected data vector has `n = w + k` bits. The wrapper adds `r`
//! Hamming check lines, with `r` the minimal solution of
//! `2^r >= n + r + 1`, plus one overall-parity line for double-error
//! detection — `k + r + 1` redundant lines in total:
//!
//! ```text
//! aux bit:   0 .. k-1        k .. k+r-1      k+r
//!            inner code's    Hamming check   overall parity of the
//!            own lines       bits            n + r codeword bits
//! ```
//!
//! The check bits are the classic Hamming construction: codeword
//! positions are numbered `1..=n+r`, power-of-two positions carry the
//! check bits, and the XOR of the positions of all set bits is zero. On
//! receive, that XOR (the *syndrome*) is the position of a single flipped
//! line; combined with the overall parity it separates the cases:
//!
//! | syndrome | overall parity | meaning            | action            |
//! |---|---|---|---|
//! | 0        | even           | clean              | decode            |
//! | 0        | odd            | parity line flip   | correct (data intact) |
//! | `p`      | odd            | single flip at `p` | correct, decode   |
//! | nonzero  | even           | double flip        | detect, resync    |
//!
//! The correction guarantee is model-checked exhaustively at small widths
//! by [`check_ecc`][crate::check::check_ecc]: for every reachable state
//! and every single line flip, the decoder recovers the exact address
//! *and* the exact post-cycle state of a clean decode; every double flip
//! is reported as an error. The resync bound after a double flip is the
//! refresh argument inherited from `Hardened`, verified by the same
//! family.
//!
//! The price is lines and transitions: `r + 1` extra lines toggle where
//! the parity wrapper pays one. `buscode-power::ecc_cost` prices the
//! three tiers (bare, parity, ECC) so the adaptive redundancy manager in
//! `buscode-pipeline` can weigh milliwatts against fault pressure.
//!
//! # Examples
//!
//! A flipped line is corrected at the faulted cycle — no error, no resync
//! window:
//!
//! ```
//! use buscode_core::codes::{EccHardened, T0Decoder, T0Encoder};
//! use buscode_core::{Access, AccessKind, BusWidth, Decoder, Encoder, Stride};
//!
//! # fn main() -> Result<(), buscode_core::CodecError> {
//! let (w, s) = (BusWidth::MIPS, Stride::WORD);
//! let mut enc = EccHardened::encoder(T0Encoder::new(w, s)?, 16)?;
//! let mut dec = EccHardened::with_aux_lines(T0Decoder::new(w, s)?, 16, 1)?;
//!
//! let mut words: Vec<_> = (0..8u64)
//!     .map(|i| enc.encode(Access::instruction(0x100 + 4 * i)))
//!     .collect();
//! words[3].payload ^= 1 << 9; // in-transit flip
//!
//! for (i, word) in words.iter().enumerate() {
//!     // Every cycle decodes exactly, including the faulted one.
//!     assert_eq!(dec.decode(*word, AccessKind::Instruction)?, 0x100 + 4 * i as u64);
//! }
//! assert_eq!(dec.corrected_count(), 1);
//! # Ok(())
//! # }
//! ```

use core::hash::{Hash, Hasher};

use crate::bus::{Access, AccessKind, BusState, BusWidth};
use crate::error::CodecError;
use crate::traits::{CodeKind, CodeParams, Decoder, Encoder};

/// The minimal number of Hamming check bits `r` protecting `data_bits`
/// data bits: the smallest `r` with `2^r >= data_bits + r + 1`.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::ecc_check_bits;
///
/// assert_eq!(ecc_check_bits(4), 3); // 2^3 = 8 >= 4 + 3 + 1
/// assert_eq!(ecc_check_bits(11), 4); // 2^4 = 16 >= 11 + 4 + 1
/// assert_eq!(ecc_check_bits(57), 6); // 2^6 = 64 >= 57 + 6 + 1
/// ```
pub fn ecc_check_bits(data_bits: u32) -> u32 {
    let mut r = 0u32;
    while (1u128 << r) < u128::from(data_bits) + u128::from(r) + 1 {
        r += 1;
    }
    r
}

/// XOR of the 1-indexed codeword positions of all set data bits.
///
/// Data bits occupy the non-power-of-two positions of `1..=n+r` in
/// order. Bit `j` of the result is the parity of the data bits whose
/// position has bit `j` set — exactly check bit `c_j`, by Hamming's
/// defining property that each check bit zeroes the XOR over its
/// position group.
fn data_position_xor(data: u128, n: u32) -> u64 {
    let mut acc: u64 = 0;
    let mut pos: u64 = 1;
    for i in 0..n {
        while pos.is_power_of_two() {
            pos += 1;
        }
        if (data >> i) & 1 == 1 {
            acc ^= pos;
        }
        pos += 1;
    }
    acc
}

/// The 0-based data-bit index stored at codeword position `pos`, or
/// `None` when `pos` is a power of two (a check-bit position).
fn data_index_of_position(pos: u64, n: u32) -> Option<u32> {
    if pos.is_power_of_two() {
        return None;
    }
    // The data index is the position count minus the check positions
    // (powers of two) below it, minus the 1-indexing offset.
    let checks_below = pos.ilog2() + 1;
    let index = (pos - 1 - u64::from(checks_below)) as u32;
    (index < n).then_some(index)
}

fn parity128(v: u128) -> u64 {
    u64::from(v.count_ones() & 1)
}

/// Wraps an inner encoder or decoder with SEC-DED Hamming protection and
/// a periodic plain-word refresh; see the [module docs](self) for the
/// line layout and guarantees.
///
/// The same generic struct wraps both halves: `EccHardened<E>` implements
/// [`Encoder`] when `E` does, and `EccHardened<D>` implements [`Decoder`]
/// when `D` does. Both halves must be built with the same refresh
/// interval (and the decoder with the encoder's redundant line count) or
/// they will not track each other.
///
/// Equality and hashing — which the model checker uses to identify
/// product states — cover the codec state only; the [`corrected_count`]
/// telemetry counter is deliberately excluded (a correction restores the
/// clean state by construction, so two decoders differing only in how
/// many faults they have absorbed are behaviourally identical).
///
/// [`corrected_count`]: EccHardened::corrected_count
#[derive(Clone, Debug)]
pub struct EccHardened<C> {
    inner: C,
    /// Refresh interval `R` in cycles: the inner codec is reset before
    /// cycles `0, R, 2R, ...`.
    refresh: u64,
    /// How many redundant lines the *inner* code uses; the check lines
    /// sit immediately above them.
    inner_aux: u32,
    /// The payload width, cached so the Hamming geometry is fixed at
    /// construction.
    width: BusWidth,
    /// Number of Hamming check lines `r`.
    check_lines: u32,
    /// Cycle counter modulo `refresh`, advanced once per call.
    cycle: u64,
    /// How many single-line flips this half has corrected in-flight.
    /// Telemetry only: excluded from equality, hashing, and snapshots.
    corrected: u64,
}

impl<C: PartialEq> PartialEq for EccHardened<C> {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
            && self.refresh == other.refresh
            && self.inner_aux == other.inner_aux
            && self.width == other.width
            && self.check_lines == other.check_lines
            && self.cycle == other.cycle
    }
}

impl<C: Eq> Eq for EccHardened<C> {}

impl<C: Hash> Hash for EccHardened<C> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
        self.refresh.hash(state);
        self.inner_aux.hash(state);
        self.width.hash(state);
        self.check_lines.hash(state);
        self.cycle.hash(state);
    }
}

impl<C> EccHardened<C> {
    fn build(inner: C, width: BusWidth, refresh: u64, inner_aux: u32) -> Result<Self, CodecError> {
        if refresh == 0 {
            return Err(CodecError::InvalidParameter {
                name: "refresh",
                reason: "refresh interval must be at least 1 cycle".to_string(),
            });
        }
        let data_bits = width.bits() + inner_aux;
        let check_lines = ecc_check_bits(data_bits);
        let total_aux = u64::from(inner_aux) + u64::from(check_lines) + 1;
        if total_aux > 64 {
            return Err(CodecError::InvalidParameter {
                name: "inner_aux",
                reason: format!(
                    "SEC-DED lines must fit within 64 redundant lines, \
                     got {inner_aux} inner + {check_lines} check + 1 parity"
                ),
            });
        }
        Ok(EccHardened {
            inner,
            refresh,
            inner_aux,
            width,
            check_lines,
            cycle: 0,
            corrected: 0,
        })
    }

    /// The configured refresh interval `R`.
    pub fn refresh_interval(&self) -> u64 {
        self.refresh
    }

    /// True when the *next* encode/decode call starts a refresh period
    /// (the inner codec will be reset before processing it).
    pub fn at_refresh_boundary(&self) -> bool {
        self.cycle == 0
    }

    /// Number of Hamming check lines `r` (excluding the overall-parity
    /// line and the inner code's own lines).
    pub fn check_line_count(&self) -> u32 {
        self.check_lines
    }

    /// How many single-line flips this half has corrected in-flight
    /// since construction. The counter survives [`Encoder::reset`] /
    /// [`Decoder::reset`] — it is telemetry about the channel, not codec
    /// state — and is excluded from equality, hashing, and snapshots.
    pub fn corrected_count(&self) -> u64 {
        self.corrected
    }

    /// The wrapped codec.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Mask selecting the inner code's redundant lines within `aux`.
    fn inner_aux_mask(&self) -> u64 {
        (1u64 << self.inner_aux) - 1
    }

    /// The number of protected data bits `n = w + k`.
    fn data_bits(&self) -> u32 {
        self.width.bits() + self.inner_aux
    }

    /// Advances the refresh schedule, returning whether this cycle is a
    /// refresh cycle.
    fn tick(&mut self) -> bool {
        let refresh_now = self.cycle == 0;
        self.cycle = (self.cycle + 1) % self.refresh;
        refresh_now
    }

    /// Packs payload and inner-aux lines into the protected data vector.
    fn data_word(&self, payload: u64, inner_aux_bits: u64) -> u128 {
        u128::from(payload) | (u128::from(inner_aux_bits) << self.width.bits())
    }
}

impl<E: Encoder> EccHardened<E> {
    /// Wraps an encoder, reading the redundant-line count off `inner`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParameter`] if `refresh` is zero or
    /// the SEC-DED lines would not fit in the 64 `aux` bits.
    pub fn encoder(inner: E, refresh: u64) -> Result<Self, CodecError> {
        let (width, inner_aux) = (inner.width(), inner.aux_line_count());
        EccHardened::build(inner, width, refresh, inner_aux)
    }
}

impl<D: Decoder> EccHardened<D> {
    /// Wraps a decoder with an explicit inner redundant-line count (the
    /// decoder trait does not expose it; pass the paired encoder's
    /// [`Encoder::aux_line_count`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`EccHardened::encoder`].
    pub fn with_aux_lines(inner: D, refresh: u64, inner_aux: u32) -> Result<Self, CodecError> {
        let width = inner.width();
        EccHardened::build(inner, width, refresh, inner_aux)
    }
}

impl<E: Encoder> Encoder for EccHardened<E> {
    fn name(&self) -> &'static str {
        "ecc-hardened"
    }

    fn width(&self) -> BusWidth {
        self.inner.width()
    }

    fn aux_line_count(&self) -> u32 {
        self.inner_aux + self.check_lines + 1
    }

    fn encode(&mut self, access: Access) -> BusState {
        if self.tick() {
            // Refresh: a reset inner encoder has no reference to freeze
            // against, so this cycle's word is plain and self-contained.
            self.inner.reset();
        }
        let word = self.inner.encode(access);
        let inner_aux_bits = word.aux & self.inner_aux_mask();
        let data = self.data_word(word.payload, inner_aux_bits);
        let checks = data_position_xor(data, self.data_bits());
        let overall = parity128(data) ^ parity128(u128::from(checks));
        let aux = inner_aux_bits
            | (checks << self.inner_aux)
            | (overall << (self.inner_aux + self.check_lines));
        BusState::new(word.payload, aux)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.cycle = 0;
    }
}

impl<D: Decoder> Decoder for EccHardened<D> {
    fn name(&self) -> &'static str {
        "ecc-hardened"
    }

    fn width(&self) -> BusWidth {
        self.inner.width()
    }

    fn decode(&mut self, word: BusState, kind: AccessKind) -> Result<u64, CodecError> {
        // The schedule advances on every call — it is driven by the cycle
        // count alone, so a corrupted word cannot shift it.
        if self.tick() {
            self.inner.reset();
        }
        let n = self.data_bits();
        let r = self.check_lines;
        let payload = word.payload & self.width.mask();
        let inner_aux_bits = word.aux & self.inner_aux_mask();
        let checks = (word.aux >> self.inner_aux) & ((1u64 << r) - 1);
        let parity_rx = (word.aux >> (self.inner_aux + r)) & 1;
        let mut data = self.data_word(payload, inner_aux_bits);
        // Syndrome: XOR of the positions of all flipped codeword lines.
        let syndrome = data_position_xor(data, n) ^ checks;
        let overall_odd = parity128(data) ^ parity128(u128::from(checks)) ^ parity_rx;
        match (syndrome, overall_odd) {
            (0, 0) => {} // clean word
            (0, 1) => {
                // The overall-parity line itself flipped; data is intact.
                self.corrected += 1;
            }
            (pos, 1) => {
                // A single flip at codeword position `pos`. A syndrome
                // beyond the codeword means at least three flips — out of
                // the correction radius, report it like a double.
                if pos > u64::from(n + r) {
                    return Err(CodecError::ProtocolViolation {
                        code: "ecc",
                        reason: "uncorrectable multi-line error detected",
                    });
                }
                if let Some(i) = data_index_of_position(pos, n) {
                    data ^= 1u128 << i;
                }
                // Flips at check positions leave the data intact.
                self.corrected += 1;
            }
            (_, 0) => {
                // Even flip count with a nonzero syndrome: a double
                // error. Detected, not correctable — leave the inner
                // state untouched and let the refresh bound the resync.
                return Err(CodecError::ProtocolViolation {
                    code: "ecc",
                    reason: "double-line error detected",
                });
            }
            // `overall_odd` is a single bit; the compiler cannot see that.
            _ => unreachable!("overall parity is 0 or 1"),
        }
        let corrected_payload = (data & u128::from(self.width.mask())) as u64;
        let corrected_aux =
            ((data >> self.width.bits()) & u128::from(self.inner_aux_mask())) as u64;
        self.inner
            .decode(BusState::new(corrected_payload, corrected_aux), kind)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.cycle = 0;
    }

    fn corrected_count(&self) -> u64 {
        self.corrected
    }
}

impl CodeKind {
    /// The number of redundant lines [`EccHardened`] adds on top of this
    /// code's own: `r + 1` for the minimal `r` with `2^r >= w + k + r + 1`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the code's constructor.
    pub fn ecc_overhead_lines(self, params: CodeParams) -> Result<u32, CodecError> {
        let inner_aux = self.aux_line_count(params)?;
        Ok(ecc_check_bits(params.width.bits() + inner_aux) + 1)
    }

    /// Builds this code's encoder wrapped in [`EccHardened`] with the
    /// given refresh interval.
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn ecc_encoder(
        self,
        params: CodeParams,
        refresh: u64,
    ) -> Result<EccHardened<Box<dyn Encoder>>, CodecError> {
        EccHardened::encoder(self.encoder(params)?, refresh)
    }

    /// Builds the decoder paired with [`CodeKind::ecc_encoder`].
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn ecc_decoder(
        self,
        params: CodeParams,
        refresh: u64,
    ) -> Result<EccHardened<Box<dyn Decoder>>, CodecError> {
        let aux = self.aux_line_count(params)?;
        EccHardened::with_aux_lines(self.decoder(params)?, refresh, aux)
    }
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{Snapshot, StateImage};

impl<C: Snapshot> Snapshot for EccHardened<C> {
    /// The image is the inner codec's image with the refresh-cycle
    /// counter appended, under an `ecc-hardened:`-prefixed code name.
    /// The correction telemetry counter is not codec state and is not
    /// captured.
    fn snapshot(&self) -> StateImage {
        let inner = self.inner.snapshot();
        let mut words = inner.words().to_vec();
        words.push(self.cycle);
        StateImage::new(format!("ecc-hardened:{}", inner.code()), words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let Some(inner_code) = image.code().strip_prefix("ecc-hardened:") else {
            return Err(CodecError::SnapshotMismatch {
                code: "ecc-hardened",
                reason: "image is not an ecc-hardened snapshot",
            });
        };
        let Some((&cycle, inner_words)) = image.words().split_last() else {
            return Err(CodecError::SnapshotMismatch {
                code: "ecc-hardened",
                reason: "missing refresh-cycle counter",
            });
        };
        if cycle >= self.refresh {
            return Err(CodecError::SnapshotMismatch {
                code: "ecc-hardened",
                reason: "cycle counter outside the refresh interval",
            });
        }
        // Restore the inner codec first: it validates before mutating, so
        // a bad inner image leaves the whole wrapper unchanged.
        self.inner
            .restore(&StateImage::new(inner_code, inner_words.to_vec()))?;
        self.cycle = cycle;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::{T0Decoder, T0Encoder};
    use crate::{BusWidth, Stride};

    fn t0_pair(refresh: u64) -> (EccHardened<T0Encoder>, EccHardened<T0Decoder>) {
        let (w, s) = (BusWidth::MIPS, Stride::WORD);
        (
            EccHardened::encoder(T0Encoder::new(w, s).unwrap(), refresh).unwrap(),
            EccHardened::with_aux_lines(T0Decoder::new(w, s).unwrap(), refresh, 1).unwrap(),
        )
    }

    #[test]
    fn refresh_zero_is_rejected() {
        let enc = T0Encoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        assert!(matches!(
            EccHardened::encoder(enc, 0),
            Err(CodecError::InvalidParameter {
                name: "refresh",
                ..
            })
        ));
    }

    #[test]
    fn check_bit_arithmetic_matches_the_textbook_points() {
        // (data bits, minimal r): the classic Hamming table.
        for (n, r) in [(1, 2), (4, 3), (11, 4), (26, 5), (57, 6)] {
            assert_eq!(ecc_check_bits(n), r, "n = {n}");
            // Minimality: r - 1 must not satisfy the inequality.
            assert!((1u64 << (r - 1)) < u64::from(n) + u64::from(r - 1) + 1);
        }
    }

    #[test]
    fn aux_layout_is_inner_then_checks_then_parity() {
        // 32-bit T0: n = 33 data bits, r = 6 (2^6 = 64 >= 33 + 6 + 1).
        let (enc, _) = t0_pair(8);
        assert_eq!(enc.check_line_count(), 6);
        assert_eq!(enc.aux_line_count(), 1 + 6 + 1);
    }

    #[test]
    fn round_trips_like_the_inner_code() {
        let (mut enc, mut dec) = t0_pair(8);
        for i in 0..100u64 {
            let addr = if i % 7 == 0 {
                0x9000 + 64 * i
            } else {
                0x100 + 4 * i
            };
            let word = enc.encode(Access::instruction(addr));
            assert_eq!(dec.decode(word, AccessKind::Instruction).unwrap(), addr);
        }
        assert_eq!(dec.corrected_count(), 0);
    }

    #[test]
    fn every_single_flip_is_corrected_in_flight() {
        let (mut enc, mut dec) = t0_pair(16);
        let lines = 32 + enc.aux_line_count();
        for i in 0..64u64 {
            let addr = 0x400 + 4 * i;
            let word = enc.encode(Access::instruction(addr));
            let clean = dec.clone();
            for line in 0..lines {
                let mut corrupted = word;
                if line < 32 {
                    corrupted.payload ^= 1 << line;
                } else {
                    corrupted.aux ^= 1 << (line - 32);
                }
                let mut probe = clean.clone();
                assert_eq!(
                    probe.decode(corrupted, AccessKind::Instruction).unwrap(),
                    addr,
                    "cycle {i} line {line} not corrected"
                );
                assert_eq!(probe.corrected_count(), clean.corrected_count() + 1);
                // The probe lands in the exact clean post state.
                let mut reference = clean.clone();
                reference.decode(word, AccessKind::Instruction).unwrap();
                assert_eq!(probe, reference, "cycle {i} line {line} state drifted");
            }
            dec.decode(word, AccessKind::Instruction).unwrap();
        }
    }

    #[test]
    fn double_flips_are_detected_not_decoded() {
        let (mut enc, mut dec) = t0_pair(16);
        let lines = 32 + enc.aux_line_count();
        for i in 0..16u64 {
            let word = enc.encode(Access::instruction(0x400 + 4 * i));
            for a in 0..lines {
                for b in (a + 1)..lines {
                    let mut corrupted = word;
                    for line in [a, b] {
                        if line < 32 {
                            corrupted.payload ^= 1 << line;
                        } else {
                            corrupted.aux ^= 1 << (line - 32);
                        }
                    }
                    let mut probe = dec.clone();
                    assert!(
                        probe.decode(corrupted, AccessKind::Instruction).is_err(),
                        "cycle {i} lines {a},{b} slipped through SEC-DED"
                    );
                }
            }
            dec.decode(word, AccessKind::Instruction).unwrap();
        }
    }

    #[test]
    fn double_flip_errors_leave_inner_state_untouched_and_resync_bounded() {
        let refresh = 8u64;
        let (mut enc, mut dec) = t0_pair(refresh);
        let mut words: Vec<BusState> = (0..64u64)
            .map(|i| enc.encode(Access::instruction(0x100 + 4 * i)))
            .collect();
        let fault_cycle = 10usize;
        words[fault_cycle].payload ^= 0b101; // two payload lines
        for (i, word) in words.iter().enumerate() {
            let decoded = dec.decode(*word, AccessKind::Instruction);
            let expected = 0x100 + 4 * i as u64;
            if i == fault_cycle {
                assert!(decoded.is_err(), "double flip must be detected");
                continue;
            }
            let next_refresh = (fault_cycle as u64 / refresh + 1) * refresh;
            if (i as u64) >= next_refresh || i < fault_cycle {
                assert_eq!(decoded.unwrap(), expected, "cycle {i}");
            }
        }
    }

    #[test]
    fn ecc_error_class_is_transient() {
        let err = CodecError::ProtocolViolation {
            code: "ecc",
            reason: "double-line error detected",
        };
        assert_eq!(err.recovery_class(), crate::RecoveryClass::Transient);
    }

    #[test]
    fn equality_ignores_the_correction_counter() {
        let (mut enc, mut dec) = t0_pair(4);
        let word = enc.encode(Access::instruction(0x100));
        let mut faulted = dec.clone();
        let mut corrupted = word;
        corrupted.payload ^= 1;
        faulted.decode(corrupted, AccessKind::Instruction).unwrap();
        dec.decode(word, AccessKind::Instruction).unwrap();
        assert_eq!(faulted.corrected_count(), 1);
        assert_eq!(dec.corrected_count(), 0);
        assert_eq!(faulted, dec);
    }

    #[test]
    fn boxed_factories_build_every_code() {
        let params = CodeParams::default();
        for kind in CodeKind::all() {
            let mut enc = kind.ecc_encoder(params, 32).unwrap();
            let mut dec = kind.ecc_decoder(params, 32).unwrap();
            assert_eq!(
                enc.aux_line_count(),
                kind.aux_line_count(params).unwrap() + kind.ecc_overhead_lines(params).unwrap()
            );
            for i in 0..96u64 {
                let access = if i % 3 == 0 {
                    Access::data(0x8000 + 16 * i)
                } else {
                    Access::instruction(0x400 + 4 * i)
                };
                let word = enc.encode(access);
                assert_eq!(
                    dec.decode(word, access.kind).unwrap(),
                    access.address,
                    "{kind} cycle {i}"
                );
            }
        }
    }

    #[test]
    fn snapshot_round_trips() {
        use crate::snapshot::Snapshot;
        let params = CodeParams::default();
        let mut enc = CodeKind::T0.ecc_snapshot_encoder(params, 16).unwrap();
        for i in 0..5u64 {
            enc.encode(Access::instruction(0x100 + 4 * i));
        }
        let image = enc.snapshot();
        assert!(image.code().starts_with("ecc-hardened:"));
        let mut resumed = CodeKind::T0.ecc_snapshot_encoder(params, 16).unwrap();
        resumed.restore(&image).unwrap();
        assert_eq!(
            resumed.encode(Access::instruction(0x114)),
            enc.encode(Access::instruction(0x114)),
        );
        // Wrong prefix and out-of-domain cycle counters are rejected.
        let mut fresh = CodeKind::T0.ecc_snapshot_encoder(params, 16).unwrap();
        assert!(fresh
            .restore(&StateImage::new("hardened:t0", vec![0, 0]))
            .is_err());
        assert!(fresh
            .restore(&StateImage::new("ecc-hardened:t0", vec![1, 0x100, 99]))
            .is_err());
    }
}
