//! The `Hardened` wrapper codec: bounded-resync fault containment for
//! stateful codes.
//!
//! The stateful codes (T0, T0_BI, dual T0, dual T0_BI, and most of the
//! extensions) buy their power savings with shared encoder/decoder state:
//! the decoder reconstructs addresses from references it accumulated in
//! earlier cycles. A single in-transit bit flip (SEU, crosstalk) therefore
//! desynchronizes the decoder for an *unbounded* number of cycles — the
//! corrupted reference silently poisons every later relative decode.
//!
//! [`Hardened`] wraps any [`Encoder`]/[`Decoder`] pair and restores two
//! production-grade guarantees without touching the inner code:
//!
//! 1. **Aux-line parity (detection).** One extra redundant line carries
//!    the parity of every transmitted line (payload plus the inner code's
//!    redundant lines). Any *single* line flip — payload, redundant, or
//!    the parity line itself — is detected at the cycle it happens:
//!    [`Decoder::decode`] reports a [`CodecError::ProtocolViolation`]
//!    instead of a silently wrong address.
//! 2. **Periodic plain-word refresh (bounded resync).** Every `R` cycles
//!    (the *refresh interval*) both wrapper halves reset their inner codec
//!    before processing the cycle. A freshly reset encoder emits a
//!    self-contained plain word, and a freshly reset decoder decodes it
//!    without any accumulated state — so whatever damage a fault did to
//!    the decoder's references is discarded at the next refresh boundary.
//!    Any transient fault is fully recovered within `R` cycles.
//!
//! The resync bound rests on two facts the model checker
//! ([`crate::check::check_hardened`]) verifies exhaustively at small
//! widths: `reset()` restores the inner codec's construction state from
//! *every* reachable state (so the post-refresh product state does not
//! depend on the pre-refresh state), and the refresh schedule is driven by
//! a cycle counter — advanced once per encode/decode call, never by bus
//! data — so faults cannot desynchronize the schedule itself. Dropped or
//! duplicated *bus cycles* shift the two counters relative to each other
//! and are outside the single-transient-fault guarantee (the campaign
//! runner in `buscode-fault` measures what happens then).
//!
//! The price is power: the parity line toggles and the refresh forces a
//! full plain word onto lines the inner code had frozen.
//! `buscode-power::hardened_bus_power` and the `buscode-bench` hardening
//! table quantify the overhead against the paper's savings.
//!
//! # Examples
//!
//! A flipped line is detected, and the decoder is exact again at the next
//! refresh boundary:
//!
//! ```
//! use buscode_core::codes::{Hardened, T0Decoder, T0Encoder};
//! use buscode_core::{Access, AccessKind, BusWidth, Decoder, Encoder, Stride};
//!
//! # fn main() -> Result<(), buscode_core::CodecError> {
//! let (w, s) = (BusWidth::MIPS, Stride::WORD);
//! let mut enc = Hardened::encoder(T0Encoder::new(w, s)?, 4)?;
//! let mut dec = Hardened::with_aux_lines(T0Decoder::new(w, s)?, 4, 1)?;
//!
//! let mut words: Vec<_> = (0..8u64)
//!     .map(|i| enc.encode(Access::instruction(0x100 + 4 * i)))
//!     .collect();
//! words[1].payload ^= 1 << 7; // in-transit flip
//!
//! for (i, word) in words.iter().enumerate() {
//!     let decoded = dec.decode(*word, AccessKind::Instruction);
//!     match i {
//!         1 => assert!(decoded.is_err(), "parity detects the flip"),
//!         4.. => assert_eq!(decoded?, 0x100 + 4 * i as u64, "exact after refresh"),
//!         _ => {} // within the bound the decoder may drift
//!     }
//! }
//! # Ok(())
//! # }
//! ```

use crate::bus::{Access, AccessKind, BusState, BusWidth};
use crate::error::CodecError;
use crate::traits::{CodeKind, CodeParams, Decoder, Encoder};

/// Wraps an inner encoder or decoder with aux-line parity and a periodic
/// plain-word refresh; see the [module docs](self) for the guarantees.
///
/// The same generic struct wraps both halves: `Hardened<E>` implements
/// [`Encoder`] when `E` does, and `Hardened<D>` implements [`Decoder`]
/// when `D` does. Both halves must be built with the same refresh
/// interval (and the decoder with the encoder's redundant line count) or
/// they will not track each other.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Hardened<C> {
    inner: C,
    /// Refresh interval `R` in cycles: the inner codec is reset before
    /// cycles `0, R, 2R, ...`.
    refresh: u64,
    /// How many redundant lines the *inner* code uses; the parity line
    /// sits immediately above them.
    inner_aux: u32,
    /// Cycle counter modulo `refresh`, advanced once per call. Keeping it
    /// reduced makes the wrapper a finite Mealy machine, which the model
    /// checker relies on.
    cycle: u64,
}

impl<C> Hardened<C> {
    /// Wraps `inner` with an explicit inner redundant-line count.
    ///
    /// Use this for decoders, whose trait does not expose the line count;
    /// pass the paired encoder's [`Encoder::aux_line_count`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParameter`] if `refresh` is zero, or
    /// if the parity line would not fit in the 64 `aux` bits.
    pub fn with_aux_lines(inner: C, refresh: u64, inner_aux: u32) -> Result<Self, CodecError> {
        if refresh == 0 {
            return Err(CodecError::InvalidParameter {
                name: "refresh",
                reason: "refresh interval must be at least 1 cycle".to_string(),
            });
        }
        if inner_aux >= 64 {
            return Err(CodecError::InvalidParameter {
                name: "inner_aux",
                reason: format!("parity line must fit within 64 redundant lines, got {inner_aux}"),
            });
        }
        Ok(Hardened {
            inner,
            refresh,
            inner_aux,
            cycle: 0,
        })
    }

    /// The configured refresh interval `R`.
    pub fn refresh_interval(&self) -> u64 {
        self.refresh
    }

    /// True when the *next* encode/decode call starts a refresh period
    /// (the inner codec will be reset before processing it).
    pub fn at_refresh_boundary(&self) -> bool {
        self.cycle == 0
    }

    /// The wrapped codec.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Mask selecting the inner code's redundant lines within `aux`.
    fn inner_aux_mask(&self) -> u64 {
        (1u64 << self.inner_aux) - 1
    }

    /// Advances the refresh schedule, returning whether this cycle is a
    /// refresh cycle.
    fn tick(&mut self) -> bool {
        let refresh_now = self.cycle == 0;
        self.cycle = (self.cycle + 1) % self.refresh;
        refresh_now
    }
}

impl<E: Encoder> Hardened<E> {
    /// Wraps an encoder, reading the redundant-line count off `inner`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Hardened::with_aux_lines`].
    pub fn encoder(inner: E, refresh: u64) -> Result<Self, CodecError> {
        let inner_aux = inner.aux_line_count();
        Hardened::with_aux_lines(inner, refresh, inner_aux)
    }
}

/// Parity of every transmitted line: payload bits plus the inner code's
/// redundant lines.
fn line_parity(payload: u64, inner_aux_bits: u64) -> u64 {
    u64::from((payload.count_ones() + inner_aux_bits.count_ones()) & 1)
}

impl<E: Encoder> Encoder for Hardened<E> {
    fn name(&self) -> &'static str {
        "hardened"
    }

    fn width(&self) -> BusWidth {
        self.inner.width()
    }

    fn aux_line_count(&self) -> u32 {
        self.inner_aux + 1
    }

    fn encode(&mut self, access: Access) -> BusState {
        if self.tick() {
            // Refresh: a reset inner encoder has no reference to freeze
            // against, so this cycle's word is plain and self-contained.
            self.inner.reset();
        }
        let word = self.inner.encode(access);
        let aux = word.aux & self.inner_aux_mask();
        let parity = line_parity(word.payload, aux);
        BusState::new(word.payload, aux | (parity << self.inner_aux))
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.cycle = 0;
    }
}

impl<D: Decoder> Decoder for Hardened<D> {
    fn name(&self) -> &'static str {
        "hardened"
    }

    fn width(&self) -> BusWidth {
        self.inner.width()
    }

    fn decode(&mut self, word: BusState, kind: AccessKind) -> Result<u64, CodecError> {
        // The schedule advances on every call — it is driven by the cycle
        // count alone, so a corrupted word cannot shift it.
        if self.tick() {
            self.inner.reset();
        }
        let payload = word.payload & self.inner.width().mask();
        let inner_aux_bits = word.aux & self.inner_aux_mask();
        let parity_bit = (word.aux >> self.inner_aux) & 1;
        if parity_bit != line_parity(payload, inner_aux_bits) {
            // Detected corruption: report it and leave the inner state
            // untouched (the word is untrustworthy either way; the next
            // refresh discards whatever drift the gap causes).
            return Err(CodecError::ProtocolViolation {
                code: "hardened",
                reason: "aux parity mismatch",
            });
        }
        self.inner
            .decode(BusState::new(word.payload, inner_aux_bits), kind)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.cycle = 0;
    }

    fn corrected_count(&self) -> u64 {
        self.inner.corrected_count()
    }
}

impl CodeKind {
    /// The number of redundant lines this code's encoder adds.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the code's constructor.
    pub fn aux_line_count(self, params: CodeParams) -> Result<u32, CodecError> {
        Ok(self.encoder(params)?.aux_line_count())
    }

    /// Builds this code's encoder wrapped in [`Hardened`] with the given
    /// refresh interval.
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn hardened_encoder(
        self,
        params: CodeParams,
        refresh: u64,
    ) -> Result<Hardened<Box<dyn Encoder>>, CodecError> {
        Hardened::encoder(self.encoder(params)?, refresh)
    }

    /// Builds the decoder paired with [`CodeKind::hardened_encoder`].
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn hardened_decoder(
        self,
        params: CodeParams,
        refresh: u64,
    ) -> Result<Hardened<Box<dyn Decoder>>, CodecError> {
        let aux = self.aux_line_count(params)?;
        Hardened::with_aux_lines(self.decoder(params)?, refresh, aux)
    }
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{Snapshot, StateImage};

impl<C: Snapshot> Snapshot for Hardened<C> {
    /// The image is the inner codec's image with the refresh-cycle
    /// counter appended, under a `hardened:`-prefixed code name.
    fn snapshot(&self) -> StateImage {
        let inner = self.inner.snapshot();
        let mut words = inner.words().to_vec();
        words.push(self.cycle);
        StateImage::new(format!("hardened:{}", inner.code()), words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let Some(inner_code) = image.code().strip_prefix("hardened:") else {
            return Err(CodecError::SnapshotMismatch {
                code: "hardened",
                reason: "image is not a hardened snapshot",
            });
        };
        let Some((&cycle, inner_words)) = image.words().split_last() else {
            return Err(CodecError::SnapshotMismatch {
                code: "hardened",
                reason: "missing refresh-cycle counter",
            });
        };
        if cycle >= self.refresh {
            return Err(CodecError::SnapshotMismatch {
                code: "hardened",
                reason: "cycle counter outside the refresh interval",
            });
        }
        // Restore the inner codec first: it validates before mutating, so
        // a bad inner image leaves the whole wrapper unchanged.
        self.inner
            .restore(&StateImage::new(inner_code, inner_words.to_vec()))?;
        self.cycle = cycle;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::{T0BiEncoder, T0Decoder, T0Encoder};
    use crate::{BusWidth, Stride};

    fn t0_pair(refresh: u64) -> (Hardened<T0Encoder>, Hardened<T0Decoder>) {
        let (w, s) = (BusWidth::MIPS, Stride::WORD);
        (
            Hardened::encoder(T0Encoder::new(w, s).unwrap(), refresh).unwrap(),
            Hardened::with_aux_lines(T0Decoder::new(w, s).unwrap(), refresh, 1).unwrap(),
        )
    }

    #[test]
    fn refresh_zero_is_rejected() {
        let enc = T0Encoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        assert!(matches!(
            Hardened::encoder(enc, 0),
            Err(CodecError::InvalidParameter {
                name: "refresh",
                ..
            })
        ));
    }

    #[test]
    fn round_trips_like_the_inner_code() {
        let (mut enc, mut dec) = t0_pair(8);
        for i in 0..100u64 {
            let addr = if i % 7 == 0 {
                0x9000 + 64 * i
            } else {
                0x100 + 4 * i
            };
            let word = enc.encode(Access::instruction(addr));
            assert_eq!(dec.decode(word, AccessKind::Instruction).unwrap(), addr);
        }
    }

    #[test]
    fn adds_exactly_one_aux_line() {
        let (enc, _) = t0_pair(8);
        assert_eq!(enc.aux_line_count(), 2); // INC + parity
        let params = CodeParams::default();
        assert_eq!(CodeKind::T0Bi.aux_line_count(params).unwrap(), 2);
        let henc = CodeKind::T0Bi.hardened_encoder(params, 16).unwrap();
        assert_eq!(henc.aux_line_count(), 3);
    }

    #[test]
    fn parity_line_covers_payload_and_inner_aux() {
        let (w, s) = (BusWidth::MIPS, Stride::WORD);
        let mut enc = Hardened::encoder(T0BiEncoder::new(w, s).unwrap(), 1024).unwrap();
        let mut rng = crate::rng::Rng64::seed_from_u64(5);
        for _ in 0..500 {
            let word = enc.encode(Access::instruction(rng.gen::<u64>() & w.mask()));
            let parity = (word.aux >> 2) & 1;
            let inner_aux = word.aux & 0b11;
            assert_eq!(parity, line_parity(word.payload, inner_aux));
        }
    }

    #[test]
    fn every_single_flip_is_detected() {
        let (mut enc, dec) = t0_pair(16);
        let mut reference =
            Hardened::with_aux_lines(T0Decoder::new(BusWidth::MIPS, Stride::WORD).unwrap(), 16, 1)
                .unwrap();
        let _ = dec;
        for i in 0..64u64 {
            let word = enc.encode(Access::instruction(0x400 + 4 * i));
            // Try every flip against a decoder snapshot in the right state.
            for line in 0..34 {
                let mut corrupted = word;
                if line < 32 {
                    corrupted.payload ^= 1 << line;
                } else {
                    corrupted.aux ^= 1 << (line - 32);
                }
                let mut probe = reference.clone();
                assert!(
                    probe.decode(corrupted, AccessKind::Instruction).is_err(),
                    "cycle {i} line {line} slipped through parity"
                );
            }
            reference.decode(word, AccessKind::Instruction).unwrap();
        }
    }

    #[test]
    fn transient_fault_recovers_within_the_refresh_interval() {
        let refresh = 8u64;
        let (mut enc, mut dec) = t0_pair(refresh);
        let mut words: Vec<BusState> = (0..64u64)
            .map(|i| enc.encode(Access::instruction(0x100 + 4 * i)))
            .collect();
        let fault_cycle = 10usize;
        words[fault_cycle].aux ^= 1; // flip the INC line
        for (i, word) in words.iter().enumerate() {
            let decoded = dec.decode(*word, AccessKind::Instruction);
            let expected = 0x100 + 4 * i as u64;
            let next_refresh = (fault_cycle as u64 / refresh + 1) * refresh;
            if (i as u64) >= next_refresh || i < fault_cycle {
                assert_eq!(decoded.unwrap(), expected, "cycle {i}");
            }
        }
    }

    #[test]
    fn reset_restores_the_boundary_schedule() {
        let (mut enc, _) = t0_pair(4);
        enc.encode(Access::instruction(0x100));
        enc.encode(Access::instruction(0x104));
        assert!(!enc.at_refresh_boundary());
        enc.reset();
        assert!(enc.at_refresh_boundary());
    }

    #[test]
    fn refresh_one_degenerates_to_plain_words() {
        // R = 1 resets every cycle: the inner code never freezes, every
        // word is self-contained binary plus parity.
        let (mut enc, mut dec) = t0_pair(1);
        for i in 0..32u64 {
            let word = enc.encode(Access::instruction(0x100 + 4 * i));
            assert_eq!(word.aux & 1, 0, "INC never asserted at R=1");
            assert_eq!(
                dec.decode(word, AccessKind::Instruction).unwrap(),
                0x100 + 4 * i
            );
        }
    }

    #[test]
    fn boxed_factories_build_every_code() {
        let params = CodeParams::default();
        for kind in CodeKind::all() {
            let mut enc = kind.hardened_encoder(params, 32).unwrap();
            let mut dec = kind.hardened_decoder(params, 32).unwrap();
            for i in 0..96u64 {
                let access = if i % 3 == 0 {
                    Access::data(0x8000 + 16 * i)
                } else {
                    Access::instruction(0x400 + 4 * i)
                };
                let word = enc.encode(access);
                assert_eq!(
                    dec.decode(word, access.kind).unwrap(),
                    access.address,
                    "{kind} cycle {i}"
                );
            }
        }
    }
}
