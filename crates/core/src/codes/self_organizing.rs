//! Extension: adaptive encoding with a self-organizing list.
//!
//! A follow-on family to this paper (Mamidipaka, Hirschberg and Dutt,
//! TVLSI 2003) keeps the *high-order* address bits — the working-zone
//! identity — in a move-to-front list replicated on both sides of the
//! bus. A hit transmits only the one-hot list position on the high lines
//! (at most two transitions between hot zones) plus the low offset bits
//! in binary; a miss transmits the plain address. Because the list is
//! updated deterministically from what crosses the bus, encoder and
//! decoder never need to exchange bookkeeping.
//!
//! This implementation is a documented simplification of the original
//! (pure move-to-front, one `HIT` line, one-hot position field); see the
//! tests for the synchronization invariant.

use crate::bus::{Access, AccessKind, BusState, BusWidth};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// Shared geometry and list state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct SolState {
    width: BusWidth,
    /// Number of low-order offset bits transmitted in binary.
    low_bits: u32,
    /// Most-recently-used high parts, front first.
    list: Vec<u64>,
    /// Maximum list length (bounded by the available one-hot lines).
    capacity: usize,
}

impl SolState {
    fn new(width: BusWidth, low_bits: u32, entries: u32) -> Result<Self, CodecError> {
        if low_bits >= width.bits() {
            return Err(CodecError::InvalidParameter {
                name: "low_bits",
                reason: format!(
                    "must be smaller than the bus width, got {low_bits} on a {}-bit bus",
                    width.bits()
                ),
            });
        }
        let high_lines = width.bits() - low_bits;
        if entries == 0 || entries > high_lines {
            return Err(CodecError::InvalidParameter {
                name: "entries",
                reason: format!(
                    "must be in 1..=width-low_bits (one-hot lines), got {entries} with {high_lines} lines available"
                ),
            });
        }
        Ok(SolState {
            width,
            low_bits,
            list: Vec::with_capacity(entries as usize),
            capacity: entries as usize,
        })
    }

    fn split(&self, address: u64) -> (u64, u64) {
        let masked = address & self.width.mask();
        (masked >> self.low_bits, masked & self.low_mask())
    }

    fn low_mask(&self) -> u64 {
        if self.low_bits == 0 {
            0
        } else {
            (1u64 << self.low_bits) - 1
        }
    }

    /// Finds a high part; on hit moves it to the front.
    fn lookup_and_promote(&mut self, high: u64) -> Option<usize> {
        let position = self.list.iter().position(|&h| h == high)?;
        let entry = self.list.remove(position);
        self.list.insert(0, entry);
        Some(position)
    }

    /// Inserts a missed high part at the front, evicting the tail.
    fn insert_front(&mut self, high: u64) {
        self.list.insert(0, high);
        self.list.truncate(self.capacity);
    }

    fn reset(&mut self) {
        self.list.clear();
    }
}

/// The self-organizing-list encoder.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::SelfOrganizingEncoder;
/// use buscode_core::{Access, BusWidth, Encoder};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = SelfOrganizingEncoder::new(BusWidth::MIPS, 8, 16)?;
/// enc.encode(Access::data(0x1234_5600)); // miss installs the zone
/// let word = enc.encode(Access::data(0x1234_5604)); // same zone: hit
/// assert_eq!(word.aux, 1); // HIT line
/// assert_eq!(word.payload, 0x0000_0104); // one-hot position 0 | low bits
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SelfOrganizingEncoder {
    state: SolState,
}

impl SelfOrganizingEncoder {
    /// Creates an encoder transmitting `low_bits` offset bits in binary
    /// and tracking up to `entries` working zones.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParameter`] when `low_bits` is not
    /// smaller than the width or `entries` exceeds the one-hot lines
    /// available above the offset field.
    pub fn new(width: BusWidth, low_bits: u32, entries: u32) -> Result<Self, CodecError> {
        Ok(SelfOrganizingEncoder {
            state: SolState::new(width, low_bits, entries)?,
        })
    }
}

impl Encoder for SelfOrganizingEncoder {
    fn name(&self) -> &'static str {
        "self-org"
    }

    fn width(&self) -> BusWidth {
        self.state.width
    }

    fn aux_line_count(&self) -> u32 {
        1
    }

    fn encode(&mut self, access: Access) -> BusState {
        let (high, low) = self.state.split(access.address);
        if let Some(position) = self.state.lookup_and_promote(high) {
            let one_hot = 1u64 << (self.state.low_bits + position as u32);
            BusState::new(one_hot | low, 1)
        } else {
            self.state.insert_front(high);
            BusState::new(access.address & self.state.width.mask(), 0)
        }
    }

    fn reset(&mut self) {
        self.state.reset();
    }
}

/// The decoder paired with [`SelfOrganizingEncoder`]; maintains the same
/// move-to-front list from the decoded traffic alone.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SelfOrganizingDecoder {
    state: SolState,
}

impl SelfOrganizingDecoder {
    /// Creates the decoder; parameters must match the encoder's.
    ///
    /// # Errors
    ///
    /// As [`SelfOrganizingEncoder::new`].
    pub fn new(width: BusWidth, low_bits: u32, entries: u32) -> Result<Self, CodecError> {
        Ok(SelfOrganizingDecoder {
            state: SolState::new(width, low_bits, entries)?,
        })
    }
}

impl Decoder for SelfOrganizingDecoder {
    fn name(&self) -> &'static str {
        "self-org"
    }

    fn width(&self) -> BusWidth {
        self.state.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        if word.aux & 1 == 1 {
            let position_field = word.payload >> self.state.low_bits;
            if position_field == 0 || !position_field.is_power_of_two() {
                return Err(CodecError::ProtocolViolation {
                    code: "self-org",
                    reason: "hit position field is not one-hot",
                });
            }
            let position = position_field.trailing_zeros() as usize;
            if position >= self.state.list.len() {
                return Err(CodecError::ProtocolViolation {
                    code: "self-org",
                    reason: "hit position beyond the current list",
                });
            }
            let high = self.state.list[position];
            self.state.lookup_and_promote(high);
            Ok((high << self.state.low_bits) | (word.payload & self.state.low_mask()))
        } else {
            let address = word.payload & self.state.width.mask();
            let (high, _) = self.state.split(address);
            self.state.insert_front(high);
            Ok(address)
        }
    }

    fn reset(&mut self) {
        self.state.reset();
    }
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{ImageReader, Snapshot, StateImage};

impl SolState {
    fn snapshot_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.list.len() + 1);
        words.push(self.list.len() as u64);
        words.extend_from_slice(&self.list);
        words
    }

    /// Reads and validates a list state without mutating `self`.
    fn read_words(&self, r: &mut ImageReader<'_>) -> Result<Vec<u64>, CodecError> {
        let len = r.word_at_most(self.capacity as u64)? as usize;
        let high_max = self.width.mask() >> self.low_bits;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            list.push(r.word_at_most(high_max)?);
        }
        Ok(list)
    }
}

impl Snapshot for SelfOrganizingEncoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("self-org", self.state.snapshot_words())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "self-org")?;
        let list = self.state.read_words(&mut r)?;
        r.finish()?;
        self.state.list = list;
        Ok(())
    }
}

impl Snapshot for SelfOrganizingDecoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("self-org", self.state.snapshot_words())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "self-org")?;
        let list = self.state.read_words(&mut r)?;
        r.finish()?;
        self.state.list = list;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn codec() -> (SelfOrganizingEncoder, SelfOrganizingDecoder) {
        (
            SelfOrganizingEncoder::new(BusWidth::MIPS, 8, 16).unwrap(),
            SelfOrganizingDecoder::new(BusWidth::MIPS, 8, 16).unwrap(),
        )
    }

    #[test]
    fn miss_then_hit() {
        let (mut enc, _) = codec();
        let miss = enc.encode(Access::data(0xaaaa_0010));
        assert_eq!(miss.aux, 0);
        assert_eq!(miss.payload, 0xaaaa_0010);
        let hit = enc.encode(Access::data(0xaaaa_0044));
        assert_eq!(hit.aux, 1);
        assert_eq!(hit.payload, (1 << 8) | 0x44);
    }

    #[test]
    fn move_to_front_promotes_hot_zones() {
        let (mut enc, _) = codec();
        enc.encode(Access::data(0x1111_0000)); // zone A (front)
        enc.encode(Access::data(0x2222_0000)); // zone B (front, A second)
                                               // Hit zone A at position 1; it moves to front.
        let w = enc.encode(Access::data(0x1111_0004));
        assert_eq!(w.payload >> 8, 0b10);
        // Next hit on A is at position 0.
        let w = enc.encode(Access::data(0x1111_0008));
        assert_eq!(w.payload >> 8, 0b01);
    }

    #[test]
    fn eviction_bounds_the_list() {
        let (mut enc, _) = codec();
        for zone in 0..20u64 {
            enc.encode(Access::data(0x100_0000 + (zone << 8)));
        }
        // The first zone was evicted (capacity 16): accessing it misses.
        let w = enc.encode(Access::data(0x100_0000));
        assert_eq!(w.aux, 0);
    }

    #[test]
    fn hot_zone_alternation_beats_binary() {
        // Two hot zones whose identities differ in many bits: binary pays
        // the full Hamming distance on every alternation, the list code
        // only swings the one-hot position field.
        let stream: Vec<Access> = (0..400u64)
            .map(|i| {
                let zone = if i % 2 == 0 { 0x5555_aa00 } else { 0x2aaa_5500 };
                Access::data(zone + 4 * (i / 2 % 8))
            })
            .collect();
        let (mut enc, _) = codec();
        let sol = crate::metrics::count_transitions(&mut enc, stream.iter().copied());
        let binary = crate::metrics::binary_reference(BusWidth::MIPS, stream.iter().copied());
        assert!(
            sol.total() * 2 < binary.total(),
            "sol {} vs binary {}",
            sol.total(),
            binary.total()
        );
    }

    #[test]
    fn round_trip_zoned_workload() {
        let (mut enc, mut dec) = codec();
        let mut rng = Rng64::seed_from_u64(91);
        let zones: Vec<u64> = (0..24).map(|i| 0x4000_0000 + (i << 17)).collect();
        for _ in 0..5000 {
            let addr = if rng.gen_bool(0.9) {
                zones[rng.gen_range(0..zones.len())] + rng.gen_range(0..256u64)
            } else {
                rng.gen::<u64>() & BusWidth::MIPS.mask()
            };
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn decoder_rejects_malformed_hits() {
        let (_, mut dec) = codec();
        // Non-one-hot position field.
        assert!(dec
            .decode(BusState::new(0b11 << 8, 1), AccessKind::Data)
            .is_err());
        // Position beyond the (empty) list.
        assert!(dec
            .decode(BusState::new(1 << 8, 1), AccessKind::Data)
            .is_err());
    }

    #[test]
    fn parameters_validated() {
        assert!(SelfOrganizingEncoder::new(BusWidth::MIPS, 32, 4).is_err());
        assert!(SelfOrganizingEncoder::new(BusWidth::MIPS, 8, 0).is_err());
        assert!(SelfOrganizingEncoder::new(BusWidth::MIPS, 8, 25).is_err());
        assert!(SelfOrganizingEncoder::new(BusWidth::MIPS, 8, 24).is_ok());
        assert!(SelfOrganizingDecoder::new(BusWidth::MIPS, 8, 25).is_err());
    }

    #[test]
    fn zero_low_bits_supported() {
        let mut enc = SelfOrganizingEncoder::new(BusWidth::new(8).unwrap(), 0, 4).unwrap();
        let mut dec = SelfOrganizingDecoder::new(BusWidth::new(8).unwrap(), 0, 4).unwrap();
        for addr in [5u64, 9, 5, 9, 200, 5] {
            let w = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(w, AccessKind::Data).unwrap(), addr);
        }
    }
}
